"""Profile-as-a-service: the long-lived ``repro serve`` daemon.

Every CLI invocation re-pays Python import, dataset generation, detector
cache warmup and (before the persistent pool) pool spawn — for a
steady-state estimation kernel of ~0.01s, the fixed overhead *is* the
latency of an interactive profile/bound query. This module keeps all of
that hot in one process and serves many concurrent tenants over
HTTP+JSON, using only the standard library (``asyncio`` streams; no
framework, no new dependencies):

- **Hot state** (:class:`ServeSession`): built
  :class:`~repro.video.dataset.VideoDataset` corpora (published once
  through the shared-memory plane of :mod:`repro.system.shm`), the
  persistent detector disk cache, per-query frame-value memos, cached
  degradation hypercubes, and the persistent
  :class:`~repro.system.executor.WorkerPool`.
- **Micro-batching** (:class:`MicroBatcher`): an admission-controlled
  request queue coalesces *compatible* queued requests — same corpus,
  detector, degradation plan, aggregate and estimator — into a single
  :func:`~repro.estimators.dispatch.estimate_rows` kernel call per tick,
  turning N concurrent single-trial requests into one ``(N, n)``
  :class:`~repro.stats.prefix_moments.PrefixMoments` pass. Every request
  keeps its own seed stream, so batched answers are **bit-identical** to
  the same requests issued serially (each serial request is a 1-row call
  through the very same kernel; all row-wise operations are independent
  of the number of rows stacked).
- **Admission control**: a global queue-depth cap plus per-tenant token
  buckets; over-budget tenants get HTTP 429 and a
  ``serve.rejected`` run-ledger event instead of degrading everyone's
  latency.
- **Live observability**: the Prometheus exporter of
  :mod:`repro.system.observe` is mounted at ``GET /metrics`` over the
  live telemetry registry, and per-tenant accounting lands on the
  run-ledger record the daemon's run appends on shutdown.

Endpoints (all request/response bodies are JSON):

=====================  ====================================================
``GET  /healthz``      liveness + uptime
``GET  /metrics``      Prometheus text exposition of the live registry
                       (labeled per-endpoint/per-tenant latency families)
``GET  /stats``        batcher/session/tenant counters + pool diagnostics
                       + sliding p50/p95/p99 latency windows (``slo``)
``GET  /traces``       recent trace summaries from the in-memory ring
``GET  /traces/<id>``  every retained span event of one trace
``POST /estimate``     one degraded query -> estimate + bound (micro-batched)
``POST /bound``        same kernel, bound-only response (micro-batched)
``POST /profile``      degradation hypercube slices (fingerprint-cached)
``POST /choose``       tradeoff choice over a (cached) profile
``POST /shutdown``     graceful drain + exit
=====================  ====================================================

Every query request mints a :class:`~repro.system.observe.tracing.
TraceContext` (honouring an inbound ``X-Repro-Trace-Id`` header), so the
HTTP handler span, the micro-batched kernel span (fan-in links to every
coalesced request) and pool-worker unit spans share one trace id —
inspect with ``repro trace`` or ``GET /traces``. A crash flight recorder
dumps the last spans to the run ledger on unhandled errors and SIGQUIT.

Shutdown (``POST /shutdown``, SIGINT or SIGTERM) is graceful end to end:
the listener closes, the queue drains through the batcher, tenant
accounting is annotated onto the active run-ledger record, and the
worker pool and every shared-memory segment are torn down — a lifecycle
test asserts ``/dev/shm`` is empty afterwards.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import signal
import time
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Mapping, Sequence

import numpy as np

from repro.core.smokescreen import Smokescreen
from repro.core.tradeoff import PublicPreferences, choose_tradeoff
from repro.detection import diskcache
from repro.errors import ReproError
from repro.estimators.base import Estimate
from repro.estimators.dispatch import estimate_rows
from repro.estimators.sentinel import BoundSentinel
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.streaming import WindowedMeanEstimator
from repro.experiments.workloads import (
    DATASET_NAMES,
    load_dataset,
    model_for,
    shared_suite,
)
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.system import shm, telemetry
from repro.system.executor import (
    ExecutorConfig,
    ParallelExecutor,
    pool_diagnostics,
    pool_generation,
    shutdown_pool,
)
from repro.system.observe import ledger as run_ledger
from repro.system.observe import labeled_name, prometheus_exposition
from repro.system.observe import tracing
from repro.video.frame import ObjectClass

_LOG = telemetry.get_logger("system.serve")

#: Default TCP port (unassigned by IANA; "repro" on a phone keypad-ish).
DEFAULT_PORT = 8177

#: Query kinds the micro-batcher coalesces.
_BATCHED_KINDS = ("estimate", "bound")

#: Query kinds served through the (cached) profile path.
_PROFILE_KINDS = ("profile", "choose")


class RequestError(ReproError):
    """A malformed or unserveable request (HTTP 400)."""


class AdmissionError(ReproError):
    """A request rejected by admission control (HTTP 429)."""


@dataclass(frozen=True)
class ServeConfig:
    """Daemon configuration.

    Attributes:
        host: Bind address.
        port: Bind port; 0 asks the OS for an ephemeral one (the daemon
            prints the bound port, which tests parse).
        datasets: Corpus presets to build and publish at startup.
        frames: Reduced corpus size shared by every preloaded dataset
            (None = the paper's full sizes).
        workers: Worker processes for profile generation (estimates are
            a single kernel call and always run in-process).
        cache_dir: Persistent detector-cache directory, or None.
        cache_limit_bytes: LRU byte budget for ``cache_dir``.
        tick_seconds: Micro-batch window: after the first queued request
            the batcher waits this long for compatible companions before
            firing the kernel.
        max_batch: Hard cap on requests coalesced into one kernel call.
        max_queue: Global admission cap on queued-but-unserved requests.
        tenant_rate: Per-tenant sustained budget, requests/second.
        tenant_burst: Per-tenant token-bucket capacity (burst size).
        delta: Default bound failure probability for requests that do
            not specify one.
    """

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    datasets: tuple[str, ...] = ("ua-detrac",)
    frames: int | None = None
    workers: int | str = 1
    cache_dir: str | None = None
    cache_limit_bytes: int | None = None
    tick_seconds: float = 0.005
    max_batch: int = 64
    max_queue: int = 256
    tenant_rate: float = 50.0
    tenant_burst: int = 100
    delta: float = 0.05

    def __post_init__(self) -> None:
        for name in self.datasets:
            if name not in DATASET_NAMES:
                raise RequestError(
                    f"unknown dataset {name!r}; valid: {DATASET_NAMES}"
                )
        if self.tick_seconds < 0:
            raise RequestError("tick_seconds must be non-negative")
        if self.max_batch < 1 or self.max_queue < 1:
            raise RequestError("max_batch and max_queue must be positive")
        rate = float(self.tenant_rate)
        if not math.isfinite(rate) or rate < 0.0:
            raise RequestError(
                f"tenant_rate must be a finite requests/second budget "
                f">= 0 (0 means a burst-only budget), got "
                f"{self.tenant_rate!r}"
            )
        burst = float(self.tenant_burst)
        if not math.isfinite(burst) or burst < 1.0:
            raise RequestError(
                f"tenant_burst must be a finite burst capacity >= 1 "
                f"(a bucket smaller than one token can never admit a "
                f"request), got {self.tenant_burst!r}"
            )


@dataclass(frozen=True)
class QueryRequest:
    """One tenant query, normalised from a JSON payload.

    Attributes:
        kind: ``estimate``, ``bound``, ``profile`` or ``choose``.
        dataset: Corpus preset name.
        aggregate: Aggregate name (``avg``/``sum``/``count``/...).
        fraction: Sampling fraction ``f`` (None = full sampling).
        resolution: Resolution side ``p`` (None = native).
        remove: Removed-class names ``c`` (sorted tuple).
        method: Estimator name.
        seed: The request's private randomness seed.
        delta: Bound failure probability.
        tenant: Accounting identity (header ``X-Tenant`` or payload).
        trials: Profile-path trials per setting.
        fraction_step: Profile-path fraction grid step.
        resolution_count: Profile-path resolution grid size.
        correction: Whether the profile path builds a correction set.
        axis: Choose-path profile axis.
        max_error: Choose-path public error budget.
        max_fraction: Choose-path fraction ceiling.
    """

    kind: str
    dataset: str
    aggregate: str = "avg"
    fraction: float | None = None
    resolution: int | None = None
    remove: tuple[str, ...] = ()
    method: str = "smokescreen"
    seed: int = 0
    delta: float = 0.05
    tenant: str = "anonymous"
    trials: int = 1
    fraction_step: float = 0.25
    resolution_count: int = 3
    correction: bool = False
    axis: str = "sampling"
    max_error: float | None = None
    max_fraction: float | None = None

    @classmethod
    def from_payload(
        cls, kind: str, payload: Mapping, config: ServeConfig
    ) -> "QueryRequest":
        """Validate and normalise a JSON payload into a request.

        Args:
            kind: The endpoint's query kind.
            payload: Decoded JSON body.
            config: The daemon configuration (defaults).

        Returns:
            The request.

        Raises:
            RequestError: The payload is malformed.
        """
        if kind not in _BATCHED_KINDS + _PROFILE_KINDS:
            raise RequestError(f"unknown query kind {kind!r}")
        if not isinstance(payload, Mapping):
            raise RequestError("request body must be a JSON object")
        dataset = payload.get("dataset", config.datasets[0])
        if dataset not in DATASET_NAMES:
            raise RequestError(
                f"unknown dataset {dataset!r}; valid: {DATASET_NAMES}"
            )
        aggregate = str(payload.get("aggregate", "avg")).lower()
        try:
            Aggregate[aggregate.upper()]
        except KeyError:
            valid = ", ".join(m.name.lower() for m in Aggregate)
            raise RequestError(f"unknown aggregate {aggregate!r}; valid: {valid}")
        remove_raw = payload.get("remove", ())
        if isinstance(remove_raw, str):
            remove_raw = [p for p in remove_raw.split(",") if p.strip()]
        try:
            remove = tuple(
                sorted(ObjectClass.from_name(str(n).strip()).name.lower()
                       for n in remove_raw)
            )
        except Exception:
            raise RequestError(f"unknown removal classes {remove_raw!r}")
        try:
            fraction = payload.get("fraction")
            fraction = None if fraction is None else float(fraction)
            resolution = payload.get("resolution")
            resolution = None if resolution is None else int(resolution)
            seed = int(payload.get("seed", 0))
            delta = float(payload.get("delta", config.delta))
            trials = int(payload.get("trials", 1))
            fraction_step = float(payload.get("fraction_step", 0.25))
            resolution_count = int(payload.get("resolution_count", 3))
            max_error = payload.get("max_error")
            max_error = None if max_error is None else float(max_error)
            max_fraction = payload.get("max_fraction")
            max_fraction = None if max_fraction is None else float(max_fraction)
        except (TypeError, ValueError) as error:
            raise RequestError(f"malformed numeric field: {error}")
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise RequestError(f"fraction must lie in (0, 1], got {fraction}")
        if not 0.0 < delta < 1.0:
            raise RequestError(f"delta must lie in (0, 1), got {delta}")
        axis = str(payload.get("axis", "sampling"))
        if axis not in ("sampling", "resolution", "removal"):
            raise RequestError(f"unknown profile axis {axis!r}")
        if kind == "choose" and max_error is None:
            raise RequestError("choose requests need a max_error budget")
        return cls(
            kind=kind,
            dataset=str(dataset),
            aggregate=aggregate,
            fraction=fraction,
            resolution=resolution,
            remove=remove,
            method=str(payload.get("method", "smokescreen")),
            seed=seed,
            delta=delta,
            tenant=str(payload.get("tenant", "anonymous")),
            trials=trials,
            fraction_step=fraction_step,
            resolution_count=resolution_count,
            correction=bool(payload.get("correction", False)),
            axis=axis,
            max_error=max_error,
            max_fraction=max_fraction,
        )

    def batch_key(self) -> tuple:
        """The compatibility key micro-batching groups by.

        Requests coalesce when they share corpus, detector (implied by the
        corpus pairing), degradation plan, aggregate, estimator and delta
        — everything except the seed and the tenant, so each coalesced
        row keeps its own randomness.
        """
        return (
            self.dataset,
            self.aggregate,
            self.fraction,
            self.resolution,
            self.remove,
            self.method,
            round(self.delta, 12),
        )

    def profile_key(self) -> str:
        """Cache fingerprint of the profile this request implies."""
        return run_ledger.config_fingerprint(
            {
                "dataset": self.dataset,
                "aggregate": self.aggregate,
                "trials": self.trials,
                "seed": self.seed,
                "fraction_step": self.fraction_step,
                "resolution_count": self.resolution_count,
                "correction": self.correction,
                "delta": round(self.delta, 12),
            }
        )


class TokenBucket:
    """A per-tenant budget: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float) -> None:
        rate = float(rate)
        burst = float(burst)
        if not math.isfinite(rate) or rate < 0.0:
            raise RequestError(
                f"token-bucket rate must be finite and >= 0 "
                f"(0 means a burst-only budget), got {rate}"
            )
        if not math.isfinite(burst) or burst < 1.0:
            raise RequestError(
                f"token-bucket burst must be finite and >= 1, got {burst}"
            )
        self._rate = rate
        self._capacity = burst
        self._tokens = self._capacity
        self._last = time.monotonic()

    def try_acquire(self, now: float | None = None) -> bool:
        """Take one token if available, refilling lazily."""
        now = time.monotonic() if now is None else now
        elapsed = max(now - self._last, 0.0)
        self._last = now
        self._tokens = min(self._capacity, self._tokens + elapsed * self._rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens currently available (diagnostics)."""
        return self._tokens


class ServeSession:
    """The daemon's hot state and kernels (usable without HTTP in tests).

    Holds built corpora (published through shared memory so any worker
    pool attaches zero-copy), cached query objects whose frame-value
    memos keep detector outputs warm, cached hypercubes for the profile
    path, and the authoritative request/batch counters.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self._config = config or ServeConfig()
        self._suite = shared_suite()
        self._processor = QueryProcessor(self._suite)
        self._queries: dict[tuple, AggregateQuery] = {}
        self._cubes: dict[str, object] = {}
        self._cube_meta: dict[str, dict] = {}
        self._started = time.monotonic()
        self._owns_cache = False
        self.stats: dict[str, int] = {
            "requests": 0,
            "rejected": 0,
            "errors": 0,
            "kernel_calls": 0,
            "batched_kernel_calls": 0,
            "batched_requests": 0,
            "profile_requests": 0,
            "profile_cache_hits": 0,
            "choose_requests": 0,
            "stream_requests": 0,
            "stream_opens": 0,
            "stream_violations": 0,
        }
        self.tenants: dict[str, dict[str, int]] = {}
        self._streams: dict[str, dict] = {}
        self._stream_counter = 0
        self._latency_windows: dict[str, deque] = {}
        if self._config.cache_dir and diskcache.active_cache() is None:
            diskcache.activate(
                self._config.cache_dir, self._config.cache_limit_bytes
            )
            self._owns_cache = True

    @property
    def config(self) -> ServeConfig:
        """The daemon configuration."""
        return self._config

    def warmup(self) -> dict[str, float]:
        """Build and publish every configured corpus; warm native outputs.

        Returns:
            Per-dataset warmup wall seconds (diagnostics; also logged).
        """
        timings: dict[str, float] = {}
        for name in self._config.datasets:
            started = time.perf_counter()
            dataset = load_dataset(name, self._config.frames)
            shm.publish_dataset(dataset)
            # Touch native-resolution outputs for every aggregate's value
            # transform: the detector run is cached on the model, the
            # predicate transform in the processor's per-query memo.
            for aggregate in ("avg", "count"):
                self._processor.frame_values(self._query_for(name, aggregate))
            timings[name] = round(time.perf_counter() - started, 4)
        telemetry.log_event(
            _LOG, logging.INFO, "serve.warmup",
            datasets=",".join(self._config.datasets), **{
                f"seconds_{k.replace('-', '_')}": v for k, v in timings.items()
            },
        )
        return timings

    #: Sliding SLO window size per endpoint (most recent observations).
    _SLO_WINDOW = 512

    def note_latency(self, endpoint: str, seconds: float) -> None:
        """Feed one request latency into the endpoint's sliding window."""
        window = self._latency_windows.get(endpoint)
        if window is None:
            window = deque(maxlen=self._SLO_WINDOW)
            self._latency_windows[endpoint] = window
        window.append(float(seconds))

    def slo_summary(self) -> dict:
        """Per-endpoint sliding p50/p95/p99 latency (``/stats`` ``slo``)."""
        summary: dict[str, dict] = {}
        for endpoint, window in sorted(self._latency_windows.items()):
            values = sorted(window)
            if not values:
                continue

            def rank(q: float) -> float:
                index = min(
                    max(math.ceil(q * len(values)) - 1, 0), len(values) - 1
                )
                return values[index]

            summary[endpoint] = {
                "count": len(values),
                "p50_seconds": round(rank(0.50), 6),
                "p95_seconds": round(rank(0.95), 6),
                "p99_seconds": round(rank(0.99), 6),
            }
        return summary

    def tenant_record(self, tenant: str) -> dict[str, int]:
        """The accounting record of one tenant (created on first touch)."""
        record = self.tenants.get(tenant)
        if record is None:
            record = {"requests": 0, "rejected": 0, "served": 0}
            self.tenants[tenant] = record
        return record

    def _query_for(
        self, dataset_name: str, aggregate: str, delta: float = 0.05
    ) -> AggregateQuery:
        key = (dataset_name, self._config.frames, aggregate, round(delta, 12))
        query = self._queries.get(key)
        if query is None:
            query = AggregateQuery(
                dataset=load_dataset(dataset_name, self._config.frames),
                model=model_for(dataset_name),
                aggregate=Aggregate[aggregate.upper()],
                delta=delta,
            )
            self._queries[key] = query
        return query

    def _plan_for(self, request: QueryRequest) -> InterventionPlan:
        return InterventionPlan.from_knobs(
            f=request.fraction,
            p=request.resolution,
            c=tuple(
                ObjectClass.from_name(name) for name in request.remove
            ),
            suite=self._suite,
        )

    # ------------------------------------------------------------------
    # The micro-batched estimate/bound kernel.
    # ------------------------------------------------------------------

    def estimate_group(
        self,
        requests: Sequence[QueryRequest],
        contexts: Sequence[tracing.TraceContext | None] | None = None,
    ) -> list[dict]:
        """Serve one compatible group through a single batched kernel call.

        Every request draws its own sample from its own seed stream; the
        stacked ``(N, n)`` value matrix is priced by **one**
        :func:`~repro.estimators.dispatch.estimate_rows` call. Row-wise
        results are bit-identical to serving each request alone (a 1-row
        call through the same kernel), because every operation the kernel
        performs is independent across rows.

        Args:
            requests: Compatible requests (equal :meth:`QueryRequest.
                batch_key`); at least one.
            contexts: The coalesced requests' trace contexts, aligned
                with ``requests``. The kernel span continues the first
                linked trace and records **fan-in links** (the trace and
                span ids of every coalesced request), so N request spans
                point at the 1 kernel span that served them.

        Returns:
            One response dict per request, in request order.
        """
        if not requests:
            return []
        head = requests[0]
        for other in requests[1:]:
            if other.batch_key() != head.batch_key():
                raise RequestError(
                    "incompatible requests cannot share a kernel call"
                )
        linked = [ctx for ctx in (contexts or []) if ctx is not None]
        with tracing.use(linked[0] if linked else None):
            with tracing.span(
                "serve.estimate_rows",
                batch=len(requests),
                link_trace_ids=tuple(ctx.trace_id for ctx in linked),
                link_span_ids=tuple(ctx.span_id for ctx in linked),
            ):
                return self._price_group(head, requests)

    def _price_group(
        self, head: QueryRequest, requests: Sequence[QueryRequest]
    ) -> list[dict]:
        """The batched kernel body of :meth:`estimate_group`."""
        started = time.perf_counter()
        query = self._query_for(head.dataset, head.aggregate, head.delta)
        plan = self._plan_for(head)
        rows = []
        universe_size = population_size = 0
        for request in requests:
            rng = np.random.default_rng(request.seed)
            sample = plan.draw(query.dataset, rng, self._suite)
            rows.append(self._processor.values_for_sample(query, sample))
            universe_size = sample.universe_size
            population_size = sample.population_size
        matrix = np.stack(rows)
        estimates = estimate_rows(
            query, matrix, universe_size, population_size, head.method
        )
        self.stats["kernel_calls"] += 1
        telemetry.count("serve.kernel_calls")
        if len(requests) > 1:
            self.stats["batched_kernel_calls"] += 1
            self.stats["batched_requests"] += len(requests)
            telemetry.count("serve.batched_kernel_calls")
            telemetry.count("serve.batched_requests", len(requests))
        telemetry.gauge("serve.batch_size", len(requests))
        telemetry.observe(
            "serve.kernel_seconds", time.perf_counter() - started
        )
        responses = []
        for request, estimate in zip(requests, estimates):
            self.tenant_record(request.tenant)["served"] += 1
            body = {
                "kind": request.kind,
                "dataset": request.dataset,
                "aggregate": request.aggregate,
                "plan": plan.label(),
                "method": estimate.method,
                "error_bound": float(estimate.error_bound),
                "n": int(estimate.n),
                "universe_size": int(estimate.universe_size),
                "delta": request.delta,
                "seed": request.seed,
                "batch_size": len(requests),
            }
            if request.kind == "estimate":
                body["value"] = float(estimate.value)
            responses.append(body)
        return responses

    # ------------------------------------------------------------------
    # The cached profile/choose path.
    # ------------------------------------------------------------------

    def profile_request(self, request: QueryRequest) -> dict:
        """Serve a profile query from the hypercube cache, pricing on miss.

        Args:
            request: A ``profile`` (or ``choose``) request.

        Returns:
            The profile summary (axis slices with knob values and bounds).
        """
        self.stats["profile_requests"] += 1
        telemetry.count("serve.profile_requests")
        key = request.profile_key()
        cached = key in self._cubes
        if cached:
            self.stats["profile_cache_hits"] += 1
            telemetry.count("serve.profile_cache_hits")
        else:
            started = time.perf_counter()
            system = Smokescreen(
                load_dataset(request.dataset, self._config.frames),
                model_for(request.dataset),
                suite=self._suite,
                delta=request.delta,
                trials=request.trials,
                seed=request.seed,
                workers=self._config.workers,
            )
            query = system.query(Aggregate[request.aggregate.upper()])
            correction = (
                system.build_correction_set(query) if request.correction else None
            )
            candidates = system.candidates(
                fraction_step=request.fraction_step,
                resolution_count=request.resolution_count,
            )
            cube = system.profile(query, candidates, correction=correction)
            self._cubes[key] = cube
            self._cube_meta[key] = {
                "profile_seconds": round(time.perf_counter() - started, 4),
                "model_invocations": system.ledger.total,
            }
            telemetry.observe(
                "serve.profile_seconds", time.perf_counter() - started
            )
        cube = self._cubes[key]
        sampling, resolution, removal = cube.initial_slices()
        slices = {}
        for profile in (sampling, resolution, removal):
            slices[profile.axis] = {
                "knobs": [str(k) for k in profile.knob_values()],
                "error_bounds": [
                    float(b) for b in profile.error_bounds()
                ],
            }
        return {
            "kind": "profile",
            "dataset": request.dataset,
            "aggregate": request.aggregate,
            "fingerprint": key,
            "cached": cached,
            "cells": int(cube.bounds.size),
            "slices": slices,
            **self._cube_meta[key],
        }

    def choose_request(self, request: QueryRequest) -> dict:
        """Serve a tradeoff choice over the (cached) profile.

        Args:
            request: A ``choose`` request carrying the error budget.

        Returns:
            The chosen setting and its bounded error.
        """
        self.stats["choose_requests"] += 1
        telemetry.count("serve.choose_requests")
        summary = self.profile_request(request)
        cube = self._cubes[request.profile_key()]
        if request.axis == "sampling":
            profile = cube.slice_sampling()
        elif request.axis == "resolution":
            profile = cube.slice_resolution()
        else:
            profile = cube.slice_removal()
        preferences = PublicPreferences(
            max_error=request.max_error,
            max_fraction=request.max_fraction,
        )
        choice = choose_tradeoff(profile, preferences)
        return {
            "kind": "choose",
            "dataset": request.dataset,
            "aggregate": request.aggregate,
            "axis": request.axis,
            "fingerprint": summary["fingerprint"],
            "cached": summary["cached"],
            "plan": choice.point.plan.label(),
            "fraction": float(choice.point.plan.fraction),
            "error_bound": float(choice.point.error_bound),
        }

    # ------------------------------------------------------------------
    # Hot streams: tenants push frames into a live sentinel.
    # ------------------------------------------------------------------

    _MAX_STREAM_VALUES = 10_000

    def stream_open(self, payload: Mapping) -> dict:
        """Arm a hot sentinel for a tenant's live feed (``POST /stream``).

        The profiling-time state comes from the warm session: the exact
        clean answer over the preloaded corpus is the reference, a clean
        seeded query's bound is the profiled promise, and a seeded clean
        sample is the Algorithm 3 correction set. The stream estimator is
        windowed, so the tenant can keep pushing frames forever and a
        drift dominates the answer within one window.

        Args:
            payload: JSON body — ``dataset``, ``aggregate``, ``delta``,
                ``window``, ``min_count``, ``patience``, ``seed``,
                ``profiled_bound`` (all optional), plus ``tenant``.

        Returns:
            The stream's first readout (includes the assigned ``id``).
        """
        dataset = str(payload.get("dataset") or self._config.datasets[0])
        if dataset not in self._config.datasets:
            raise RequestError(
                f"dataset {dataset!r} is not preloaded; "
                f"serving: {self._config.datasets}"
            )
        aggregate = str(payload.get("aggregate") or "avg")
        delta = float(payload.get("delta") or self._config.delta)
        tenant = str(payload.get("tenant") or "anonymous")
        seed = int(payload.get("seed") or 7)
        values = np.asarray(
            self._processor.frame_values(
                self._query_for(dataset, aggregate, delta)
            ),
            dtype=float,
        )
        total = int(values.size)
        window = int(payload.get("window") or 480)
        if not 1 <= window <= total:
            raise RequestError(
                f"window {window} must lie in [1, corpus size {total}]"
            )
        min_count = int(payload.get("min_count") or 30)
        patience = int(payload.get("patience") or 2)
        rng = np.random.default_rng(seed)
        reference = Estimate(
            value=float(values.mean()),
            error_bound=0.0,
            method="exact",
            n=total,
            universe_size=total,
        )
        correction = SmokescreenMeanEstimator().estimate(
            rng.choice(values, size=min(400, total), replace=False),
            total,
            delta,
        )
        profiled = payload.get("profiled_bound")
        if profiled is None:
            sample = rng.choice(
                values, size=max(2, total // 2), replace=False
            )
            profiled = (
                SmokescreenMeanEstimator()
                .estimate(sample, total, delta)
                .error_bound
            )
        profiled = float(profiled)
        self._stream_counter += 1
        stream_id = f"s{self._stream_counter:04d}"
        estimator = WindowedMeanEstimator(total, window, delta)
        sentinel = BoundSentinel(
            reference,
            profiled,
            total,
            delta=delta,
            min_count=min_count,
            patience=patience,
            correction=correction,
            label=f"{tenant}:{dataset}:{stream_id}",
            stream=estimator,
        )
        self._streams[stream_id] = {
            "sentinel": sentinel,
            "estimator": estimator,
            "tenant": tenant,
            "dataset": dataset,
            "aggregate": aggregate,
            "window": window,
            "profiled_bound": profiled,
            "created": time.monotonic(),
            "ingests": 0,
        }
        self.stats["stream_opens"] += 1
        telemetry.count("serve.stream_opens")
        self.tenant_record(tenant)["served"] += 1
        return self.stream_readout(stream_id)

    def stream_ingest(self, payload: Mapping) -> dict:
        """Push a batch of frame values into a hot stream.

        Args:
            payload: JSON body with the stream ``id`` and a non-empty
                ``values`` array of finite numbers (capped at
                ``_MAX_STREAM_VALUES`` per request).

        Returns:
            The stream readout after the batch (drift check included).
        """
        stream_id = str(payload.get("id") or "")
        state = self._stream_state(stream_id)
        raw = payload.get("values")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise RequestError(
                "values must be a non-empty array of numbers"
            )
        if len(raw) > self._MAX_STREAM_VALUES:
            raise RequestError(
                f"at most {self._MAX_STREAM_VALUES} values per ingest, "
                f"got {len(raw)}"
            )
        try:
            batch = [float(value) for value in raw]
        except (TypeError, ValueError):
            raise RequestError("values must be an array of numbers")
        if not all(math.isfinite(value) for value in batch):
            raise RequestError("values must be finite")
        sentinel: BoundSentinel = state["sentinel"]
        tripped_before = sentinel.tripped
        check = sentinel.extend(batch)
        state["ingests"] += 1
        telemetry.count("serve.stream_frames", len(batch))
        if check is not None and check.breached:
            self.stats["stream_violations"] += 1
        self.tenant_record(state["tenant"])["served"] += 1
        body = self.stream_readout(stream_id)
        body["ingested"] = len(batch)
        body["newly_tripped"] = sentinel.tripped and not tripped_before
        if check is not None:
            body["check"] = {
                "drift": check.drift,
                "allowance": check.allowance,
                "breached": check.breached,
            }
        return body

    def _stream_state(self, stream_id: str) -> dict:
        state = self._streams.get(stream_id)
        if state is None:
            raise RequestError(
                f"unknown stream {stream_id!r}; open one with "
                f"POST /stream (no id) first"
            )
        return state

    def stream_readout(self, stream_id: str) -> dict:
        """The readout body for ``GET /stream/<id>``."""
        state = self._stream_state(stream_id)
        sentinel: BoundSentinel = state["sentinel"]
        estimator: WindowedMeanEstimator = state["estimator"]
        body = {
            "id": stream_id,
            "dataset": state["dataset"],
            "aggregate": state["aggregate"],
            "tenant": state["tenant"],
            "window": state["window"],
            "profiled_bound": state["profiled_bound"],
            "ingests": state["ingests"],
            "count": estimator.count,
            "window_count": estimator.window_count,
            "verdict": sentinel.verdict().as_payload(),
        }
        if estimator.count:
            estimate = estimator.estimate()
            body["value"] = float(estimate.value)
            body["error_bound"] = float(estimate.error_bound)
        repair = sentinel.repair
        if repair is not None:
            body["repaired_bound"] = float(repair.error_bound)
        return body

    # ------------------------------------------------------------------
    # Diagnostics and teardown.
    # ------------------------------------------------------------------

    def snapshot_stats(self) -> dict:
        """Machine-readable session state for ``GET /stats``."""
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "datasets": list(self._config.datasets),
            "frames": self._config.frames,
            "counters": dict(self.stats),
            "tenants": {k: dict(v) for k, v in sorted(self.tenants.items())},
            "cached_profiles": len(self._cubes),
            "streams": len(self._streams),
            "slo": self.slo_summary(),
            "pool": pool_diagnostics(),
            "pool_generation": pool_generation(),
            "shm_published_bytes": shm.published_bytes(),
        }

    def shutdown(self) -> None:
        """Tear the hot state down: annotate the run, close pool and shm."""
        run_ledger.annotate(
            serve={
                **{k: int(v) for k, v in self.stats.items()},
                "tenant_count": len(self.tenants),
                "slo": self.slo_summary(),
            },
            tenants={k: dict(v) for k, v in sorted(self.tenants.items())},
        )
        shutdown_pool()
        shm.release_all()
        if self._owns_cache and diskcache.active_cache() is not None:
            diskcache.deactivate()
        telemetry.log_event(
            _LOG, logging.INFO, "serve.shutdown", **{
                k: int(v) for k, v in self.stats.items()
            },
        )


@dataclass
class _Pending:
    """One queued request and the future its response resolves."""

    request: QueryRequest
    future: asyncio.Future
    ctx: tracing.TraceContext | None = None
    enqueued: float = 0.0


class MicroBatcher:
    """The admission-controlled queue and per-tick coalescing loop.

    One background task pulls the queue: after the first request arrives
    it waits ``tick_seconds`` for companions, drains everything queued,
    groups by :meth:`QueryRequest.batch_key`, and serves each group with
    one kernel call on a dedicated executor thread (keeping the event
    loop free for ``/metrics`` and admission while kernels run).
    """

    def __init__(self, session: ServeSession) -> None:
        self._session = session
        self._config = session.config
        self._queue: asyncio.Queue[_Pending | None] = asyncio.Queue()
        self._buckets: dict[str, TokenBucket] = {}
        self._depth = 0
        self._task: asyncio.Task | None = None
        self._accepting = False

    def start(self) -> None:
        """Start the batching loop on the running event loop."""
        self._accepting = True
        self._task = asyncio.get_running_loop().create_task(self._run())

    @property
    def depth(self) -> int:
        """Requests admitted but not yet answered."""
        return self._depth

    def admit(self, tenant: str) -> None:
        """Charge one request against the tenant budget and queue cap.

        Args:
            tenant: The accounting identity.

        Raises:
            AdmissionError: The tenant is over budget, or the global
                queue is full. The rejection is counted per tenant and
                recorded as a ``serve.rejected`` run-ledger event.
        """
        record = self._session.tenant_record(tenant)
        record["requests"] += 1
        self._session.stats["requests"] += 1
        telemetry.count("serve.requests")
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self._config.tenant_rate, self._config.tenant_burst
            )
            self._buckets[tenant] = bucket
        reason = None
        if not self._accepting:
            reason = "shutting_down"
        elif self._depth >= self._config.max_queue:
            reason = "queue_full"
        elif not bucket.try_acquire():
            reason = "tenant_over_budget"
        if reason is not None:
            record["rejected"] += 1
            self._session.stats["rejected"] += 1
            telemetry.count("serve.rejected")
            run_ledger.record_event(
                "serve.rejected", tenant=tenant, reason=reason
            )
            raise AdmissionError(
                f"request rejected ({reason}); tenant budget is "
                f"{self._config.tenant_rate:g}/s with burst "
                f"{self._config.tenant_burst}"
            )

    async def submit(self, request: QueryRequest) -> dict:
        """Queue an (already admitted) request and await its response.

        The submitting task's trace context rides along, so the batch
        loop can link the coalesced kernel span back to every request.
        """
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._depth += 1
        await self._queue.put(
            _Pending(
                request,
                future,
                ctx=tracing.current_context(),
                enqueued=time.perf_counter(),
            )
        )
        return await future

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            head = await self._queue.get()
            if head is None:
                break
            batch = [head]
            if self._config.tick_seconds > 0:
                await asyncio.sleep(self._config.tick_seconds)
            while (
                len(batch) < self._config.max_batch
                and not self._queue.empty()
            ):
                nxt = self._queue.get_nowait()
                if nxt is None:
                    await self._serve_batch(loop, batch)
                    return
                batch.append(nxt)
            await self._serve_batch(loop, batch)

    async def _serve_batch(
        self, loop: asyncio.AbstractEventLoop, batch: list[_Pending]
    ) -> None:
        now = time.perf_counter()
        telemetry.gauge("serve.queue_depth", self._depth)
        telemetry.gauge(
            "serve.batch_occupancy", len(batch) / self._config.max_batch
        )
        groups: dict[tuple, list[_Pending]] = {}
        for pending in batch:
            if pending.enqueued > 0:
                telemetry.observe(
                    "serve.queue_wait_seconds", now - pending.enqueued
                )
            groups.setdefault(pending.request.batch_key(), []).append(pending)
        for group in groups.values():
            requests = [p.request for p in group]
            contexts = [p.ctx for p in group]
            try:
                responses = await loop.run_in_executor(
                    None,
                    partial(
                        self._session.estimate_group, requests, contexts
                    ),
                )
            except Exception as error:  # surfaced per request as HTTP 400
                self._session.stats["errors"] += len(group)
                telemetry.count("serve.request_errors", len(group))
                for pending in group:
                    self._depth -= 1
                    if not pending.future.done():
                        pending.future.set_exception(
                            RequestError(str(error))
                        )
                continue
            for pending, response in zip(group, responses):
                self._depth -= 1
                if not pending.future.done():
                    pending.future.set_result(response)

    async def drain(self) -> None:
        """Stop admitting, serve everything already queued, stop the loop."""
        self._accepting = False
        await self._queue.put(None)
        if self._task is not None:
            await self._task
            self._task = None
        # Anything that slipped in behind the sentinel is still served:
        # shutdown drains, it does not drop.
        leftovers: list[_Pending] = []
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if item is not None:
                leftovers.append(item)
        if leftovers:
            await self._serve_batch(asyncio.get_running_loop(), leftovers)


class ServeDaemon:
    """The asyncio HTTP front end over a session and its batcher."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self._config = config or ServeConfig()
        self.session = ServeSession(self._config)
        self.batcher = MicroBatcher(self.session)
        self._server: asyncio.base_events.Server | None = None
        self._stopping: asyncio.Event | None = None
        self.port: int | None = None

    async def start(self) -> int:
        """Warm the session, start the batcher and bind the listener.

        Returns:
            The bound TCP port.
        """
        self._stopping = asyncio.Event()
        # /metrics must serve live repro_* families even when the caller
        # did not pass --telemetry; enable() installs a fresh registry,
        # so never call it when one is already live.
        if not telemetry.enabled():
            telemetry.enable()
        warmup = self.session.warmup()
        # Spawn the worker pool while the process is still quiet: forking
        # lazily on the first parallel /profile — with the event loop
        # mid-connection and executor threads live — can deadlock the
        # forked children on locks copied mid-acquisition.
        if ParallelExecutor(
            ExecutorConfig(workers=self._config.workers)
        ).prewarm():
            telemetry.count("serve.pool_prewarms")
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_client, self._config.host, self._config.port
        )
        self.port = int(self._server.sockets[0].getsockname()[1])
        run_ledger.annotate(
            serve_bind={"host": self._config.host, "port": self.port},
            serve_warmup_seconds=warmup,
        )
        telemetry.log_event(
            _LOG, logging.INFO, "serve.start",
            host=self._config.host, port=self.port,
        )
        return self.port

    async def stop(self) -> None:
        """Graceful shutdown: close, drain, tear down the hot state."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.drain()
        self.session.shutdown()
        if self._stopping is not None:
            self._stopping.set()

    def request_stop(self) -> None:
        """Shutdown trigger callable from signal handlers on the loop."""
        if self._stopping is not None and not self._stopping.is_set():
            asyncio.get_running_loop().create_task(self.stop())

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` completed."""
        assert self._stopping is not None
        await self._stopping.wait()

    # ------------------------------------------------------------------
    # HTTP plumbing (stdlib-only: asyncio streams + manual HTTP/1.1).
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._handle_one(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as error:  # pragma: no cover - defensive
            tracing.dump_flight_record("unhandled_error", error=str(error))
            status, content_type, body = 500, "application/json", json.dumps(
                {"error": str(error)}
            )
        payload = body.encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            + payload
        )
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    async def _handle_one(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, str, str]:
        request_line = await asyncio.wait_for(reader.readline(), timeout=30)
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, "application/json", json.dumps({"error": "bad request"})
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        payload: dict = {}
        length = int(headers.get("content-length", 0) or 0)
        if length:
            raw = await asyncio.wait_for(reader.readexactly(length), timeout=30)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                return 400, "application/json", json.dumps(
                    {"error": "request body is not valid JSON"}
                )
        if isinstance(payload, Mapping) and "tenant" not in payload:
            tenant = headers.get("x-tenant")
            if tenant:
                payload = {**payload, "tenant": tenant}
        return await self._route(
            method, path, payload, headers.get("x-repro-trace-id")
        )

    #: Endpoints that mint a trace context: query work, not scrapes —
    #: ``/metrics``, ``/stats`` and friends stay out of the trace ring.
    _TRACED_ENDPOINTS = _BATCHED_KINDS + _PROFILE_KINDS + ("stream",)

    async def _route(
        self,
        method: str,
        path: str,
        payload: dict,
        trace_header: str | None = None,
    ) -> tuple[int, str, str]:
        endpoint = path.lstrip("/").split("/", 1)[0] or "root"
        tenant = "anonymous"
        if isinstance(payload, Mapping):
            tenant = str(payload.get("tenant") or "anonymous")
        traced = method == "POST" and endpoint in self._TRACED_ENDPOINTS
        started = time.perf_counter()
        try:
            if traced:
                ctx = tracing.mint(tenant=tenant, trace_id=trace_header)
                with tracing.use(ctx):
                    with tracing.span("serve.request", endpoint=endpoint):
                        return await self._dispatch(method, path, payload)
            return await self._dispatch(method, path, payload)
        except AdmissionError as error:
            return 429, "application/json", json.dumps({"error": str(error)})
        except RequestError as error:
            return 400, "application/json", json.dumps({"error": str(error)})
        except ReproError as error:
            self.session.stats["errors"] += 1
            return 400, "application/json", json.dumps({"error": str(error)})
        finally:
            elapsed = time.perf_counter() - started
            telemetry.observe("serve.request_seconds", elapsed)
            if traced:
                telemetry.observe(
                    labeled_name(
                        "serve.request_seconds",
                        endpoint=endpoint,
                        tenant=tenant,
                    ),
                    elapsed,
                )
                self.session.note_latency(endpoint, elapsed)

    async def _dispatch(
        self, method: str, path: str, payload: dict
    ) -> tuple[int, str, str]:
        if method == "GET" and path == "/healthz":
            return 200, "application/json", json.dumps(
                {
                    "status": "ok",
                    "uptime_seconds": self.session.snapshot_stats()[
                        "uptime_seconds"
                    ],
                }
            )
        if method == "GET" and path == "/metrics":
            snapshot = telemetry.registry().snapshot()
            return (
                200,
                "text/plain; version=0.0.4",
                prometheus_exposition(snapshot),
            )
        if method == "GET" and path == "/stats":
            return 200, "application/json", json.dumps(
                self.session.snapshot_stats()
            )
        if method == "GET" and path == "/traces":
            return 200, "application/json", json.dumps(
                {"traces": tracing.ring().traces()}
            )
        if method == "GET" and path.startswith("/traces/"):
            trace_id = path[len("/traces/"):]
            events = tracing.ring().trace(trace_id)
            if not events:
                return 404, "application/json", json.dumps(
                    {"error": f"unknown trace {trace_id!r}"}
                )
            return 200, "application/json", json.dumps(
                {
                    "trace_id": events[0].trace_id,
                    "spans": [event.to_dict() for event in events],
                }
            )
        if method == "POST" and path == "/shutdown":
            asyncio.get_running_loop().create_task(self.stop())
            return 200, "application/json", json.dumps(
                {"status": "shutting down"}
            )
        if method == "GET" and path.startswith("/stream/"):
            stream_id = path[len("/stream/"):]
            return 200, "application/json", json.dumps(
                self.session.stream_readout(stream_id)
            )
        if method == "POST" and path == "/stream":
            tenant = str(payload.get("tenant") or "anonymous")
            self.batcher.admit(tenant)
            self.session.stats["stream_requests"] += 1
            telemetry.count("serve.stream_requests")
            if payload.get("id"):
                body = self.session.stream_ingest(payload)
            else:
                body = self.session.stream_open(payload)
            return 200, "application/json", json.dumps(body)
        if method == "POST" and path.lstrip("/") in (
            _BATCHED_KINDS + _PROFILE_KINDS
        ):
            kind = path.lstrip("/")
            request = QueryRequest.from_payload(
                kind, payload, self._config
            )
            self.batcher.admit(request.tenant)
            if kind in _BATCHED_KINDS:
                body = await self.batcher.submit(request)
            else:
                # run_in_executor does not propagate contextvars: hand
                # the trace context across the thread boundary explicitly.
                ctx = tracing.current_context()
                handler = (
                    self.session.profile_request
                    if kind == "profile"
                    else self.session.choose_request
                )
                body = await asyncio.get_running_loop().run_in_executor(
                    None, partial(tracing.run_with, ctx, handler, request)
                )
            return 200, "application/json", json.dumps(body)
        return 404, "application/json", json.dumps(
            {"error": f"no route for {method} {path}"}
        )


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


async def post_json(
    host: str,
    port: int,
    path: str,
    payload: Mapping | None = None,
    method: str | None = None,
    timeout: float = 60.0,
    headers: Mapping[str, str] | None = None,
) -> tuple[int, object]:
    """A minimal asyncio HTTP client for the daemon (tests, benchmarks).

    Args:
        host: Daemon host.
        port: Daemon port.
        path: Request path (``"/estimate"``).
        payload: JSON body (None sends no body).
        method: HTTP method; defaults to POST with a body, GET without.
        timeout: Whole-call timeout in seconds.
        headers: Extra request headers (e.g. ``X-Repro-Trace-Id``).

    Returns:
        ``(status, body)`` with the body JSON-decoded when possible.
    """
    method = method or ("POST" if payload is not None else "GET")
    body = json.dumps(payload or {}).encode() if payload is not None else b""
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )

    async def _call() -> tuple[int, object]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    + extra
                    + "Connection: close\r\n\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            while (await reader.readline()).strip():
                pass
            raw = await reader.read()
        finally:
            writer.close()
        text = raw.decode("utf-8")
        try:
            return status, json.loads(text)
        except json.JSONDecodeError:
            return status, text

    return await asyncio.wait_for(_call(), timeout=timeout)


def run_daemon(config: ServeConfig | None = None) -> int:
    """Run the daemon until SIGINT/SIGTERM or ``POST /shutdown``.

    Prints the bound address (tests parse it) and exits 0 on a graceful
    stop. The caller (``repro serve``) owns the run-ledger lifecycle: the
    session annotates the active run, and the CLI's ``finish_run`` flush
    happens after this returns — so the record lands even on signals.

    Args:
        config: The daemon configuration.

    Returns:
        Process exit code.
    """

    async def _main() -> int:
        daemon = ServeDaemon(config)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(daemon.stop())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            # SIGQUIT dumps the flight record (last ring spans/events to
            # the run ledger) without stopping the daemon.
            loop.add_signal_handler(
                signal.SIGQUIT,
                lambda: tracing.dump_flight_record("sigquit"),
            )
        except (
            AttributeError, NotImplementedError, RuntimeError,
        ):  # pragma: no cover - platform-dependent
            pass
        port = await daemon.start()
        print(
            f"repro serve: listening on http://{daemon.session.config.host}:"
            f"{port} (datasets: {', '.join(daemon.session.config.datasets)})",
            flush=True,
        )
        await daemon.wait_stopped()
        print("repro serve: drained and stopped", flush=True)
        return 0

    return asyncio.run(_main())
