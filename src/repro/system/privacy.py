"""Privacy-exposure accounting for degradation settings.

Quantifies the privacy side of the tradeoff: how many person/face frames a
degradation setting still exposes. Exposure is counted on the detector
view (what a downstream consumer of the transmitted video could actually
recognise): a face transmitted at 128x128 that no face detector can
resolve is not an exposure, which is exactly why resolution reduction is a
privacy intervention (paper §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.zoo import DetectorSuite
from repro.interventions.plan import InterventionPlan
from repro.video.dataset import VideoDataset
from repro.video.frame import ObjectClass


@dataclass(frozen=True)
class PrivacyReport:
    """Expected exposure of one degradation setting.

    All values are expected counts over a full transmission of the corpus
    under the plan (sampling scales exposure by ``f``).

    Attributes:
        person_frames_exposed: Expected transmitted frames with a
            recognisable person.
        face_frames_exposed: Expected transmitted frames with a
            recognisable face.
        person_exposure_ratio: Exposed person frames relative to no
            degradation (1.0 = no protection, 0.0 = full protection).
        face_exposure_ratio: Same for faces.
    """

    person_frames_exposed: float
    face_frames_exposed: float
    person_exposure_ratio: float
    face_exposure_ratio: float


def _exposed_frames(
    dataset: VideoDataset,
    suite: DetectorSuite,
    plan: InterventionPlan,
    object_class: ObjectClass,
) -> float:
    """Expected transmitted frames with the class recognisable under a plan."""
    detector = suite.detector_for(object_class)
    resolution = plan.effective_resolution(dataset)
    recognisable = detector.run(dataset, resolution, plan.quality).presence
    eligible = plan.eligible_indices(dataset, suite)
    exposed_in_universe = int(np.count_nonzero(recognisable[eligible]))
    return exposed_in_universe * plan.fraction


def privacy_report(
    dataset: VideoDataset, suite: DetectorSuite, plan: InterventionPlan
) -> PrivacyReport:
    """Price a degradation setting in privacy exposure.

    Args:
        dataset: The corpus.
        suite: The restricted-class detectors that define recognisability.
        plan: The degradation setting.

    Returns:
        The exposure report.
    """
    baseline = InterventionPlan()
    persons = _exposed_frames(dataset, suite, plan, ObjectClass.PERSON)
    faces = _exposed_frames(dataset, suite, plan, ObjectClass.FACE)
    persons_baseline = _exposed_frames(dataset, suite, baseline, ObjectClass.PERSON)
    faces_baseline = _exposed_frames(dataset, suite, baseline, ObjectClass.FACE)
    return PrivacyReport(
        person_frames_exposed=persons,
        face_frames_exposed=faces,
        person_exposure_ratio=(
            persons / persons_baseline if persons_baseline else 0.0
        ),
        face_exposure_ratio=faces / faces_baseline if faces_baseline else 0.0,
    )
