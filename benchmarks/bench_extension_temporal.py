"""Extension bench: sequence models under frame sampling (paper §7)."""

from __future__ import annotations

import numpy as np

from repro.experiments.extension_temporal import run_extension_temporal


def test_extension_temporal(benchmark, show):
    result = benchmark.pedantic(
        run_extension_temporal, kwargs={"trials": 100}, rounds=1, iterations=1
    )
    show(result)

    naive = np.array(result.series["naive_violation_pct"])
    window = np.array(result.series["window_violation_pct"])
    # The §7 failure: treating sampling as random for a sequence model
    # breaks the 95% guarantee badly somewhere in the sweep.
    assert naive.max() > 20.0
    # The contiguous-window mitigation largely restores empirical coverage
    # (it is a heuristic — near-budget misses remain at tiny fractions).
    assert window.max() <= 10.0
    assert np.all(window <= naive)
