"""Parallel profile generation, the detector cache, and the batch kernels.

Reruns the §5.3.1 profile sweep under several execution regimes — serial
and 4-worker with a cold and a warm persistent cache, plus warm-cache
estimation-kernel regimes — verifying that

- the sweep is bit-identical across all regimes (the determinism contract
  of the parallel executor),
- a warm cache reruns the sweep with **zero** model invocations (the
  across-runs extension of the paper's reuse strategy),
- the vectorized batch-trial kernels price a many-trial sweep faster than
  the per-(fraction, trial) loops while agreeing on the series, and
- ``workers="auto"`` never falls behind plain warm serial on this sweep
  (it resolves to serial: 10 work units sit below the auto threshold).

Measured wall times and invocation counts are written machine-readably to
``BENCH_profile.json`` next to the repo root. Note the timing caveat: on a
single-CPU box the 4-worker cold run pays fork/pickle overhead without
real parallel speedup, so the headline numbers here are the warm-cache
and kernel speedups; multi-core speedup scales with the worker count
because the work units are independent.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.detection import diskcache
from repro.experiments.timing import run_timing
from repro.experiments.workloads import UA_DETRAC, Workload
from repro.query.aggregates import Aggregate
from repro.system import telemetry
from repro.system.costs import InvocationLedger

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profile.json"


class _OpCountingRegistry(telemetry.MetricsRegistry):
    """A collecting registry that also counts instrumentation API calls,
    so the bench can price what the same call volume costs when no-op."""

    def __init__(self) -> None:
        super().__init__()
        self.ops = 0

    def count(self, name, value=1.0):
        self.ops += 1
        return super().count(name, value)

    def gauge(self, name, value):
        self.ops += 1
        return super().gauge(name, value)

    def observe(self, name, value):
        self.ops += 1
        return super().observe(name, value)

    def span(self, name, **attributes):
        self.ops += 1
        return super().span(name, **attributes)

    def timer(self, name):
        self.ops += 1
        return super().timer(name)


def _noop_call_seconds(calls: int = 200_000) -> float:
    """Measured per-call cost of the disabled (no-op) telemetry path."""
    assert not telemetry.enabled()
    start = time.perf_counter()
    for _ in range(calls):
        telemetry.count("bench.noop")
    return (time.perf_counter() - start) / calls


def _clear_model_memory_cache() -> None:
    """Empty the shared detector's in-process cache so each regime pays
    (or saves) the full detection cost, isolating the persistent cache."""
    Workload(UA_DETRAC, Aggregate.AVG, None).query().model.clear_cache()


def _timed_sweep(workers: int | str, trials: int = 1, vectorized: bool = True):
    ledger = InvocationLedger()
    start = time.perf_counter()
    result = run_timing(
        workers=workers, ledger=ledger, trials=trials, vectorized=vectorized
    )
    wall = time.perf_counter() - start
    return result, ledger.total, wall

#: Trials for the kernel regimes: enough that estimation dominates the
#: (cached) detector lookups, as in the paper's 100-trial experiments.
KERNEL_TRIALS = 100


def test_parallel_profile_and_cache(benchmark, show):
    runs: dict[str, dict] = {}
    series = {}
    telemetry_registry = _OpCountingRegistry()

    def regime(
        name: str,
        workers: int | str,
        clear_disk: bool,
        trials: int = 1,
        vectorized: bool = True,
    ) -> None:
        if clear_disk:
            diskcache.active_cache().clear()
        _clear_model_memory_cache()
        result, invocations, wall = _timed_sweep(
            workers, trials=trials, vectorized=vectorized
        )
        runs[name] = {
            "workers": workers,
            "cache": "cold" if clear_disk else "warm",
            "trials": trials,
            "vectorized": vectorized,
            "wall_seconds": round(wall, 4),
            "model_invocations": invocations,
        }
        series[name] = (result.knobs, result.series["invocations"])
        if name == "cold_serial":
            show(result)

    def all_regimes() -> None:
        regime("cold_serial", workers=1, clear_disk=True)
        regime("warm_serial", workers=1, clear_disk=False)
        regime("warm_auto", workers="auto", clear_disk=False)
        regime("warm_parallel", workers=4, clear_disk=False)
        # Kernel regimes: warm cache, paper-scale trial count, so wall
        # time is dominated by the estimation stage the kernels collapse.
        regime(
            "kernel_loop", workers=1, clear_disk=False,
            trials=KERNEL_TRIALS, vectorized=False,
        )
        regime(
            "kernel_vectorized", workers=1, clear_disk=False,
            trials=KERNEL_TRIALS, vectorized=True,
        )
        # Same regime with telemetry collecting: outputs must not move
        # (telemetry is written, never read) and the run's metrics land
        # in the snapshot recorded below.
        previous = telemetry.install(telemetry_registry)
        try:
            regime(
                "kernel_vectorized_telemetry", workers=1, clear_disk=False,
                trials=KERNEL_TRIALS, vectorized=True,
            )
        finally:
            telemetry.install(previous)
        regime("cold_parallel", workers=4, clear_disk=True)

    with tempfile.TemporaryDirectory(prefix="bench-detector-cache-") as root:
        diskcache.activate(root)
        try:
            benchmark.pedantic(all_regimes, rounds=1, iterations=1)
        finally:
            diskcache.deactivate()
            _clear_model_memory_cache()

    # The two cold regimes agree on the full per-resolution accounting:
    # each (removal, resolution) unit owns its resolution's outputs, so
    # worker count cannot change what gets recorded. (Bit-identity of the
    # profile itself across worker counts is asserted by the executor
    # test suite; warm runs record zero invocations by design.)
    assert series["cold_parallel"] == series["cold_serial"]

    # The paper's accounting still holds on the cold sweep (~6,084).
    assert 5000 <= runs["cold_serial"]["model_invocations"] <= 7000

    # Warm reruns are free: all outputs come from disk, the merged ledger
    # records nothing — including the kernel regimes, whose extra trials
    # re-read cached outputs only.
    for name in ("warm_serial", "warm_auto", "warm_parallel",
                 "kernel_loop", "kernel_vectorized"):
        assert runs[name]["model_invocations"] == 0, name

    # Both kernel regimes price the same sweep (same invocation series).
    assert series["kernel_vectorized"] == series["kernel_loop"]

    # Determinism: collecting telemetry must not move the sweep's outputs.
    assert series["kernel_vectorized_telemetry"] == series["kernel_vectorized"]
    assert runs["kernel_vectorized_telemetry"]["model_invocations"] == 0

    # The telemetry-on run observed itself: on this warm-cache sweep every
    # detector consultation is a cache hit, and nothing degraded.
    snapshot = telemetry_registry.snapshot()
    counters = snapshot.counters
    assert counters["cache.hit"] > 0
    assert counters["cache.hit"] == counters.get("detector.consultations")
    assert counters.get("cache.corrupt", 0) == 0
    assert counters.get("executor.fallback", 0) == 0
    assert any(record.name == "profiler.sweep"
               for record in telemetry.iter_spans(snapshot))

    # Price the disabled path: the same instrumentation call volume at the
    # measured no-op per-call cost must stay under 2% of the regime's wall.
    noop_seconds = _noop_call_seconds()
    noop_overhead_fraction = (
        telemetry_registry.ops * noop_seconds
        / runs["kernel_vectorized"]["wall_seconds"]
    )
    telemetry_overhead = (
        runs["kernel_vectorized_telemetry"]["wall_seconds"]
        / runs["kernel_vectorized"]["wall_seconds"]
    )

    warm_speedup = (
        runs["cold_serial"]["wall_seconds"] / runs["warm_serial"]["wall_seconds"]
    )
    kernel_speedup = (
        runs["kernel_loop"]["wall_seconds"]
        / runs["kernel_vectorized"]["wall_seconds"]
    )
    import os

    payload = {
        "benchmark": "parallel_profile",
        "sweep": "§5.3.1 hypercube (UA-DETRAC AVG, 10 resolutions, ≤4%)",
        "cpu_count": os.cpu_count(),
        "note": (
            "4-worker wall times include process-pool startup; on a "
            "single-CPU host that overhead is not amortised, so the "
            "headlines are the warm-cache and kernel speedups (kernel "
            f"regimes: warm cache, {KERNEL_TRIALS} trials)"
        ),
        "runs": runs,
        "speedup_warm_vs_cold_serial": round(warm_speedup, 3),
        "speedup_warm_parallel_vs_cold_serial": round(
            runs["cold_serial"]["wall_seconds"]
            / runs["warm_parallel"]["wall_seconds"],
            3,
        ),
        "speedup_vectorized_vs_loop": round(kernel_speedup, 3),
        "telemetry": {
            "series_identical_enabled_vs_disabled": True,  # asserted above
            "overhead_enabled_vs_disabled": round(telemetry_overhead, 3),
            "instrumentation_ops": telemetry_registry.ops,
            "noop_call_seconds": round(noop_seconds, 9),
            "noop_overhead_fraction_of_kernel_vectorized": round(
                noop_overhead_fraction, 6
            ),
            "snapshot_counters": snapshot.to_dict()["counters"],
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    print(json.dumps(payload, indent=2))

    assert warm_speedup > 1.0, runs
    # The batch kernels must never lose to the trial loops.
    assert kernel_speedup > 1.0, runs
    # The off-by-default path is cheap: the whole instrumentation call
    # volume, priced at the measured no-op cost, is <2% of the regime.
    assert noop_overhead_fraction < 0.02, payload["telemetry"]
    # "auto" resolves to serial here (10 units < AUTO_MIN_UNITS): allow
    # measurement noise but no structural regression over warm serial.
    assert (
        runs["warm_auto"]["wall_seconds"]
        <= 1.5 * runs["warm_serial"]["wall_seconds"] + 0.05
    ), runs
