"""Parallel profile generation, the persistent pool, and the batch kernels.

Reruns the §5.3.1 profile sweep under several execution regimes — serial
and 4-worker with cold/warm persistent caches, cold/warm worker pools,
the shared-memory data plane on and off, plus warm-cache estimation-kernel
regimes — verifying that

- the sweep is bit-identical across all regimes (the determinism contract
  of the parallel executor and the shared-memory data plane),
- a warm cache reruns the sweep with **zero** model invocations (the
  across-runs extension of the paper's reuse strategy),
- reusing the persistent pool removes the pool-per-call spawn tax
  (``warm_pool_reuse`` vs ``warm_parallel_cold_pool``),
- the vectorized batch-trial kernels price a many-trial sweep faster than
  the per-(fraction, trial) loops while agreeing on the series, and
- ``workers="auto"`` never falls behind plain warm serial on this sweep
  (the cost model keeps small workloads serial when the pool can't pay).

Measured wall times and invocation counts are written machine-readably to
``BENCH_profile.json`` next to the repo root. The strict multi-core
claims (parallel beats serial, pool reuse >= 5x over pool-per-call) are
asserted only when ``os.cpu_count() > 1``; single-CPU hosts record a
skip reason in the payload instead.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.detection import diskcache
from repro.experiments.timing import run_timing
from repro.experiments.workloads import UA_DETRAC, Workload
from repro.query.aggregates import Aggregate
from repro.system import shm, telemetry
from repro.system.costs import InvocationLedger
from repro.system.executor import pool_diagnostics, shutdown_pool

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profile.json"


class _OpCountingRegistry(telemetry.MetricsRegistry):
    """A collecting registry that also counts instrumentation API calls,
    so the bench can price what the same call volume costs when no-op."""

    def __init__(self) -> None:
        super().__init__()
        self.ops = 0

    def count(self, name, value=1.0):
        self.ops += 1
        return super().count(name, value)

    def gauge(self, name, value):
        self.ops += 1
        return super().gauge(name, value)

    def observe(self, name, value):
        self.ops += 1
        return super().observe(name, value)

    def span(self, name, **attributes):
        self.ops += 1
        return super().span(name, **attributes)

    def timer(self, name):
        self.ops += 1
        return super().timer(name)


def _noop_call_seconds(calls: int = 200_000) -> float:
    """Measured per-call cost of the disabled (no-op) telemetry path."""
    assert not telemetry.enabled()
    start = time.perf_counter()
    for _ in range(calls):
        telemetry.count("bench.noop")
    return (time.perf_counter() - start) / calls


def _clear_model_memory_cache() -> None:
    """Empty the shared detector's in-process cache so each regime pays
    (or saves) the full detection cost, isolating the persistent cache."""
    Workload(UA_DETRAC, Aggregate.AVG, None).query().model.clear_cache()


def _timed_sweep(workers: int | str, trials: int = 1, vectorized: bool = True):
    ledger = InvocationLedger()
    start = time.perf_counter()
    result = run_timing(
        workers=workers, ledger=ledger, trials=trials, vectorized=vectorized
    )
    wall = time.perf_counter() - start
    return result, ledger.total, wall

#: Trials for the kernel regimes: enough that estimation dominates the
#: (cached) detector lookups, as in the paper's 100-trial experiments.
KERNEL_TRIALS = 100


def test_parallel_profile_and_cache(benchmark, show):
    runs: dict[str, dict] = {}
    series = {}
    telemetry_registry = _OpCountingRegistry()

    def regime(
        name: str,
        workers: int | str,
        clear_disk: bool,
        trials: int = 1,
        vectorized: bool = True,
    ) -> None:
        if clear_disk:
            diskcache.active_cache().clear()
        _clear_model_memory_cache()
        result, invocations, wall = _timed_sweep(
            workers, trials=trials, vectorized=vectorized
        )
        runs[name] = {
            "workers": workers,
            "cache": "cold" if clear_disk else "warm",
            "trials": trials,
            "vectorized": vectorized,
            "wall_seconds": round(wall, 4),
            "model_invocations": invocations,
        }
        series[name] = (result.knobs, result.series["invocations"])
        if name == "cold_serial":
            show(result)

    def all_regimes() -> None:
        regime("cold_serial", workers=1, clear_disk=True)
        regime("warm_serial", workers=1, clear_disk=False)
        regime("warm_auto", workers="auto", clear_disk=False)
        # Pool-per-call baseline: every map call used to spawn (and tear
        # down) its own ProcessPoolExecutor; shutting the persistent pool
        # down first reproduces that cost exactly.
        shutdown_pool()
        regime("warm_parallel_cold_pool", workers=4, clear_disk=False)
        # The pool spawned above is now warm and gets reused.
        regime("warm_parallel", workers=4, clear_disk=False)
        regime("warm_pool_reuse", workers=4, clear_disk=False)
        # Same warm pool with the shared-memory data plane disabled:
        # payloads pickle the full corpus again (series must not move).
        shm.set_enabled(False)
        try:
            regime("warm_parallel_no_shm", workers=4, clear_disk=False)
        finally:
            shm.set_enabled(None)
        # Kernel regimes: warm cache, paper-scale trial count, so wall
        # time is dominated by the estimation stage the kernels collapse.
        regime(
            "kernel_loop", workers=1, clear_disk=False,
            trials=KERNEL_TRIALS, vectorized=False,
        )
        regime(
            "kernel_vectorized", workers=1, clear_disk=False,
            trials=KERNEL_TRIALS, vectorized=True,
        )
        # Same regime with telemetry collecting: outputs must not move
        # (telemetry is written, never read) and the run's metrics land
        # in the snapshot recorded below.
        previous = telemetry.install(telemetry_registry)
        try:
            regime(
                "kernel_vectorized_telemetry", workers=1, clear_disk=False,
                trials=KERNEL_TRIALS, vectorized=True,
            )
        finally:
            telemetry.install(previous)
        regime("cold_parallel", workers=4, clear_disk=True)

    with tempfile.TemporaryDirectory(prefix="bench-detector-cache-") as root:
        diskcache.activate(root)
        try:
            benchmark.pedantic(all_regimes, rounds=1, iterations=1)
            diagnostics = pool_diagnostics()
        finally:
            shutdown_pool()
            diskcache.deactivate()
            _clear_model_memory_cache()

    # The two cold regimes agree on the full per-resolution accounting:
    # each (removal, resolution) unit owns its resolution's outputs, so
    # worker count cannot change what gets recorded. (Bit-identity of the
    # profile itself across worker counts is asserted by the executor
    # test suite; warm runs record zero invocations by design.)
    assert series["cold_parallel"] == series["cold_serial"]

    # The paper's accounting still holds on the cold sweep (~6,084).
    assert 5000 <= runs["cold_serial"]["model_invocations"] <= 7000

    # Warm reruns are free: all outputs come from disk, the merged ledger
    # records nothing — including the kernel regimes, whose extra trials
    # re-read cached outputs only.
    for name in ("warm_serial", "warm_auto", "warm_parallel_cold_pool",
                 "warm_parallel", "warm_pool_reuse", "warm_parallel_no_shm",
                 "kernel_loop", "kernel_vectorized"):
        assert runs[name]["model_invocations"] == 0, name

    # The shared-memory data plane never moves the series: pool runs with
    # shm on and off price the identical sweep.
    assert series["warm_parallel_no_shm"] == series["warm_parallel"]
    assert series["warm_pool_reuse"] == series["warm_parallel"]

    # Both kernel regimes price the same sweep (same invocation series).
    assert series["kernel_vectorized"] == series["kernel_loop"]

    # Determinism: collecting telemetry must not move the sweep's outputs.
    assert series["kernel_vectorized_telemetry"] == series["kernel_vectorized"]
    assert runs["kernel_vectorized_telemetry"]["model_invocations"] == 0

    # The telemetry-on run observed itself: on this warm-cache sweep every
    # detector consultation is a cache hit, and nothing degraded.
    snapshot = telemetry_registry.snapshot()
    counters = snapshot.counters
    assert counters["cache.hit"] > 0
    assert counters["cache.hit"] == counters.get("detector.consultations")
    assert counters.get("cache.corrupt", 0) == 0
    assert counters.get("executor.fallback", 0) == 0
    assert any(record.name == "profiler.sweep"
               for record in telemetry.iter_spans(snapshot))

    # Price the disabled path: the same instrumentation call volume at the
    # measured no-op per-call cost must stay under 2% of the regime's wall.
    noop_seconds = _noop_call_seconds()
    noop_overhead_fraction = (
        telemetry_registry.ops * noop_seconds
        / runs["kernel_vectorized"]["wall_seconds"]
    )
    telemetry_overhead = (
        runs["kernel_vectorized_telemetry"]["wall_seconds"]
        / runs["kernel_vectorized"]["wall_seconds"]
    )

    warm_speedup = (
        runs["cold_serial"]["wall_seconds"] / runs["warm_serial"]["wall_seconds"]
    )
    kernel_speedup = (
        runs["kernel_loop"]["wall_seconds"]
        / runs["kernel_vectorized"]["wall_seconds"]
    )
    pool_reuse_speedup = (
        runs["warm_parallel_cold_pool"]["wall_seconds"]
        / runs["warm_pool_reuse"]["wall_seconds"]
    )
    multicore = (os.cpu_count() or 1) > 1

    payload = {
        "benchmark": "parallel_profile",
        "sweep": "§5.3.1 hypercube (UA-DETRAC AVG, 10 resolutions, ≤4%)",
        "cpu_count": os.cpu_count(),
        "note": (
            "warm_parallel_cold_pool reproduces the retired pool-per-call "
            "behaviour (spawn + calibrate per map); warm_parallel and "
            "warm_pool_reuse ride the persistent pool; kernel regimes: "
            f"warm cache, {KERNEL_TRIALS} trials"
        ),
        "runs": runs,
        "pool": diagnostics,
        "multicore_assertions": (
            "enforced" if multicore
            else "skipped: single-CPU host (os.cpu_count() <= 1), parallel "
                 "wall times cannot beat serial without real cores"
        ),
        "speedup_warm_vs_cold_serial": round(warm_speedup, 3),
        "speedup_warm_parallel_vs_cold_serial": round(
            runs["cold_serial"]["wall_seconds"]
            / runs["warm_parallel"]["wall_seconds"],
            3,
        ),
        "speedup_pool_reuse_vs_cold_pool": round(pool_reuse_speedup, 3),
        "speedup_vectorized_vs_loop": round(kernel_speedup, 3),
        "telemetry": {
            "series_identical_enabled_vs_disabled": True,  # asserted above
            "overhead_enabled_vs_disabled": round(telemetry_overhead, 3),
            "instrumentation_ops": telemetry_registry.ops,
            "noop_call_seconds": round(noop_seconds, 9),
            "noop_overhead_fraction_of_kernel_vectorized": round(
                noop_overhead_fraction, 6
            ),
            "snapshot_counters": snapshot.to_dict()["counters"],
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    print(json.dumps(payload, indent=2))

    assert warm_speedup > 1.0, runs
    # The batch kernels must never lose to the trial loops.
    assert kernel_speedup > 1.0, runs
    # The off-by-default path is cheap: the whole instrumentation call
    # volume, priced at the measured no-op cost, is <2% of the regime.
    assert noop_overhead_fraction < 0.02, payload["telemetry"]
    # "auto" must never regress over warm serial: the cost model keeps
    # this sweep serial unless the warm pool is predicted to pay for
    # itself. Allow measurement noise but no structural regression.
    assert (
        runs["warm_auto"]["wall_seconds"]
        <= 1.5 * runs["warm_serial"]["wall_seconds"] + 0.05
    ), runs
    # Reusing the persistent pool always beats respawning it per call.
    assert (
        runs["warm_pool_reuse"]["wall_seconds"]
        < runs["warm_parallel_cold_pool"]["wall_seconds"]
    ), runs
    if multicore:
        # The tentpole's success metric: with a persistent pool and the
        # shared-memory data plane, the parallel path wins outright on
        # real cores, and pool reuse amortises the spawn tax >= 5x.
        assert (
            runs["warm_parallel"]["wall_seconds"]
            < runs["warm_serial"]["wall_seconds"]
        ), runs
        assert (
            runs["cold_parallel"]["wall_seconds"]
            < runs["cold_serial"]["wall_seconds"]
        ), runs
        assert pool_reuse_speedup >= 5.0, runs
    else:
        print(
            "\nskipping multi-core assertions: os.cpu_count() <= 1 "
            "(recorded in payload)"
        )
