"""§5.2.1 headline numbers: bound tightness and tradeoff accuracy."""

from __future__ import annotations

import math

from repro.experiments.headline import run_headline_tightness, run_headline_tradeoff


def test_headline_tightness(benchmark, show):
    result = benchmark.pedantic(
        run_headline_tightness, kwargs={"trials": 50}, rounds=1, iterations=1
    )
    show(result)

    baselines = list(result.knobs)
    max_pct = dict(zip(baselines, result.series["max_improvement_pct"]))
    # The paper's headline: up to ~155% tighter than competing methods.
    # Against EBGS and the online-aggregation bounds we expect at least
    # that order of improvement somewhere in the sweep.
    assert max_pct["ebgs"] > 100.0
    assert max_pct["hoeffding"] > 100.0
    assert max_pct["hoeffding-serfling"] > 50.0


def test_headline_tradeoff(benchmark, show):
    result = benchmark.pedantic(
        run_headline_tradeoff, kwargs={"trials": 50}, rounds=1, iterations=1
    )
    show(result)

    reductions = [
        value
        for value in result.series["regret_reduction_pct"]
        if not math.isnan(value)
    ]
    assert reductions, "no error target was achievable"
    # The paper reports tradeoffs 88% more accurate; we expect Smokescreen
    # to eliminate a large share of the EBGS choice's regret.
    assert max(reductions) > 50.0
