"""The serving daemon against the cold CLI, and micro-batching at work.

Runs an in-process :class:`~repro.system.serve.ServeDaemon` on an
ephemeral port and measures, on the same UA-DETRAC AVG query:

- **warm request latency** — p50/p99 and requests/sec of sequential
  ``/bound`` requests against the hot daemon (corpus, detector outputs,
  moments all resident),
- **micro-batching** — 8 compatible concurrent requests per round must
  finish with *fewer kernel calls than requests* (the session's
  ``batched_kernel_calls`` counter proves coalescing) and every answer
  must be **bit-identical** to the same seeds served sequentially,
- **cold CLI cost** — one fresh ``repro estimate`` and one fresh
  ``repro profile`` subprocess paying import + corpus build + detection
  from scratch, the overhead the daemon amortizes away.

The acceptance ratio (warm p50 at least 5x below the cold CLI) holds on
a single CPU: the win is amortization and coalescing, not parallelism.
Results land machine-readably in ``BENCH_serve.json`` at the repo root,
and the run's ledger record (``serve_runs.jsonl``, annotated with
``facts.serve.*``) feeds the ``repro runs check`` gate against the
pinned ``benchmarks/serve_baseline.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro.system import telemetry
from repro.system.observe import ledger as run_ledger
from repro.system.serve import ServeConfig, ServeDaemon, post_json

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serve.json"

#: Reduced corpus shared by the daemon and the cold CLI subprocesses —
#: identical work on both sides keeps the comparison honest.
FRAMES = 2000

#: Sequential warm requests timed for the p50/p99 latency distribution.
SEQUENTIAL_REQUESTS = 40

#: Concurrent compatible requests per micro-batching round.
CONCURRENT_CLIENTS = 8

#: Micro-batching rounds (each fires CONCURRENT_CLIENTS at once).
CONCURRENT_ROUNDS = 5

_PAYLOAD = {
    "dataset": "ua-detrac",
    "aggregate": "avg",
    "fraction": 0.25,
    "tenant": "bench",
}

_PROFILE_PAYLOAD = {
    "dataset": "ua-detrac",
    "aggregate": "avg",
    "trials": 1,
    "fraction_step": 0.25,
    "resolution_count": 3,
    "tenant": "bench",
}


def _cold_cli_seconds(arguments: list[str]) -> float:
    """Wall seconds of one fresh ``repro`` CLI subprocess."""
    env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
    started = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        check=True,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return time.perf_counter() - started


async def _bench_daemon() -> dict:
    """Drive the in-process daemon through every warm regime."""
    config = ServeConfig(
        port=0,
        datasets=("ua-detrac",),
        frames=FRAMES,
        tick_seconds=0.002,
    )
    daemon = ServeDaemon(config)
    warmup_started = time.perf_counter()
    port = await daemon.start()
    warmup_seconds = time.perf_counter() - warmup_started

    async def bound(seed: int) -> tuple[float, dict]:
        started = time.perf_counter()
        status, body = await post_json(
            "127.0.0.1", port, "/bound", {**_PAYLOAD, "seed": seed}
        )
        assert status == 200, body
        return time.perf_counter() - started, body

    # Sequential warm latency: one request in flight at a time, each a
    # 1-row pass through the same batched kernel.
    sequential_latencies: list[float] = []
    serial_bounds: dict[int, float] = {}
    for seed in range(SEQUENTIAL_REQUESTS):
        latency, body = await bound(seed)
        sequential_latencies.append(latency)
        serial_bounds[seed] = body["error_bound"]
        assert body["batch_size"] == 1, body

    kernel_calls_before = daemon.session.stats["kernel_calls"]
    batched_before = daemon.session.stats["batched_kernel_calls"]

    # Concurrent compatible load: every round fires CONCURRENT_CLIENTS
    # requests at once; the batcher must coalesce them.
    concurrent_latencies: list[float] = []
    concurrent_bounds: dict[int, float] = {}
    for round_index in range(CONCURRENT_ROUNDS):
        seeds = list(range(CONCURRENT_CLIENTS))
        results = await asyncio.gather(*(bound(seed) for seed in seeds))
        for seed, (latency, body) in zip(seeds, results):
            concurrent_latencies.append(latency)
            concurrent_bounds[seed] = body["error_bound"]

    concurrent_requests = CONCURRENT_CLIENTS * CONCURRENT_ROUNDS
    concurrent_kernel_calls = (
        daemon.session.stats["kernel_calls"] - kernel_calls_before
    )
    batched_kernel_calls = (
        daemon.session.stats["batched_kernel_calls"] - batched_before
    )

    # Bit-identity: a coalesced row answers exactly what the same seed
    # answered when served alone.
    identical = all(
        concurrent_bounds[seed] == serial_bounds[seed]
        for seed in range(CONCURRENT_CLIENTS)
    )

    # Warm profile latency: the first request prices the hypercube, the
    # rest ride the fingerprint cache.
    profile_latencies: list[float] = []
    for _ in range(4):
        started = time.perf_counter()
        status, body = await post_json(
            "127.0.0.1", port, "/profile", _PROFILE_PAYLOAD, timeout=600
        )
        profile_latencies.append(time.perf_counter() - started)
        assert status == 200, body
    profile_first_seconds = profile_latencies[0]
    profile_cached_seconds = statistics.median(profile_latencies[1:])

    stats = daemon.session.snapshot_stats()
    await daemon.stop()

    return {
        "port": port,
        "warmup_seconds": round(warmup_seconds, 4),
        "sequential_latencies": sequential_latencies,
        "concurrent_latencies": concurrent_latencies,
        "concurrent_requests": concurrent_requests,
        "concurrent_kernel_calls": concurrent_kernel_calls,
        "batched_kernel_calls": batched_kernel_calls,
        "bit_identical": identical,
        "profile_first_seconds": round(profile_first_seconds, 4),
        "profile_cached_seconds": round(profile_cached_seconds, 6),
        "counters": stats["counters"],
    }


def _quantile(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def test_serve_daemon_vs_cold_cli(benchmark):
    ledger_path = os.environ.get("REPRO_SERVE_LEDGER", "serve_runs.jsonl")
    was_enabled = telemetry.enabled()
    if not was_enabled:
        telemetry.enable()
    run_ledger.begin_run(
        "serve",
        {"frames": FRAMES, "benchmark": "serve"},
        ledger_path,
    )
    outcome: dict = {}

    def all_regimes() -> None:
        outcome["daemon"] = asyncio.run(_bench_daemon())
        outcome["cold_cli_estimate_seconds"] = _cold_cli_seconds(
            [
                "estimate", "--dataset", "ua-detrac", "--frames",
                str(FRAMES), "--fraction", "0.25", "--seed", "0",
            ]
        )
        outcome["cold_cli_profile_seconds"] = _cold_cli_seconds(
            [
                "profile", "--dataset", "ua-detrac", "--frames",
                str(FRAMES), "--trials", "1", "--fraction-step", "0.25",
                "--resolution-count", "3", "--no-correction",
                "--output", "/tmp/bench_serve_cube.json",
            ]
        )

    status = "error"
    try:
        benchmark.pedantic(all_regimes, rounds=1, iterations=1)

        daemon = outcome["daemon"]
        sequential = daemon["sequential_latencies"]
        concurrent = daemon["concurrent_latencies"]
        p50_warm = _quantile(sequential, 0.50)
        p99_warm = _quantile(sequential, 0.99)
        p50_concurrent = _quantile(concurrent, 0.50)
        p99_concurrent = _quantile(concurrent, 0.99)
        requests_per_second = len(sequential) / sum(sequential)
        coalescing_ratio = (
            daemon["concurrent_requests"] / daemon["concurrent_kernel_calls"]
        )
        cold_estimate = outcome["cold_cli_estimate_seconds"]
        cold_profile = outcome["cold_cli_profile_seconds"]
        speedup_estimate = cold_estimate / p50_warm
        speedup_profile = cold_profile / daemon["profile_cached_seconds"]

        serve_facts = {
            "p50_warm_seconds": round(p50_warm, 6),
            "p99_warm_seconds": round(p99_warm, 6),
            "p50_concurrent_seconds": round(p50_concurrent, 6),
            "p99_concurrent_seconds": round(p99_concurrent, 6),
            "requests_per_second": round(requests_per_second, 2),
            "cold_cli_seconds": round(cold_estimate, 4),
            "cold_cli_profile_seconds": round(cold_profile, 4),
            "speedup_cold_over_warm": round(speedup_estimate, 2),
            "speedup_profile_cold_over_warm": round(speedup_profile, 2),
            "coalescing_ratio": round(coalescing_ratio, 3),
            "concurrent_requests": daemon["concurrent_requests"],
            "concurrent_kernel_calls": daemon["concurrent_kernel_calls"],
            "batched_kernel_calls": daemon["batched_kernel_calls"],
            "bit_identical": daemon["bit_identical"],
        }
        run_ledger.annotate(serve=serve_facts)

        payload = {
            "benchmark": "serve",
            "query": "UA-DETRAC AVG, f=0.25, smokescreen bound",
            "cpu_count": os.cpu_count(),
            "frames": FRAMES,
            "note": (
                "warm = in-process daemon on an ephemeral port (corpus, "
                "detector outputs and pool resident); cold = fresh "
                "'repro estimate'/'repro profile' subprocess on the same "
                "query; concurrent rounds fire "
                f"{CONCURRENT_CLIENTS} compatible requests at once"
            ),
            "warmup_seconds": daemon["warmup_seconds"],
            "sequential": {
                "requests": len(sequential),
                "p50_seconds": round(p50_warm, 6),
                "p99_seconds": round(p99_warm, 6),
                "requests_per_second": round(requests_per_second, 2),
            },
            "concurrent": {
                "clients": CONCURRENT_CLIENTS,
                "rounds": CONCURRENT_ROUNDS,
                "requests": daemon["concurrent_requests"],
                "kernel_calls": daemon["concurrent_kernel_calls"],
                "batched_kernel_calls": daemon["batched_kernel_calls"],
                "coalescing_ratio": round(coalescing_ratio, 3),
                "p50_seconds": round(p50_concurrent, 6),
                "p99_seconds": round(p99_concurrent, 6),
                "bit_identical_to_serial": daemon["bit_identical"],
            },
            "profile": {
                "first_seconds": daemon["profile_first_seconds"],
                "cached_seconds": daemon["profile_cached_seconds"],
                "cold_cli_seconds": round(cold_profile, 4),
                "speedup_cold_over_cached": round(speedup_profile, 2),
            },
            "cold_cli_estimate_seconds": round(cold_estimate, 4),
            "speedup_cold_cli_over_warm_p50": round(speedup_estimate, 2),
            "session_counters": daemon["counters"],
        }
        OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {OUTPUT_PATH}")
        print(json.dumps(payload, indent=2))

        # Acceptance: the warm daemon answers the same query >= 5x faster
        # than a fresh CLI process (amortization, not parallelism).
        assert speedup_estimate >= 5.0, payload
        assert speedup_profile >= 5.0, payload
        # Micro-batching: N concurrent compatible requests take fewer
        # kernel calls than N sequential ones would (one call each), and
        # at least one call actually carried a coalesced batch.
        assert (
            daemon["concurrent_kernel_calls"] < daemon["concurrent_requests"]
        ), payload
        assert daemon["batched_kernel_calls"] >= 1, payload
        # Determinism: coalesced answers match the serial path bit for bit.
        assert daemon["bit_identical"], payload
        status = "ok"
    finally:
        run_ledger.finish_run(
            status=status,
            exit_code=0 if status == "ok" else 1,
            snapshot=telemetry.registry().snapshot()
            if telemetry.enabled()
            else None,
        )
        if not was_enabled and telemetry.enabled():
            telemetry.disable()
