"""Figure 8: predicted car-count distributions at 608 / 384 / 320."""

from __future__ import annotations

from repro.detection.zoo import YOLO_ANOMALY_SIDE
from repro.experiments.fig8_count_distribution import (
    distribution_distance,
    run_fig8,
)


def test_fig8_count_distribution(benchmark, show):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    show(result)

    deviant = distribution_distance(result, YOLO_ANOMALY_SIDE, 608)
    close = distribution_distance(result, 320, 608)
    # The 384 distribution deviates substantially from the truth while the
    # 320 one stays close — the paper's explanation of Figure 7.
    assert deviant > 2.0 * close
