"""The scenario zoo vs the bound-violation sentinel, end to end.

Runs every scenario in the chaos zoo — both adversarial families
(targeted frame corruption, adversarial compression) and all physical
families (occlusion, misalignment, weather/exposure) — against a small
seeded fleet with an armed :class:`FleetSentinel`, and tabulates the
three robustness questions of the zoo per scenario:

- do the profiled bounds still hold (ground-truth violation rate),
- does the sentinel catch the violation and trigger automatic
  Algorithm 3 repair (recall / repair catch rate),
- can the fleet localize the culprit camera (localization accuracy)?

Results are written machine-readably to ``BENCH_chaos.json`` next to the
repo root, in the shape the ``repro runs check`` perf gate consumes
(per-scenario recall / FPR / localization / verdict). The hard floor
asserted here matches the gate's: at the top severity every scenario's
violation must be detected (recall 1.0) with zero false flags on the
clean cameras (pooled FPR 0.0).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.experiments.chaos_sweep import SCENARIOS, run_scenario_chaos

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

#: Small-but-sufficient sweep: three seeded trials per severity over a
#: three-camera fleet keeps the full five-scenario zoo in CI budget while
#: every severity level still exercises arming, auditing, and repair.
TRIALS = 3
FRAME_COUNT = 1000
CAMERA_COUNT = 3


def _scenario_payload(name: str, result) -> dict:
    """Flatten one sweep's defense metrics for the JSON report."""
    recalls = result.series["sentinel recall"]
    fp_rates = result.series["sentinel false-positive rate"]
    repairs = result.series["repair catch rate"]
    top_recall = recalls[-1]
    # Equal trials and fleet size per severity, so the pooled FPR over
    # every clean-camera audit is the plain mean of the per-severity rates.
    pooled_fpr = sum(fp_rates) / len(fp_rates)
    return {
        "kind": SCENARIOS[name].kind,
        "severities": list(result.knobs),
        "violation_rate": result.series["bound violation rate"],
        "recall": [None if math.isnan(r) else r for r in recalls],
        "false_positive_rate": fp_rates,
        "repair_catch_rate": [None if math.isnan(r) else r for r in repairs],
        "localization": result.series["localization accuracy"],
        "top_severity_recall": (
            None if math.isnan(top_recall) else top_recall
        ),
        "pooled_fpr": pooled_fpr,
        "top_severity_localization": (
            result.series["localization accuracy"][-1]
        ),
    }


def test_chaos_scenario_zoo(benchmark, show):
    scenarios: dict[str, dict] = {}
    walls: dict[str, float] = {}

    def all_scenarios() -> None:
        for name in sorted(SCENARIOS):
            start = time.perf_counter()
            result = run_scenario_chaos(
                name,
                trials=TRIALS,
                frame_count=FRAME_COUNT,
                camera_count=CAMERA_COUNT,
                seed=0,
            )
            walls[name] = round(time.perf_counter() - start, 4)
            scenarios[name] = _scenario_payload(name, result)
            show(result)

    benchmark.pedantic(all_scenarios, rounds=1, iterations=1)

    payload = {
        "benchmark": "chaos_scenarios",
        "config": {
            "trials": TRIALS,
            "frame_count": FRAME_COUNT,
            "camera_count": CAMERA_COUNT,
            "seed": 0,
        },
        "note": (
            "per-scenario sentinel defense metrics; the gate floor is "
            "top-severity recall 1.0 and pooled clean-camera FPR 0.0"
        ),
        "scenarios": scenarios,
        "wall_seconds": walls,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    print(json.dumps(payload, indent=2))

    # The zoo covers both attack surfaces the issue names.
    kinds = {entry["kind"] for entry in scenarios.values()}
    assert kinds == {"adversarial", "physical"}, scenarios

    for name, entry in scenarios.items():
        # Top severity must actually break the profiled bound — a
        # scenario that never violates is testing nothing.
        assert entry["violation_rate"][-1] == 1.0, (name, entry)
        # ... and the sentinel must catch every one of those violations
        # while never flagging a healthy camera at any severity.
        assert entry["top_severity_recall"] == 1.0, (name, entry)
        assert entry["pooled_fpr"] == 0.0, (name, entry)
        # Flagging exactly the victim is what makes the alarm actionable
        # at fleet scale.
        assert entry["top_severity_localization"] == 1.0, (name, entry)
