"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables/figures at the
paper's full corpus sizes, prints the same rows/series the paper reports
(via ``capsys.disabled()`` so they land in the terminal / tee output), and
asserts the expected qualitative shape. ``benchmark.pedantic(fn, rounds=1,
iterations=1)`` times a single full regeneration — these are experiment
drivers, not micro-benchmarks.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print an ExperimentResult to the real terminal despite capture."""

    def _show(result) -> None:
        with capsys.disabled():
            print()
            result.print()
            print()

    return _show
