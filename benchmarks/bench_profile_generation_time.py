"""§5.3.1: profile generation time is dominated by model invocations."""

from __future__ import annotations

from repro.experiments.timing import run_timing


def test_profile_generation_time(benchmark, show):
    result = benchmark.pedantic(run_timing, rounds=1, iterations=1)
    show(result)

    total_invocations = sum(result.series["invocations"])
    # The paper's accounting: 4% of 15,210 frames at each of 10 candidate
    # resolutions = 6,084 invocations.
    assert 5000 <= total_invocations <= 7000

    model_seconds = sum(result.series["model_seconds"])
    # Priced at ~30 ms/frame (native) the sweep lands near the paper's
    # "around three minutes" for the native-resolution part; the full
    # mixed-resolution sweep is cheaper since low resolutions are faster.
    assert model_seconds > 30.0
