"""Figure 5: CLT's bound violates the 95% level at small fractions."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig5_clt_violations import run_fig5


def test_fig5_clt_violations(benchmark, show):
    result = benchmark.pedantic(
        run_fig5, kwargs={"trials": 100}, rounds=1, iterations=1
    )
    show(result)

    clt = np.array(result.series["clt_violation_pct"])
    ours = np.array(result.series["smokescreen_violation_pct"])
    # CLT exceeds the 5% budget somewhere in the small-fraction region.
    assert clt.max() > 5.0
    # Smokescreen never does (some slack for 100-trial binomial noise).
    assert ours.max() <= 7.0
