"""Micro-benchmarks: the estimation stage itself (paper §5.3.1).

The paper's timing argument rests on estimation being negligible — "tens
of milliseconds" per degradation setting against minutes of model time.
These are true micro-benchmarks (many rounds) of each estimator on a
realistic sample size (10% of UA-DETRAC, n = 1,521), asserting every
estimator stays well inside the paper's envelope.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.estimators.classic import (
    CLTEstimator,
    HoeffdingEstimator,
    HoeffdingSerflingEstimator,
)
from repro.estimators.ebgs import EBGSEstimator
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.stein import SteinEstimator
from repro.estimators.variance import SmokescreenVarianceEstimator
from repro.experiments.workloads import load_dataset, model_for
from repro.query.aggregates import Aggregate

POPULATION = 15210
SAMPLE_SIZE = 1521


@pytest.fixture(scope="module")
def sample():
    dataset = load_dataset("ua-detrac")
    counts = model_for("ua-detrac").run(dataset).counts.astype(float)
    rng = np.random.default_rng(0)
    return rng.choice(counts, size=SAMPLE_SIZE, replace=False)


MEAN_ESTIMATORS = [
    SmokescreenMeanEstimator,
    EBGSEstimator,
    HoeffdingEstimator,
    HoeffdingSerflingEstimator,
    CLTEstimator,
    SmokescreenVarianceEstimator,
]


@pytest.mark.parametrize(
    "estimator_cls", MEAN_ESTIMATORS, ids=[cls.__name__ for cls in MEAN_ESTIMATORS]
)
def test_mean_family_estimation_overhead(benchmark, sample, estimator_cls):
    estimator = estimator_cls()
    estimate = benchmark(estimator.estimate, sample, POPULATION, 0.05)
    assert estimate.error_bound >= 0.0
    # "Tens of milliseconds" per setting, with a wide safety margin.
    assert benchmark.stats["mean"] < 0.05


QUANTILE_ESTIMATORS = [SmokescreenQuantileEstimator, SteinEstimator]


@pytest.mark.parametrize(
    "estimator_cls",
    QUANTILE_ESTIMATORS,
    ids=[cls.__name__ for cls in QUANTILE_ESTIMATORS],
)
def test_quantile_estimation_overhead(benchmark, sample, estimator_cls):
    estimator = estimator_cls()
    estimate = benchmark(
        estimator.estimate, sample, POPULATION, 0.99, 0.05, Aggregate.MAX
    )
    assert estimate.error_bound >= 0.0
    assert benchmark.stats["mean"] < 0.05


def test_full_corpus_detector_pass_overhead(benchmark):
    """One full-corpus simulated-detector pass at a fresh resolution —
    the substrate's own cost, to put the estimator numbers in context."""
    from repro.video.geometry import Resolution

    dataset = load_dataset("ua-detrac")
    detector = model_for("ua-detrac")

    def run_uncached():
        detector.clear_cache()
        return detector.run(dataset, Resolution(320)).counts

    counts = benchmark(run_uncached)
    assert counts.size == dataset.frame_count
