"""Steady-state streaming throughput and the drift-repair loop, timed.

Replays the UA-DETRAC corpus as a live feed through the full stream
stack — camera counts → :class:`~repro.estimators.sentinel.BoundSentinel`
→ :class:`~repro.estimators.streaming.WindowedMeanEstimator` — twice:

- a **clean control** that must finish with zero breaches (the sentinel
  stays quiet inside the profiled regime), and
- a **hostile replay** where the weather scenario takes over mid-feed at
  near-whiteout severity; the sentinel must trip and issue an
  Algorithm 3 repair.

Alongside the end-to-end replays, the raw engines are timed standalone:
:class:`~repro.stats.prefix_moments.RollingPrefixMoments` appends (the
O(1)-amortized growing prefix) and
:class:`~repro.stats.prefix_moments.SlidingWindowMoments` appends (the
deque-backed window with exact extrema).

Results land machine-readably in ``BENCH_stream.json`` at the repo root,
and the run's ledger record (``stream_runs.jsonl``, annotated with
``facts.stream.*`` from the hostile replay) feeds the
``repro runs check --min-stream-fps`` gate against the pinned
``benchmarks/stream_baseline.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.stats.prefix_moments import (
    RollingPrefixMoments,
    SlidingWindowMoments,
)
from repro.system import telemetry
from repro.system.observe import ledger as run_ledger
from repro.system.stream import StreamConfig, replay_stream

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_stream.json"

#: Corpus frames per replay (the feed's universe).
FRAMES = 2000

#: Sliding-window capacity (and per-check batch size) of the replays.
WINDOW = 480

#: Values pushed through each raw engine's append loop.
RAW_APPENDS = 100_000


def _raw_rolling_fps() -> float:
    """Appends/sec of the growing-prefix engine (single feed row)."""
    values = np.random.default_rng(0).gamma(2.0, 3.0, size=RAW_APPENDS)
    rolling = RollingPrefixMoments(trials=1)
    started = time.perf_counter()
    for value in values:
        rolling.append(value)
    elapsed = time.perf_counter() - started
    assert rolling.size == RAW_APPENDS
    return RAW_APPENDS / elapsed


def _raw_window_fps() -> float:
    """Appends/sec of the sliding-window engine at the replay's window."""
    values = np.random.default_rng(1).gamma(2.0, 3.0, size=RAW_APPENDS)
    window = SlidingWindowMoments(WINDOW)
    started = time.perf_counter()
    for value in values:
        window.append(value)
    elapsed = time.perf_counter() - started
    assert window.is_full
    return RAW_APPENDS / elapsed


def test_stream_replay_throughput_and_repair(benchmark):
    ledger_path = os.environ.get("REPRO_STREAM_LEDGER", "stream_runs.jsonl")
    was_enabled = telemetry.enabled()
    if not was_enabled:
        telemetry.enable()
    run_ledger.begin_run(
        "stream",
        {"frames": FRAMES, "window": WINDOW, "benchmark": "stream"},
        ledger_path,
    )
    outcome: dict = {}

    def all_regimes() -> None:
        # Clean first, hostile last: facts.stream (the gated record) must
        # describe the hostile replay with the trip and the repair.
        outcome["clean"] = replay_stream(
            StreamConfig(frames=FRAMES, window=WINDOW)
        )
        outcome["hostile"] = replay_stream(
            StreamConfig(
                frames=FRAMES,
                window=WINDOW,
                scenario="weather",
                severity=0.95,
            )
        )
        outcome["rolling_fps"] = _raw_rolling_fps()
        outcome["window_fps"] = _raw_window_fps()

    status = "error"
    try:
        benchmark.pedantic(all_regimes, rounds=1, iterations=1)

        clean = outcome["clean"]
        hostile = outcome["hostile"]
        payload = {
            "benchmark": "stream",
            "query": "UA-DETRAC AVG replayed as a live feed",
            "cpu_count": os.cpu_count(),
            "frames": FRAMES,
            "window": WINDOW,
            "note": (
                "clean = in-regime replay (sentinel must stay quiet); "
                "hostile = weather@0.95 takes over at half-feed "
                "(sentinel must trip and auto-repair); raw = tight "
                "append loops on the standalone engines"
            ),
            "clean": clean.as_payload(),
            "hostile": hostile.as_payload(),
            "raw_engines": {
                "appends": RAW_APPENDS,
                "rolling_appends_per_sec": round(outcome["rolling_fps"], 1),
                "window_appends_per_sec": round(outcome["window_fps"], 1),
            },
        }
        OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {OUTPUT_PATH}")
        print(json.dumps(payload, indent=2))

        # The clean control must finish inside the profiled regime.
        assert not clean.verdict.tripped, payload
        assert clean.violations == 0, payload
        # The hostile replay must trip after the onset and auto-repair.
        assert hostile.verdict.tripped, payload
        assert hostile.verdict.first_breach_count is not None, payload
        assert hostile.verdict.first_breach_count > hostile.onset_index, (
            payload
        )
        assert hostile.repairs == 1, payload
        repaired = hostile.verdict.repair
        assert repaired is not None and repaired.error_bound > 0.0, payload
        # Throughput sanity: the whole stack ingests well beyond any
        # camera's real-time rate (the CI gate enforces the pinned floor).
        assert hostile.frames_per_sec > 1000.0, payload
        status = "ok"
    finally:
        run_ledger.finish_run(
            status=status,
            exit_code=0 if status == "ok" else 1,
            snapshot=telemetry.registry().snapshot()
            if telemetry.enabled()
            else None,
        )
        if not was_enabled and telemetry.enabled():
            telemetry.disable()
