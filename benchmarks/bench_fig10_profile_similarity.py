"""Figure 10: profile differences — similar video vs limited access."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig10_profile_similarity import (
    run_fig10_resolution,
    run_fig10_sampling,
)


def test_fig10_sampling_axis(benchmark, show):
    result = benchmark.pedantic(
        run_fig10_sampling, kwargs={"trials": 30}, rounds=1, iterations=1
    )
    show(result)

    knobs = np.array(result.knobs)
    limited = np.array(result.series["limited_A_diff"])
    similar = np.array(result.series["similar_B_diff"])
    below_cap = knobs <= 50
    # Below the access cap the limited profile is the target profile.
    assert np.all(limited[below_cap] == 0.0)
    # Beyond the cap the limited profile drifts away more than the
    # similar-video profile does.
    assert limited[~below_cap].mean() > similar[~below_cap].mean()
    # The similar video's profile stays close throughout.
    assert similar.max() < 0.15


def test_fig10_resolution_axis(benchmark, show):
    result = benchmark.pedantic(
        run_fig10_resolution, kwargs={"trials": 20}, rounds=1, iterations=1
    )
    show(result)

    limited = np.array(result.series["limited_A_diff"])
    similar = np.array(result.series["similar_B_diff"])
    # The similar video's profile is far closer to the target than the
    # limited-access profile at every resolution.
    assert np.all(similar < limited)
    assert similar.mean() < 0.5 * limited.mean()
