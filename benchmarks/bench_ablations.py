"""Ablations of the design choices DESIGN.md calls out."""

from __future__ import annotations

import numpy as np

from repro.detection.zoo import YOLO_ANOMALY_SIDE
from repro.experiments.ablations import (
    run_ablation_anomaly,
    run_ablation_elbow,
    run_ablation_radius,
    run_ablation_replacement,
    run_ablation_reuse,
)


def test_ablation_radius(benchmark, show):
    result = benchmark.pedantic(
        run_ablation_radius, kwargs={"trials": 100}, rounds=1, iterations=1
    )
    show(result)

    hs = np.array(result.series["hoeffding_serfling"])
    hoeffding = np.array(result.series["hoeffding"])
    bernstein = np.array(result.series["empirical_bernstein"])
    # Hoeffding-Serfling never looser than Hoeffding inside Algorithm 1.
    assert np.all(hs <= hoeffding + 1e-9)
    # The small-sample advantage over empirical Bernstein (§3.2.1): at the
    # smallest fractions HS is tighter.
    assert hs[0] < bernstein[0]
    assert hs[1] < bernstein[1]


def test_ablation_replacement(benchmark, show):
    result = benchmark.pedantic(
        run_ablation_replacement, kwargs={"trials": 100}, rounds=1, iterations=1
    )
    show(result)

    without = np.array(result.series["without_replacement"])
    with_repl = np.array(result.series["with_replacement"])
    assert np.all(without <= with_repl + 1e-12)
    # The finite-population shrinkage grows with the fraction.
    gap = with_repl - without
    assert gap[-1] > gap[0]


def test_ablation_elbow(benchmark, show):
    result = benchmark.pedantic(run_ablation_elbow, rounds=1, iterations=1)
    show(result)

    fractions = np.array(result.series["correction_fraction"])
    # Tighter tolerances never shrink the correction set.
    assert np.all(np.diff(fractions) >= -1e-12)


def test_ablation_reuse(benchmark, show):
    result = benchmark.pedantic(run_ablation_reuse, rounds=1, iterations=1)
    show(result)

    reuse, naive = result.series["invocations"]
    # Reuse processes max(fractions)=4%; naive processes the 10% sum.
    assert reuse < 0.5 * naive


def test_ablation_anomaly(benchmark, show):
    result = benchmark.pedantic(run_ablation_anomaly, rounds=1, iterations=1)
    show(result)

    knobs = list(result.knobs)
    at = knobs.index(float(YOLO_ANOMALY_SIDE))
    with_anomaly = result.series["with_anomaly"]
    without = result.series["without_anomaly"]
    # The spike exists only with the model artifact.
    assert with_anomaly[at] > with_anomaly[at + 1]
    assert without[at] <= without[at - 1]


def test_ablation_stratified(benchmark, show):
    from repro.experiments.ablations import run_ablation_stratified

    result = benchmark.pedantic(
        run_ablation_stratified, kwargs={"trials": 150}, rounds=1, iterations=1
    )
    show(result)

    ratios = np.array(result.series["rmse_ratio"])
    violations = np.array(result.series["stratified_violation_pct"])
    # Stratification beats SRS at every budget on temporally correlated
    # video, substantially at the larger ones.
    assert np.all(ratios < 1.0)
    assert ratios[-1] < 0.75
    # The SRS-derived bound stays empirically valid under stratification.
    assert violations.max() <= 5.0
