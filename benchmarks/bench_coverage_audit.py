"""Global coverage audit: the Table 1 validity claims, certified at once."""

from __future__ import annotations

import numpy as np

from repro.experiments.coverage_audit import (
    GUARANTEED_ROWS,
    run_coverage_audit,
)


def test_coverage_audit(benchmark, show):
    result = benchmark.pedantic(
        run_coverage_audit, kwargs={"trials": 100}, rounds=1, iterations=1
    )
    show(result)

    worst = np.array(result.series["worst_violation_pct"])
    guaranteed = np.array(result.series["guaranteed"]) == 1.0
    # Every guaranteed row stays near the nominal 5% budget. The audit
    # reports the WORST cell over 2 datasets x 3 fractions (6 cells of 100
    # trials each), so the max-of-binomials needs headroom above 5%.
    assert worst[guaranteed].max() <= 9.0
    assert len(GUARANTEED_ROWS) == int(guaranteed.sum())
