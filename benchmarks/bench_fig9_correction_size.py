"""Figure 9: corrected bound vs correction-set size, and the elbow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig9_correction_size import run_fig9
from repro.query.aggregates import Aggregate


@pytest.mark.parametrize("aggregate", [Aggregate.AVG, Aggregate.MAX], ids=["AVG", "MAX"])
def test_fig9_correction_size(benchmark, show, aggregate):
    result = benchmark.pedantic(
        run_fig9,
        kwargs={"aggregate": aggregate, "trials": 50},
        rounds=1,
        iterations=1,
    )
    show(result)

    own = np.array(result.series["own_bound"])
    set1 = np.array(result.series["set1_corrected_bound"])
    set2 = np.array(result.series["set2_corrected_bound"])
    # Larger correction sets buy smaller bounds overall (steep-then-flat).
    assert own[-1] < own[0]
    assert set1[-1] < set1[0]
    assert set2[-1] < set2[0]
    # The flattening: the last step improves far less than the first step.
    first_drop = own[0] - own[1]
    last_drop = abs(own[-2] - own[-1])
    assert last_drop < first_drop
