"""Figure 4: true error + error bound per method, all eight panels.

Shape assertions per panel (the §5.2.1 claims):

- Smokescreen's bound stays above its true error (validity);
- Smokescreen is tighter than EBGS (mean family) / Stein at small
  fractions (MAX);
- Hoeffding-Serfling is never looser than Hoeffding;
- bounds and errors fall as the fraction grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig4_bound_comparison import run_fig4
from repro.experiments.workloads import DATASET_NAMES
from repro.query.aggregates import Aggregate

PANELS = [
    (dataset, aggregate)
    for dataset in DATASET_NAMES
    for aggregate in (Aggregate.AVG, Aggregate.SUM, Aggregate.COUNT, Aggregate.MAX)
]


@pytest.mark.parametrize(
    "dataset_name,aggregate", PANELS, ids=[f"{d}-{a.name}" for d, a in PANELS]
)
def test_fig4_panel(benchmark, show, dataset_name, aggregate):
    result = benchmark.pedantic(
        run_fig4,
        args=(dataset_name, aggregate),
        kwargs={"trials": 100},
        rounds=1,
        iterations=1,
    )
    show(result)

    ours_bound = np.array(result.series["smokescreen_bound"])
    ours_err = np.array(result.series["smokescreen_err"])
    # Validity: the averaged bound sits above the averaged true error.
    assert np.all(ours_bound >= ours_err - 1e-9)
    # Both decrease from the smallest to the largest fraction.
    assert ours_bound[-1] < ours_bound[0]
    assert ours_err[-1] <= ours_err[0] + 0.05

    if aggregate.is_mean_family:
        ebgs = np.array(result.series["ebgs_bound"])
        assert np.all(ours_bound <= ebgs + 1e-9)
    else:
        stein = np.array(result.series["stein_bound"])
        # Tighter at the small-fraction end (the paper's MAX claim).
        assert ours_bound[-1] < stein[-1]
