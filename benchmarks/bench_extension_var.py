"""Extension bench: the VAR aggregate (the paper's §7 future work)."""

from __future__ import annotations

import numpy as np

from repro.experiments.extension_var import run_extension_var


def test_extension_var(benchmark, show):
    result = benchmark.pedantic(
        run_extension_var, kwargs={"trials": 100}, rounds=1, iterations=1
    )
    show(result)

    ours_viol = np.array(result.series["smokescreen_violation_pct"])
    clt_viol = np.array(result.series["clt_violation_pct"])
    ours_bound = np.array(result.series["smokescreen_bound"])
    clt_bound = np.array(result.series["clt_bound"])
    # Guaranteed: Smokescreen-VAR never exceeds the 5% budget.
    assert ours_viol.max() <= 5.0
    # Informative at large fractions: the bound leaves the degenerate 1.0.
    assert ours_bound[-1] < 0.9
    # The tight-vs-trusted split: CLT-VAR is tighter wherever our bound is
    # informative, but it does record violations while ours records none.
    assert clt_bound[-1] < ours_bound[-1]
    assert clt_viol.max() >= ours_viol.max()
    assert clt_viol.max() > 0.0
