"""Figure 3: real degradation-accuracy tradeoff curves on both corpora."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig3_tradeoff_curves import run_fig3


def test_fig3_tradeoff_curves(benchmark, show):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    show(result)

    night = np.array(result.series["night-street"])
    detrac = np.array(result.series["ua-detrac"])
    # Shape: large error at the lowest resolution, near zero at native.
    assert night[0] > 0.5 and detrac[0] > 0.5
    assert night[-1] < 0.05 and detrac[-1] < 0.05
    # Shape: the curves are video-dependent (the paper's point) — the two
    # differ meaningfully at intermediate resolutions.
    middle = slice(1, len(night) - 1)
    assert np.max(np.abs(night[middle] - detrac[middle])) > 0.05
