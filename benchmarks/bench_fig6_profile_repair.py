"""Figure 6: bounds with and without the correction set, all twelve rows.

Shape assertions (§5.2.2):

- the corrected bound covers the true error on every axis (validity of
  Algorithm 3);
- on non-random axes, the uncorrected bound drops below the true error at
  the strong interventions (the paper's red circles) — demonstrated on the
  resolution rows where the effect is structural.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig6_profile_repair import AXES, run_fig6
from repro.experiments.workloads import DATASET_NAMES
from repro.query.aggregates import Aggregate

ROWS = [
    (dataset, aggregate, axis)
    for dataset in DATASET_NAMES
    for aggregate in (Aggregate.AVG, Aggregate.MAX)
    for axis in AXES
]


@pytest.mark.parametrize(
    "dataset_name,aggregate,axis",
    ROWS,
    ids=[f"{d}-{a.name}-{axis}" for d, a, axis in ROWS],
)
def test_fig6_row(benchmark, show, dataset_name, aggregate, axis):
    result = benchmark.pedantic(
        run_fig6,
        args=(dataset_name, aggregate, axis),
        kwargs={"trials": 50},
        rounds=1,
        iterations=1,
    )
    show(result)

    corrected = np.array(result.series["bound_with_correction"])
    uncorrected = np.array(result.series["bound_no_correction"])
    errors = np.array(result.series["true_error"])

    # Validity: the corrected bound covers the true error everywhere.
    assert np.all(corrected >= errors - 0.02)

    if axis == "resolution" and aggregate == Aggregate.AVG:
        # The red-circle failure: at the lowest resolution the uncorrected
        # bound is below the true error.
        assert uncorrected[0] < errors[0]
    if axis == "sampling":
        # Random axis: the uncorrected bound is also valid.
        assert np.all(uncorrected >= errors - 0.02)
