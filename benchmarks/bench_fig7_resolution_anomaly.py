"""Figure 7: the abnormal relative-error spike at 384x384."""

from __future__ import annotations

import numpy as np

from repro.detection.zoo import YOLO_ANOMALY_SIDE
from repro.experiments.fig7_resolution_anomaly import run_fig7


def test_fig7_resolution_anomaly(benchmark, show):
    result = benchmark.pedantic(
        run_fig7, kwargs={"trials": 50}, rounds=1, iterations=1
    )
    show(result)

    knobs = list(result.knobs)
    errors = np.array(result.series["true_error"])
    corrected = np.array(result.series["bound_with_correction"])

    at = knobs.index(float(YOLO_ANOMALY_SIDE))
    # The spike: the true error at 384 exceeds both neighbours, i.e. a
    # *higher* resolution is *less* accurate than a lower one.
    assert errors[at] > errors[at - 1]
    assert errors[at] > errors[at + 1]
    # The corrected bound tracks it, so a profile exposes the bad setting.
    assert corrected[at] > corrected[at + 1]
    assert np.all(corrected >= errors - 0.02)
