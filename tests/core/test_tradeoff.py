"""Tests for tradeoff selection under public preferences."""

from __future__ import annotations

import pytest

from repro.core.profile import Profile, ProfilePoint
from repro.core.tradeoff import (
    PublicPreferences,
    choose_tradeoff,
    tradeoff_regret,
)
from repro.errors import ProfileError
from repro.interventions import InterventionPlan
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


def profile_with(fractions, bounds, true_errors=None) -> Profile:
    true_errors = true_errors or [None] * len(fractions)
    points = tuple(
        ProfilePoint(
            plan=InterventionPlan.from_knobs(f=fraction),
            error_bound=bound,
            value=5.0,
            n=10,
            true_error=true_error,
        )
        for fraction, bound, true_error in zip(fractions, bounds, true_errors)
    )
    return Profile(axis="sampling", points=points)


def resolution_profile(sides, bounds) -> Profile:
    points = tuple(
        ProfilePoint(
            plan=InterventionPlan.from_knobs(p=side),
            error_bound=bound,
            value=5.0,
            n=10,
        )
        for side, bound in zip(sides, bounds)
    )
    return Profile(axis="resolution", points=points)


class TestPreferences:
    def test_rejects_nonpositive_max_error(self):
        with pytest.raises(ProfileError):
            PublicPreferences(max_error=0.0)

    def test_admits_resolution_ceiling(self):
        preferences = PublicPreferences(max_error=0.1, max_resolution=Resolution(256))
        low = ProfilePoint(
            plan=InterventionPlan.from_knobs(p=128), error_bound=0.0, value=1.0, n=1
        )
        high = ProfilePoint(
            plan=InterventionPlan.from_knobs(p=512), error_bound=0.0, value=1.0, n=1
        )
        assert preferences.admits(low)
        assert not preferences.admits(high)

    def test_native_resolution_fails_ceiling(self):
        """No resolution knob at all means full resolution — inadmissible
        under a resolution ceiling."""
        preferences = PublicPreferences(max_error=0.1, max_resolution=Resolution(256))
        point = ProfilePoint(
            plan=InterventionPlan.from_knobs(f=0.5), error_bound=0.0, value=1.0, n=1
        )
        assert not preferences.admits(point)

    def test_required_removed(self):
        preferences = PublicPreferences(
            max_error=0.1, required_removed=(ObjectClass.FACE,)
        )
        with_face = ProfilePoint(
            plan=InterventionPlan.from_knobs(c=(ObjectClass.FACE, ObjectClass.PERSON)),
            error_bound=0.0,
            value=1.0,
            n=1,
        )
        without = ProfilePoint(
            plan=InterventionPlan.from_knobs(c=(ObjectClass.PERSON,)),
            error_bound=0.0,
            value=1.0,
            n=1,
        )
        assert preferences.admits(with_face)
        assert not preferences.admits(without)

    def test_max_fraction(self):
        preferences = PublicPreferences(max_error=0.1, max_fraction=0.3)
        ok = ProfilePoint(
            plan=InterventionPlan.from_knobs(f=0.2), error_bound=0.0, value=1.0, n=1
        )
        too_much = ProfilePoint(
            plan=InterventionPlan.from_knobs(f=0.5), error_bound=0.0, value=1.0, n=1
        )
        assert preferences.admits(ok)
        assert not preferences.admits(too_much)


class TestChooseTradeoff:
    def test_picks_most_degraded_meeting_target(self):
        profile = profile_with([0.05, 0.1, 0.5, 1.0], [0.5, 0.12, 0.08, 0.0])
        choice = choose_tradeoff(profile, PublicPreferences(max_error=0.1))
        assert choice.point.plan.fraction == 0.5

    def test_tighter_bound_allows_more_degradation(self):
        """The Figure 2 story: a tighter curve yields a better tradeoff."""
        loose = profile_with([0.1, 0.5, 1.0], [0.5, 0.3, 0.05])
        tight = profile_with([0.1, 0.5, 1.0], [0.09, 0.03, 0.0])
        preferences = PublicPreferences(max_error=0.1)
        assert (
            choose_tradeoff(tight, preferences).degradation_level
            < choose_tradeoff(loose, preferences).degradation_level
        )

    def test_resolution_axis_prefers_lower_side(self):
        profile = resolution_profile([128, 320, 608], [0.3, 0.08, 0.0])
        choice = choose_tradeoff(profile, PublicPreferences(max_error=0.1))
        assert choice.degradation_level == 320.0

    def test_no_admissible_point_raises(self):
        profile = profile_with([0.1, 0.5], [0.5, 0.4])
        with pytest.raises(ProfileError):
            choose_tradeoff(profile, PublicPreferences(max_error=0.1))

    def test_oracle_choice_requires_true_errors(self):
        profile = profile_with([0.1, 0.5], [0.2, 0.05])
        with pytest.raises(ProfileError):
            choose_tradeoff(
                profile, PublicPreferences(max_error=0.1), use_true_error=True
            )


class TestRegret:
    def test_zero_when_bound_is_oracle(self):
        profile = profile_with(
            [0.1, 0.5, 1.0], [0.05, 0.02, 0.0], true_errors=[0.05, 0.02, 0.0]
        )
        assert tradeoff_regret(profile, PublicPreferences(max_error=0.1)) == 0.0

    def test_positive_for_looser_bound(self):
        """A bound that overestimates error forces a larger fraction."""
        profile = profile_with(
            [0.1, 0.5, 1.0], [0.3, 0.08, 0.0], true_errors=[0.04, 0.01, 0.0]
        )
        regret = tradeoff_regret(profile, PublicPreferences(max_error=0.1))
        assert regret == pytest.approx((0.5 - 0.1) / 0.1)
