"""Tests for profile similarity and the Smokescreen facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profile import Profile, ProfilePoint
from repro.core.similarity import profile_difference
from repro.core.smokescreen import Smokescreen
from repro.core.tradeoff import PublicPreferences
from repro.detection import yolo_v4_like
from repro.errors import ConfigurationError, ProfileError
from repro.interventions import InterventionPlan
from repro.query import Aggregate
from repro.video import ua_detrac


def sampling_profile(fractions, bounds) -> Profile:
    points = tuple(
        ProfilePoint(
            plan=InterventionPlan.from_knobs(f=fraction),
            error_bound=bound,
            value=1.0,
            n=1,
        )
        for fraction, bound in zip(fractions, bounds)
    )
    return Profile(axis="sampling", points=points)


class TestProfileDifference:
    def test_pointwise_differences(self):
        a = sampling_profile([0.1, 0.2, 0.3], [0.5, 0.3, 0.2])
        b = sampling_profile([0.1, 0.2, 0.3], [0.45, 0.35, 0.2])
        diff = profile_difference(a, b)
        assert diff.differences.tolist() == pytest.approx([0.05, 0.05, 0.0])
        assert diff.max_difference == pytest.approx(0.05)
        assert diff.mean_difference == pytest.approx(0.1 / 3)

    def test_only_shared_knobs_compared(self):
        a = sampling_profile([0.1, 0.2], [0.5, 0.3])
        b = sampling_profile([0.2, 0.4], [0.25, 0.1])
        diff = profile_difference(a, b)
        assert diff.knob_values == (0.2,)

    def test_rejects_axis_mismatch(self):
        a = sampling_profile([0.1], [0.5])
        point = ProfilePoint(
            plan=InterventionPlan.from_knobs(p=128), error_bound=0.1, value=1.0, n=1
        )
        b = Profile(axis="resolution", points=(point,))
        with pytest.raises(ProfileError):
            profile_difference(a, b)

    def test_rejects_disjoint_knobs(self):
        a = sampling_profile([0.1], [0.5])
        b = sampling_profile([0.2], [0.3])
        with pytest.raises(ProfileError):
            profile_difference(a, b)


class TestSmokescreenFacade:
    @pytest.fixture(scope="class")
    def system(self):
        return Smokescreen(ua_detrac(frame_count=1500), yolo_v4_like(), trials=2)

    def test_query_builder(self, system):
        query = system.query(Aggregate.MAX)
        assert query.aggregate == Aggregate.MAX
        assert query.delta == 0.05

    def test_correction_set_for_foreign_query_rejected(self, system, detrac_dataset):
        from repro.query import AggregateQuery

        foreign = AggregateQuery(detrac_dataset, yolo_v4_like(), Aggregate.AVG)
        with pytest.raises(ConfigurationError):
            system.build_correction_set(foreign)

    def test_end_to_end_profile_choose_estimate(self, system):
        query = system.query(Aggregate.AVG)
        correction = system.build_correction_set(query)
        candidates = system.candidates(fraction_step=0.2, resolution_count=3)
        cube = system.profile(query, candidates, correction=correction)
        sampling, resolution, removal = cube.initial_slices()
        choice = system.choose(sampling, PublicPreferences(max_error=0.35))
        estimate = system.estimate(query, choice.point.plan)
        truth = system.processor.true_answer(query)
        assert abs(estimate.value - truth) / truth <= choice.point.error_bound + 0.15

    def test_ledger_accumulates(self, system):
        assert system.ledger.total > 0
