"""Tests for multi-query workloads sharing samples and corrections."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.workload import QueryWorkload
from repro.errors import ConfigurationError, ProfileError
from repro.query import Aggregate, AggregateQuery


@pytest.fixture
def workload(detrac_dataset, yolo_car, processor):
    queries = [
        AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG),
        AggregateQuery(detrac_dataset, yolo_car, Aggregate.COUNT),
        AggregateQuery(detrac_dataset, yolo_car, Aggregate.MAX),
    ]
    return QueryWorkload(queries, processor, trials=2)


class TestConstruction:
    def test_rejects_empty(self, processor):
        with pytest.raises(ConfigurationError):
            QueryWorkload([], processor)

    def test_rejects_mixed_corpora(self, detrac_dataset, night_dataset, yolo_car, processor):
        queries = [
            AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG),
            AggregateQuery(night_dataset, yolo_car, Aggregate.AVG),
        ]
        with pytest.raises(ConfigurationError):
            QueryWorkload(queries, processor)

    def test_rejects_duplicate_queries(self, detrac_dataset, yolo_car, processor):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        with pytest.raises(ConfigurationError):
            QueryWorkload([query, query], processor)


class TestSharedCorrection:
    def test_shared_set_is_largest_per_query_elbow(self, workload, processor, detrac_dataset, yolo_car):
        from repro.core.correction import determine_correction_set

        shared = workload.build_shared_correction_set(np.random.default_rng(3))
        for query in workload.queries:
            own = determine_correction_set(
                processor, query, np.random.default_rng(3)
            )
            assert shared.size >= own.size

    def test_per_query_sets_are_prefixes(self, workload, processor):
        """The same RNG state drives every query's sizing, so smaller sets
        are prefixes of the shared one."""
        from repro.core.correction import determine_correction_set

        shared = workload.build_shared_correction_set(np.random.default_rng(4))
        own = determine_correction_set(
            processor, workload.queries[0], np.random.default_rng(4)
        )
        assert np.array_equal(
            shared.frame_indices[: own.size], own.frame_indices
        )


class TestProfilesAndChoice:
    def test_profiles_per_query(self, workload, rng):
        profiles = workload.profile_sampling((0.05, 0.1, 0.3), rng)
        assert len(profiles) == 3
        for profile in profiles.values():
            assert len(profile.points) == 3

    def test_correction_values_re_evaluated_per_query(self, workload, rng):
        """COUNT sees indicators, AVG sees counts — the shared frames must
        be re-valued per query."""
        correction = workload.build_shared_correction_set(np.random.default_rng(5))
        profiles = workload.profile_sampling((0.1, 0.4), rng, correction=correction)
        assert set(profiles) == {q.label() for q in workload.queries}

    def test_choice_satisfies_every_query(self, workload, rng):
        profiles = workload.profile_sampling((0.05, 0.1, 0.3, 0.6), rng)
        targets = {
            label: float(profile.error_bounds().max()) + 0.01
            for label, profile in profiles.items()
        }
        choice = workload.choose_sampling(profiles, targets)
        assert choice.fraction == 0.05  # loose targets: max degradation
        assert set(choice.bounds) == set(profiles)

    def test_strictest_query_dominates(self, workload, rng):
        """Tightening one query's target can only raise the fraction."""
        profiles = workload.profile_sampling((0.05, 0.1, 0.3, 0.6), rng)
        loose = {
            label: float(profile.error_bounds().max()) + 0.01
            for label, profile in profiles.items()
        }
        loose_choice = workload.choose_sampling(profiles, loose)
        strict = dict(loose)
        first = next(iter(profiles))
        strict[first] = float(profiles[first].error_bounds().min()) + 1e-9
        strict_choice = workload.choose_sampling(profiles, strict)
        assert strict_choice.fraction >= loose_choice.fraction

    def test_missing_target_rejected(self, workload, rng):
        profiles = workload.profile_sampling((0.1,), rng)
        with pytest.raises(ProfileError):
            workload.choose_sampling(profiles, {})

    def test_infeasible_targets_rejected(self, workload, rng):
        profiles = workload.profile_sampling((0.05,), rng)
        targets = {label: 1e-9 for label in profiles}
        with pytest.raises(ProfileError):
            workload.choose_sampling(profiles, targets)
