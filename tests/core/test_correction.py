"""Tests for correction-set construction (the §3.3.1 elbow heuristic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.correction import determine_correction_set
from repro.errors import ConfigurationError
from repro.query import Aggregate, AggregateQuery


@pytest.fixture
def avg_query(detrac_dataset, yolo_car):
    return AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)


@pytest.fixture
def max_query(detrac_dataset, yolo_car):
    return AggregateQuery(detrac_dataset, yolo_car, Aggregate.MAX)


class TestDetermineCorrectionSet:
    def test_grows_in_one_percent_steps(self, processor, avg_query, rng):
        correction = determine_correction_set(processor, avg_query, rng)
        step = round(avg_query.dataset.frame_count * 0.01)
        sizes = [size for size, _ in correction.trace]
        assert sizes[0] == step
        assert all(b - a == step for a, b in zip(sizes, sizes[1:]))

    def test_stops_at_elbow(self, processor, avg_query, rng):
        correction = determine_correction_set(processor, avg_query, rng)
        assert correction.size < avg_query.dataset.frame_count
        # The last step's improvement is below the 2% tolerance.
        if len(correction.trace) >= 2:
            previous = correction.trace[-2][1]
            final = correction.trace[-1][1]
            assert abs(previous - final) < 0.02

    def test_trace_bounds_decrease_overall(self, processor, avg_query, rng):
        correction = determine_correction_set(processor, avg_query, rng)
        bounds = [bound for _, bound in correction.trace]
        assert bounds[-1] <= bounds[0]

    def test_error_bound_matches_final_trace_entry(self, processor, avg_query, rng):
        correction = determine_correction_set(processor, avg_query, rng)
        assert correction.error_bound == correction.trace[-1][1]

    def test_size_limit_respected(self, processor, avg_query, rng):
        limit = round(avg_query.dataset.frame_count * 0.02)
        correction = determine_correction_set(
            processor, avg_query, rng, size_limit=limit, tolerance=0.0
        )
        assert correction.size <= limit

    def test_values_are_native_resolution_outputs(self, processor, avg_query, rng):
        correction = determine_correction_set(processor, avg_query, rng)
        full = processor.true_values(avg_query)
        assert np.array_equal(correction.values, full[correction.frame_indices])

    def test_indices_distinct(self, processor, avg_query, rng):
        correction = determine_correction_set(processor, avg_query, rng)
        assert len(set(correction.frame_indices.tolist())) == correction.size

    def test_max_query_uses_quantile_bound(self, processor, max_query, rng):
        """MAX correction sets can stop much earlier (paper: 2% vs 4-6%)."""
        correction = determine_correction_set(processor, max_query, rng)
        assert correction.size >= 1
        assert correction.error_bound >= 0.0

    def test_quantile_correction_smaller_than_mean(
        self, processor, avg_query, max_query
    ):
        """The paper's observed pattern: the MAX correction set is smaller
        than the AVG one on the same video."""
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        avg_correction = determine_correction_set(processor, avg_query, rng_a)
        max_correction = determine_correction_set(processor, max_query, rng_b)
        assert max_correction.size <= avg_correction.size

    def test_fraction_helper(self, processor, avg_query, rng):
        correction = determine_correction_set(processor, avg_query, rng)
        population = avg_query.dataset.frame_count
        assert correction.fraction(population) == correction.size / population

    def test_rejects_bad_growth_step(self, processor, avg_query, rng):
        with pytest.raises(ConfigurationError):
            determine_correction_set(processor, avg_query, rng, growth_step=0.0)

    def test_rejects_negative_tolerance(self, processor, avg_query, rng):
        with pytest.raises(ConfigurationError):
            determine_correction_set(processor, avg_query, rng, tolerance=-0.1)

    def test_zero_tolerance_runs_to_limit(self, processor, avg_query, rng):
        limit = round(avg_query.dataset.frame_count * 0.03)
        correction = determine_correction_set(
            processor, avg_query, rng, tolerance=0.0, size_limit=limit
        )
        assert correction.size == limit
