"""Differential tests: the vectorized profiler path vs the trial loops.

The vectorized kernels carry PR 2's determinism contract: both paths draw
the same samples, record the same ledger totals, keep the same early-stop
selections, and agree on every value and bound within 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidates import CandidateGrid
from repro.core.correction import determine_correction_set
from repro.core.profiler import DegradationProfiler
from repro.interventions import InterventionPlan
from repro.query import Aggregate, AggregateQuery
from repro.system.costs import InvocationLedger
from repro.video.geometry import Resolution, resolution_grid

RTOL = 1e-9
ATOL = 1e-12

FRACTIONS = (0.02, 0.05, 0.1, 0.2)


@pytest.fixture
def avg_query(detrac_dataset, yolo_car):
    return AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)


@pytest.fixture
def max_query(detrac_dataset, yolo_car):
    return AggregateQuery(detrac_dataset, yolo_car, Aggregate.MAX)


def paired_profilers(processor, trials, ledgers=False):
    """One vectorized and one loop profiler, optionally with own ledgers."""
    kwargs_v = {"ledger": InvocationLedger()} if ledgers else {}
    kwargs_l = {"ledger": InvocationLedger()} if ledgers else {}
    vec = DegradationProfiler(processor, trials=trials, vectorized=True, **kwargs_v)
    loop = DegradationProfiler(processor, trials=trials, vectorized=False, **kwargs_l)
    return vec, loop


class TestHypercubeDifferential:
    def test_bounds_ledger_and_nan_mask_agree(self, processor, avg_query):
        grid = CandidateGrid(
            fractions=FRACTIONS,
            resolutions=tuple(
                resolution_grid(avg_query.dataset.native_resolution, 3)
            ),
            removals=((),),
        )
        vec, loop = paired_profilers(processor, trials=3, ledgers=True)
        cube_vec = vec.generate_hypercube_seeded(
            avg_query, grid, root=5, early_stop_tolerance=0.05
        )
        cube_loop = loop.generate_hypercube_seeded(
            avg_query, grid, root=5, early_stop_tolerance=0.05
        )
        # Identical early-stop decisions: the NaN masks match exactly.
        np.testing.assert_array_equal(
            np.isnan(cube_vec.bounds), np.isnan(cube_loop.bounds)
        )
        np.testing.assert_allclose(
            cube_vec.bounds, cube_loop.bounds, rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(
            cube_vec.values, cube_loop.values, rtol=RTOL, atol=ATOL
        )
        # Identical samples drawn: the ledgers fold to the same counts.
        assert vec._ledger.by_resolution() == loop._ledger.by_resolution()
        assert vec._ledger.total == loop._ledger.total

    def test_max_aggregate_uses_quantile_fallback(self, processor, max_query):
        vec, loop = paired_profilers(processor, trials=2)
        profile_vec = vec.profile_sampling_seeded(max_query, FRACTIONS, root=3)
        profile_loop = loop.profile_sampling_seeded(max_query, FRACTIONS, root=3)
        np.testing.assert_allclose(
            profile_vec.error_bounds(), profile_loop.error_bounds(),
            rtol=RTOL, atol=ATOL,
        )


class TestSamplingSweepDifferential:
    def test_with_correction_set(self, processor, avg_query, rng):
        correction = determine_correction_set(processor, avg_query, rng)
        vec, loop = paired_profilers(processor, trials=3)
        profile_vec = vec.profile_sampling_seeded(
            avg_query, FRACTIONS, root=11,
            resolution=Resolution(160), correction=correction,
        )
        profile_loop = loop.profile_sampling_seeded(
            avg_query, FRACTIONS, root=11,
            resolution=Resolution(160), correction=correction,
        )
        assert profile_vec.knob_values() == profile_loop.knob_values()
        np.testing.assert_allclose(
            profile_vec.error_bounds(), profile_loop.error_bounds(),
            rtol=RTOL, atol=ATOL,
        )

    def test_early_stop_keeps_same_points(self, processor, avg_query):
        vec, loop = paired_profilers(processor, trials=2)
        fractions = (0.05, 0.1, 0.2, 0.4, 0.8)
        profile_vec = vec.profile_sampling_seeded(
            avg_query, fractions, root=2, early_stop_tolerance=0.5
        )
        profile_loop = loop.profile_sampling_seeded(
            avg_query, fractions, root=2, early_stop_tolerance=0.5
        )
        assert profile_vec.knob_values() == profile_loop.knob_values()
        assert len(profile_vec.points) < len(fractions)


class TestPointEstimates:
    @pytest.mark.parametrize("aggregate", [Aggregate.AVG, Aggregate.SUM])
    def test_estimate_plan_matches_loop(
        self, processor, detrac_dataset, yolo_car, aggregate
    ):
        query = AggregateQuery(detrac_dataset, yolo_car, aggregate)
        plan = InterventionPlan.from_knobs(f=0.1)
        vec, loop = paired_profilers(processor, trials=3)
        point_vec = vec.estimate_plan(
            query, plan, np.random.default_rng(9)
        )
        point_loop = loop.estimate_plan(
            query, plan, np.random.default_rng(9)
        )
        assert point_vec.value == pytest.approx(point_loop.value, rel=RTOL)
        assert point_vec.error_bound == pytest.approx(
            point_loop.error_bound, rel=RTOL
        )
        assert point_vec.n == point_loop.n

    def test_estimate_plan_seeded_matches_loop(self, processor, avg_query):
        plan = InterventionPlan.from_knobs(f=0.08, p=160)
        vec, loop = paired_profilers(processor, trials=4)
        point_vec = vec.estimate_plan_seeded(avg_query, plan, root=17, unit_index=0)
        point_loop = loop.estimate_plan_seeded(avg_query, plan, root=17, unit_index=0)
        assert point_vec.value == pytest.approx(point_loop.value, rel=RTOL)
        assert point_vec.error_bound == pytest.approx(
            point_loop.error_bound, rel=RTOL
        )
        assert point_vec.n == point_loop.n

    def test_n_is_max_across_trials(self, processor, avg_query):
        # Every trial samples the same count here, so n must equal it —
        # the regression was reporting only the *last* trial's n.
        profiler = DegradationProfiler(processor, trials=3, vectorized=False)
        plan = InterventionPlan.from_knobs(f=0.1)
        point = profiler.estimate_plan(avg_query, plan, np.random.default_rng(1))
        assert point.n == round(avg_query.dataset.frame_count * 0.1)
