"""Tests for the degradation profiler."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.candidates import CandidateGrid
from repro.core.correction import determine_correction_set
from repro.core.profiler import DegradationProfiler
from repro.errors import ConfigurationError
from repro.interventions import InterventionPlan
from repro.query import Aggregate, AggregateQuery
from repro.system.costs import InvocationLedger
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


@pytest.fixture
def avg_query(detrac_dataset, yolo_car):
    return AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)


@pytest.fixture
def profiler(processor):
    return DegradationProfiler(processor, trials=2)


class TestSamplingProfiles:
    def test_bounds_decrease_with_fraction(self, profiler, avg_query, rng):
        profile = profiler.profile_sampling(
            avg_query, (0.02, 0.05, 0.1, 0.3, 0.6), rng
        )
        bounds = profile.error_bounds()
        assert bounds[-1] < bounds[0]

    def test_points_carry_sample_sizes(self, profiler, avg_query, rng):
        profile = profiler.profile_sampling(avg_query, (0.1, 0.2), rng)
        assert profile.points[0].n == round(avg_query.dataset.frame_count * 0.1)

    def test_early_stop_truncates_sweep(self, profiler, avg_query, rng):
        full = profiler.profile_sampling(
            avg_query, (0.05, 0.1, 0.2, 0.4, 0.8), rng
        )
        stopped = profiler.profile_sampling(
            avg_query,
            (0.05, 0.1, 0.2, 0.4, 0.8),
            rng,
            early_stop_tolerance=0.5,
        )
        assert len(stopped.points) < len(full.points)

    def test_fractions_must_be_ascending(self, profiler, avg_query, rng):
        with pytest.raises(ConfigurationError):
            profiler.profile_sampling(avg_query, (0.5, 0.1), rng)

    def test_removal_restricts_universe(self, profiler, avg_query, rng):
        profile = profiler.profile_sampling(
            avg_query, (0.1,), rng, removal=(ObjectClass.PERSON,)
        )
        assert profile.points[0].n < round(avg_query.dataset.frame_count * 0.1)


class TestResolutionProfiles:
    def test_resolution_axis(self, profiler, avg_query, rng):
        profile = profiler.profile_resolution(
            avg_query,
            (Resolution(128), Resolution(320), Resolution(608)),
            rng,
            fraction=0.3,
        )
        assert profile.axis == "resolution"
        assert profile.knob_values() == [128.0, 320.0, 608.0]

    def test_correction_keeps_bounds_valid_at_low_resolution(
        self, processor, avg_query, rng
    ):
        """Figure 6's second row: with a correction set, the profiled bound
        at a strong resolution intervention covers the true error."""
        correction = determine_correction_set(
            processor, avg_query, np.random.default_rng(1)
        )
        profiler = DegradationProfiler(processor, trials=5)
        profile = profiler.profile_resolution(
            avg_query, (Resolution(192),), rng, fraction=0.5, correction=correction
        )
        truth = processor.true_answer(avg_query)
        degraded_mean = avg_query.model.run(
            avg_query.dataset, Resolution(192)
        ).counts.mean()
        true_error = abs(degraded_mean - truth) / truth
        assert profile.points[0].error_bound >= true_error


class TestRemovalProfiles:
    def test_removal_axis_labels(self, profiler, avg_query, rng):
        profile = profiler.profile_removal(
            avg_query,
            ((), (ObjectClass.PERSON,), (ObjectClass.FACE,)),
            rng,
            fraction=0.3,
        )
        assert profile.knob_values() == ["none", "remove person", "remove face"]


class TestEstimatePlan:
    def test_random_plan_min_of_bounds(self, processor, avg_query, rng):
        """With a correction set on a random plan, the tighter of the basic
        and corrected bounds is used — never worse than basic alone."""
        correction = determine_correction_set(
            processor, avg_query, np.random.default_rng(2)
        )
        profiler = DegradationProfiler(processor, trials=1)
        plan = InterventionPlan.from_knobs(f=0.1)
        seed_rng = lambda: np.random.default_rng(3)
        with_correction = profiler.estimate_plan(
            avg_query, plan, seed_rng(), correction
        )
        without = profiler.estimate_plan(avg_query, plan, seed_rng(), None)
        assert with_correction.error_bound <= without.error_bound + 1e-12

    def test_trials_average(self, processor, avg_query):
        profiler = DegradationProfiler(processor, trials=10)
        plan = InterventionPlan.from_knobs(f=0.05)
        point = profiler.estimate_plan(avg_query, plan, np.random.default_rng(4))
        assert point.error_bound > 0
        assert point.n == round(avg_query.dataset.frame_count * 0.05)

    def test_rejects_nonpositive_trials(self, processor):
        with pytest.raises(ConfigurationError):
            DegradationProfiler(processor, trials=0)


class TestHypercube:
    def test_generate_full_grid(self, processor, avg_query, rng):
        grid = CandidateGrid(
            fractions=(0.05, 0.2),
            resolutions=(Resolution(256), Resolution(608)),
            removals=((), (ObjectClass.FACE,)),
        )
        profiler = DegradationProfiler(processor, trials=1)
        cube = profiler.generate_hypercube(avg_query, grid, rng)
        assert cube.bounds.shape == (2, 2, 2)
        assert not np.isnan(cube.bounds).any()

    def test_early_stop_leaves_nan_cells(self, processor, avg_query, rng):
        grid = CandidateGrid(
            fractions=(0.05, 0.1, 0.2, 0.4),
            resolutions=(Resolution(608),),
            removals=((),),
        )
        profiler = DegradationProfiler(processor, trials=1)
        cube = profiler.generate_hypercube(
            avg_query, grid, rng, early_stop_tolerance=0.9
        )
        assert np.isnan(cube.bounds).any()

    def test_ledger_counts_reused_invocations(self, processor, avg_query, rng):
        """Nested sweeps record each frame once per resolution: total
        invocations equal the largest sample size, not the sum."""
        ledger = InvocationLedger()
        profiler = DegradationProfiler(processor, trials=1, ledger=ledger)
        grid = CandidateGrid(
            fractions=(0.05, 0.1, 0.2),
            resolutions=(Resolution(608),),
            removals=((),),
        )
        profiler.generate_hypercube(avg_query, grid, rng)
        expected = round(avg_query.dataset.frame_count * 0.2)
        assert ledger.total == expected
