"""Tests for intervention-candidate design."""

from __future__ import annotations

import pytest

from repro.core.candidates import (
    CandidateGrid,
    default_candidates,
    fraction_candidates,
    removal_candidates,
)
from repro.errors import ConfigurationError
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


class TestFractionCandidates:
    def test_one_percent_intervals(self):
        fractions = fraction_candidates()
        assert len(fractions) == 100
        assert fractions[0] == pytest.approx(0.01)
        assert fractions[-1] == pytest.approx(1.0)

    def test_custom_step_and_max(self):
        fractions = fraction_candidates(step=0.05, maximum=0.2)
        assert fractions == (0.05, 0.1, 0.15, 0.2)

    def test_rejects_bad_step(self):
        with pytest.raises(ConfigurationError):
            fraction_candidates(step=0.0)
        with pytest.raises(ConfigurationError):
            fraction_candidates(step=0.5, maximum=0.3)


class TestRemovalCandidates:
    def test_all_subsets_of_paper_classes(self):
        combos = removal_candidates()
        assert () in combos
        assert (ObjectClass.PERSON,) in combos
        assert (ObjectClass.FACE,) in combos
        assert (ObjectClass.PERSON, ObjectClass.FACE) in combos
        assert len(combos) == 4

    def test_single_class(self):
        combos = removal_candidates((ObjectClass.FACE,))
        assert combos == ((), (ObjectClass.FACE,))


class TestCandidateGrid:
    def test_default_grid_for_corpus(self, detrac_dataset):
        grid = default_candidates(detrac_dataset)
        assert len(grid.fractions) == 100
        assert grid.resolutions[-1] == detrac_dataset.native_resolution
        assert len(grid.removals) == 4
        assert grid.cell_count == 100 * len(grid.resolutions) * 4

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            CandidateGrid(fractions=(), resolutions=(Resolution(64),), removals=((),))
        with pytest.raises(ConfigurationError):
            CandidateGrid(
                fractions=(0.5, 0.1),
                resolutions=(Resolution(64),),
                removals=((),),
            )
        with pytest.raises(ConfigurationError):
            CandidateGrid(
                fractions=(0.1,),
                resolutions=(Resolution(128), Resolution(64)),
                removals=((),),
            )

    def test_filtered_by_goals(self, detrac_dataset):
        grid = default_candidates(detrac_dataset)
        filtered = grid.filtered(
            min_fraction=0.05,
            max_fraction=0.5,
            max_resolution=Resolution(320),
            required_removed=(ObjectClass.FACE,),
        )
        assert all(0.05 <= f <= 0.5 for f in filtered.fractions)
        assert all(r.side <= 320 for r in filtered.resolutions)
        assert all(ObjectClass.FACE in combo for combo in filtered.removals)

    def test_filtered_keeps_everything_by_default(self, detrac_dataset):
        grid = default_candidates(detrac_dataset)
        assert grid.filtered().cell_count == grid.cell_count
