"""Round-trip tests for profile/hypercube JSON persistence."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.profile import DegradationHypercube, Profile, ProfilePoint
from repro.core.serialization import (
    hypercube_from_dict,
    hypercube_to_dict,
    load_hypercube,
    load_profile,
    plan_from_dict,
    plan_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_hypercube,
    save_profile,
)
from repro.errors import ProfileError
from repro.interventions import FrameSampling, InterventionPlan, NoiseAddition
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


def make_profile() -> Profile:
    points = tuple(
        ProfilePoint(
            plan=InterventionPlan.from_knobs(f=f, p=256, c=(ObjectClass.FACE,)),
            error_bound=bound,
            value=5.0,
            n=int(f * 100),
            true_error=0.01 if f == 0.5 else None,
        )
        for f, bound in ((0.1, 0.4), (0.5, 0.2), (1.0, 0.0))
    )
    return Profile(axis="sampling", points=points, query_label="AVG(test)")


def make_cube() -> DegradationHypercube:
    bounds = np.array([[[0.1, 0.2]], [[math.nan, math.inf]]])
    values = np.array([[[5.0, 4.0]], [[3.0, 2.0]]])
    return DegradationHypercube(
        fractions=(0.1, 0.5),
        resolutions=(Resolution(320),),
        removals=((), (ObjectClass.PERSON,)),
        bounds=bounds,
        values=values,
        query_label="AVG(test)",
    )


class TestPlanRoundTrip:
    def test_full_triple(self):
        plan = InterventionPlan.from_knobs(
            f=0.1, p=256, c=(ObjectClass.PERSON, ObjectClass.FACE)
        )
        decoded = plan_from_dict(plan_to_dict(plan))
        assert decoded == plan

    def test_loose_plan(self):
        plan = InterventionPlan()
        decoded = plan_from_dict(plan_to_dict(plan))
        assert decoded == plan

    def test_extras_rejected(self):
        plan = InterventionPlan(
            sampling=FrameSampling(0.5), extras=(NoiseAddition(0.2),)
        )
        with pytest.raises(ProfileError):
            plan_to_dict(plan)


class TestProfileRoundTrip:
    def test_dict_round_trip(self):
        profile = make_profile()
        decoded = profile_from_dict(profile_to_dict(profile))
        assert decoded.axis == profile.axis
        assert decoded.query_label == profile.query_label
        assert decoded.knob_values() == profile.knob_values()
        assert decoded.error_bounds().tolist() == profile.error_bounds().tolist()
        assert decoded.points[1].true_error == 0.01
        assert decoded.points[0].true_error is None

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(make_profile(), path)
        decoded = load_profile(path)
        assert decoded.error_bounds().tolist() == [0.4, 0.2, 0.0]

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "profile.json"
        save_profile(make_profile(), path)
        data = json.loads(path.read_text())
        assert data["kind"] == "profile"
        assert data["schema"] == 1

    def test_wrong_kind_rejected(self):
        data = profile_to_dict(make_profile())
        data["kind"] = "hypercube"
        with pytest.raises(ProfileError):
            profile_from_dict(data)

    def test_wrong_schema_rejected(self):
        data = profile_to_dict(make_profile())
        data["schema"] = 999
        with pytest.raises(ProfileError):
            profile_from_dict(data)


class TestHypercubeRoundTrip:
    def test_dict_round_trip_with_nan_and_inf(self):
        cube = make_cube()
        decoded = hypercube_from_dict(hypercube_to_dict(cube))
        assert decoded.fractions == cube.fractions
        assert decoded.resolutions == cube.resolutions
        assert decoded.removals == cube.removals
        assert decoded.bounds[0, 0, 0] == 0.1
        assert math.isnan(decoded.bounds[1, 0, 0])
        assert math.isinf(decoded.bounds[1, 0, 1])

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "cube.json"
        save_hypercube(make_cube(), path)
        decoded = load_hypercube(path)
        assert decoded.values[0, 0, 0] == 5.0

    def test_slices_work_after_round_trip(self, tmp_path):
        path = tmp_path / "cube.json"
        save_hypercube(make_cube(), path)
        decoded = load_hypercube(path)
        profile = decoded.slice_sampling()
        assert profile.axis == "sampling"

    def test_generated_cube_round_trips(self, processor, detrac_dataset, yolo_car, rng, tmp_path):
        """A real profiler output survives persistence bit-for-bit."""
        from repro.core.candidates import CandidateGrid
        from repro.core.profiler import DegradationProfiler
        from repro.query import Aggregate, AggregateQuery

        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        grid = CandidateGrid(
            fractions=(0.05, 0.2),
            resolutions=(Resolution(256), Resolution(608)),
            removals=((), (ObjectClass.FACE,)),
        )
        cube = DegradationProfiler(processor, trials=1).generate_hypercube(
            query, grid, rng
        )
        path = tmp_path / "real.json"
        save_hypercube(cube, path)
        decoded = load_hypercube(path)
        assert np.array_equal(decoded.bounds, cube.bounds, equal_nan=True)
        assert np.array_equal(decoded.values, cube.values, equal_nan=True)
