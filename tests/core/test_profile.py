"""Tests for profiles and the degradation hypercube."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.profile import DegradationHypercube, Profile, ProfilePoint
from repro.errors import ProfileError
from repro.interventions import InterventionPlan
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


def sampling_profile(fractions=(0.1, 0.5, 1.0), bounds=(0.3, 0.1, 0.0)) -> Profile:
    points = tuple(
        ProfilePoint(
            plan=InterventionPlan.from_knobs(f=fraction),
            error_bound=bound,
            value=5.0,
            n=int(fraction * 100),
        )
        for fraction, bound in zip(fractions, bounds)
    )
    return Profile(axis="sampling", points=points, query_label="test")


def make_cube() -> DegradationHypercube:
    fractions = (0.1, 0.5, 1.0)
    resolutions = (Resolution(128), Resolution(320), Resolution(608))
    removals = ((), (ObjectClass.PERSON,))
    shape = (3, 3, 2)
    bounds = np.arange(np.prod(shape), dtype=float).reshape(shape) / 100
    values = np.full(shape, 5.0)
    return DegradationHypercube(
        fractions=fractions,
        resolutions=resolutions,
        removals=removals,
        bounds=bounds,
        values=values,
        query_label="cube",
    )


class TestProfile:
    def test_knob_values_sampling(self):
        assert sampling_profile().knob_values() == [0.1, 0.5, 1.0]

    def test_error_bounds(self):
        assert sampling_profile().error_bounds().tolist() == [0.3, 0.1, 0.0]

    def test_true_errors_nan_when_absent(self):
        assert np.isnan(sampling_profile().true_errors()).all()

    def test_interpolation(self):
        profile = sampling_profile()
        assert profile.interpolate_bound(0.3) == pytest.approx(0.2)
        assert profile.interpolate_bound(0.75) == pytest.approx(0.05)

    def test_interpolation_rejects_out_of_range(self):
        with pytest.raises(ProfileError):
            sampling_profile().interpolate_bound(0.05)

    def test_removal_profile_categorical(self):
        point = ProfilePoint(
            plan=InterventionPlan.from_knobs(c=(ObjectClass.FACE,)),
            error_bound=0.2,
            value=5.0,
            n=10,
        )
        profile = Profile(axis="removal", points=(point,))
        assert profile.knob_values() == ["remove face"]
        with pytest.raises(ProfileError):
            profile.interpolate_bound(1.0)

    def test_rejects_unknown_axis(self):
        point = ProfilePoint(
            plan=InterventionPlan.from_knobs(f=0.5), error_bound=0.1, value=1.0, n=1
        )
        with pytest.raises(ProfileError):
            Profile(axis="compression", points=(point,))

    def test_rejects_empty_profile(self):
        with pytest.raises(ProfileError):
            Profile(axis="sampling", points=())

    def test_resolution_knob_values(self):
        point = ProfilePoint(
            plan=InterventionPlan.from_knobs(p=256), error_bound=0.1, value=1.0, n=1
        )
        profile = Profile(axis="resolution", points=(point,))
        assert profile.knob_values() == [256.0]


class TestHypercube:
    def test_shape_validation(self):
        cube = make_cube()
        with pytest.raises(ProfileError):
            DegradationHypercube(
                fractions=cube.fractions,
                resolutions=cube.resolutions,
                removals=cube.removals,
                bounds=np.zeros((2, 3, 2)),
                values=cube.values,
            )

    def test_initial_slices_fix_loosest(self):
        cube = make_cube()
        sampling, resolution, removal = cube.initial_slices()
        # Sampling slice fixes resolution=608 (index 2) and removal=() (0).
        assert sampling.error_bounds().tolist() == [
            cube.bounds[0, 2, 0],
            cube.bounds[1, 2, 0],
            cube.bounds[2, 2, 0],
        ]
        assert resolution.error_bounds().tolist() == [
            cube.bounds[2, 0, 0],
            cube.bounds[2, 1, 0],
            cube.bounds[2, 2, 0],
        ]
        assert removal.error_bounds().tolist() == [
            cube.bounds[2, 2, 0],
            cube.bounds[2, 2, 1],
        ]

    def test_slice_at_other_indices(self):
        cube = make_cube()
        profile = cube.slice_sampling(resolution_index=0, removal_index=1)
        assert profile.error_bounds().tolist() == [
            cube.bounds[0, 0, 1],
            cube.bounds[1, 0, 1],
            cube.bounds[2, 0, 1],
        ]

    def test_nan_cells_skipped(self):
        cube = make_cube()
        bounds = cube.bounds.copy()
        bounds[1, 2, 0] = math.nan
        cube2 = DegradationHypercube(
            fractions=cube.fractions,
            resolutions=cube.resolutions,
            removals=cube.removals,
            bounds=bounds,
            values=cube.values,
        )
        profile = cube2.slice_sampling()
        assert len(profile.points) == 2

    def test_all_nan_slice_rejected(self):
        cube = make_cube()
        bounds = np.full_like(cube.bounds, math.nan)
        cube2 = DegradationHypercube(
            fractions=cube.fractions,
            resolutions=cube.resolutions,
            removals=cube.removals,
            bounds=bounds,
            values=cube.values,
        )
        with pytest.raises(ProfileError):
            cube2.slice_sampling()

    def test_points_carry_full_plans(self):
        cube = make_cube()
        profile = cube.slice_resolution()
        plan = profile.points[0].plan
        assert plan.fraction == 1.0
        assert plan.resolution.resolution == Resolution(128)
        assert plan.removal is None
