"""Tests for resolutions and the candidate resolution grid."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.video.geometry import Resolution, resolution_grid


class TestResolution:
    def test_pixels(self):
        assert Resolution(608).pixels == 608 * 608

    def test_ordering_by_side(self):
        assert Resolution(128) < Resolution(256) < Resolution(608)

    def test_scale_factor(self):
        assert Resolution(304).scale_factor(Resolution(608)) == pytest.approx(0.5)

    def test_apparent_size_shrinks_linearly(self):
        assert Resolution(128).apparent_size(64.0, Resolution(640)) == pytest.approx(12.8)

    def test_native_apparent_size_unchanged(self):
        assert Resolution(640).apparent_size(50.0, Resolution(640)) == 50.0

    def test_str_format(self):
        assert str(Resolution(384)) == "384x384"

    def test_rejects_nonpositive_side(self):
        with pytest.raises(ConfigurationError):
            Resolution(0)

    def test_hashable_and_equal_by_side(self):
        assert Resolution(256) == Resolution(256)
        assert len({Resolution(256), Resolution(256), Resolution(128)}) == 2


class TestResolutionGrid:
    def test_paper_default_ten_candidates(self):
        grid = resolution_grid(Resolution(608), 10)
        assert grid[-1] == Resolution(608)
        assert grid[0].side >= 64
        assert len(grid) <= 10

    def test_all_multiples_of_64(self):
        """Mask R-CNN's default structure only handles multiples of 64."""
        for resolution in resolution_grid(Resolution(640), 10):
            assert resolution.side % 64 == 0

    def test_ascending_and_unique(self):
        grid = resolution_grid(Resolution(608), 10)
        sides = [resolution.side for resolution in grid]
        assert sides == sorted(set(sides))

    def test_includes_native(self):
        assert Resolution(512) in resolution_grid(Resolution(512), 5)

    def test_narrow_span_deduplicates(self):
        grid = resolution_grid(Resolution(128), 10, minimum=64)
        assert len(grid) <= 3

    def test_rejects_too_few_candidates(self):
        with pytest.raises(ConfigurationError):
            resolution_grid(Resolution(608), 1)

    def test_rejects_bad_minimum(self):
        with pytest.raises(ConfigurationError):
            resolution_grid(Resolution(608), 5, minimum=0)
        with pytest.raises(ConfigurationError):
            resolution_grid(Resolution(608), 5, minimum=1000)

    @given(count=st.integers(min_value=2, max_value=20))
    @settings(max_examples=20)
    def test_grid_bounded_by_count_plus_native(self, count):
        grid = resolution_grid(Resolution(608), count)
        assert 1 <= len(grid) <= count + 1
