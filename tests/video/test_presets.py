"""Tests for the paper-calibrated dataset presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.video import (
    build_dataset,
    detrac_sequence_pair,
    night_street,
    ua_detrac,
)
from repro.video.frame import ObjectClass
from repro.video.presets import (
    DETRAC_SEQUENCE_A_FRAMES,
    DETRAC_SEQUENCE_B_FRAMES,
    NIGHT_STREET_FRAMES,
    UA_DETRAC_FRAMES,
    night_street_scene,
    ua_detrac_scene,
)
from repro.video.geometry import Resolution


class TestNightStreet:
    def test_default_frame_count_matches_paper(self):
        assert NIGHT_STREET_FRAMES == 19463

    def test_native_resolution_for_mask_rcnn(self):
        assert night_street(frame_count=100).native_resolution == Resolution(640)

    def test_sparse_night_traffic(self):
        dataset = night_street(frame_count=5000)
        mean_cars = dataset.true_counts(ObjectClass.CAR).mean()
        assert 0.3 < mean_cars < 1.5

    def test_deterministic_generation(self):
        a = night_street(frame_count=500, seed=9)
        b = night_street(frame_count=500, seed=9)
        assert np.array_equal(
            a.true_counts(ObjectClass.CAR), b.true_counts(ObjectClass.CAR)
        )
        assert np.array_equal(a.clutter, b.clutter)

    def test_different_seeds_differ(self):
        a = night_street(frame_count=500, seed=9)
        b = night_street(frame_count=500, seed=10)
        assert not np.array_equal(
            a.true_counts(ObjectClass.CAR), b.true_counts(ObjectClass.CAR)
        )


class TestUADetrac:
    def test_default_frame_count_matches_paper(self):
        assert UA_DETRAC_FRAMES == 15210

    def test_native_resolution_for_yolo(self):
        assert ua_detrac(frame_count=100).native_resolution == Resolution(608)

    def test_busy_daytime_traffic(self):
        dataset = ua_detrac(frame_count=5000)
        mean_cars = dataset.true_counts(ObjectClass.CAR).mean()
        assert 4.0 < mean_cars < 9.0

    def test_person_frames_common(self):
        """DETRAC person prevalence is high (paper: 65.86% detector-flagged,
        scene truth somewhat higher)."""
        dataset = ua_detrac(frame_count=5000)
        person_share = dataset.true_presence(ObjectClass.PERSON).mean()
        assert 0.55 < person_share < 0.9

    def test_faces_only_on_person_frames(self):
        dataset = ua_detrac(frame_count=5000)
        faces = dataset.true_presence(ObjectClass.FACE)
        persons = dataset.true_presence(ObjectClass.PERSON)
        assert not np.any(faces & ~persons)

    def test_face_count_never_exceeds_person_count(self):
        dataset = ua_detrac(frame_count=5000)
        assert np.all(
            dataset.true_counts(ObjectClass.FACE)
            <= dataset.true_counts(ObjectClass.PERSON)
        )


class TestSequencePair:
    def test_default_lengths_match_paper(self):
        assert DETRAC_SEQUENCE_A_FRAMES == 1720
        assert DETRAC_SEQUENCE_B_FRAMES == 975

    def test_pair_shares_scene_statistics(self):
        """Same camera, different time: similar mean traffic."""
        video_a, video_b = detrac_sequence_pair()
        mean_a = video_a.true_counts(ObjectClass.CAR).mean()
        mean_b = video_b.true_counts(ObjectClass.CAR).mean()
        assert mean_a == pytest.approx(mean_b, rel=0.5)

    def test_pair_not_identical(self):
        video_a, video_b = detrac_sequence_pair(frames_a=500, frames_b=500)
        assert not np.array_equal(
            video_a.true_counts(ObjectClass.CAR),
            video_b.true_counts(ObjectClass.CAR),
        )

    def test_names_distinguish_sequences(self):
        video_a, video_b = detrac_sequence_pair(frames_a=50, frames_b=50)
        assert video_a.name != video_b.name


class TestBuildDataset:
    def test_custom_scene(self):
        dataset = build_dataset(
            night_street_scene(),
            frame_count=200,
            seed=1,
            native_resolution=Resolution(512),
            name="custom",
        )
        assert dataset.name == "custom"
        assert dataset.frame_count == 200
        assert dataset.native_resolution == Resolution(512)

    def test_scene_presets_are_fresh_objects(self):
        assert night_street_scene() is not night_street_scene()
        assert ua_detrac_scene().car_intensity > night_street_scene().car_intensity
