"""Tests for the traffic scene models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.scene import SceneModel, SizeDistribution


class TestSizeDistribution:
    def test_draws_positive_sizes(self):
        rng = np.random.default_rng(0)
        sizes = SizeDistribution(median=40.0, sigma=0.5).draw(1000, rng)
        assert np.all(sizes >= 4.0)

    def test_median_roughly_respected(self):
        rng = np.random.default_rng(1)
        sizes = SizeDistribution(median=40.0, sigma=0.5).draw(20_000, rng)
        assert np.median(sizes) == pytest.approx(40.0, rel=0.05)

    def test_minimum_clamp(self):
        rng = np.random.default_rng(2)
        sizes = SizeDistribution(median=5.0, sigma=1.0, minimum=4.0).draw(5000, rng)
        assert sizes.min() >= 4.0

    def test_zero_count_gives_empty(self):
        rng = np.random.default_rng(3)
        assert SizeDistribution(10.0, 0.3).draw(0, rng).size == 0

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            SizeDistribution(median=0.0, sigma=0.5)
        with pytest.raises(ConfigurationError):
            SizeDistribution(median=10.0, sigma=-1.0)


class TestSceneModel:
    def make_scene(self, **overrides) -> SceneModel:
        params = dict(name="test", car_intensity=3.0)
        params.update(overrides)
        return SceneModel(**params)

    def test_intensity_mean_calibrated(self):
        scene = self.make_scene()
        rng = np.random.default_rng(4)
        intensity = scene.simulate_intensity(50_000, rng)
        assert intensity.mean() == pytest.approx(3.0, rel=0.15)

    def test_intensity_positive(self):
        scene = self.make_scene(intensity_sigma=0.5)
        rng = np.random.default_rng(5)
        assert np.all(scene.simulate_intensity(5000, rng) > 0)

    def test_intensity_temporally_correlated(self):
        """AR(1) with phi near 1 gives strong lag-1 autocorrelation."""
        scene = self.make_scene(intensity_phi=0.99, intensity_sigma=0.3)
        rng = np.random.default_rng(6)
        intensity = scene.simulate_intensity(20_000, rng)
        log_level = np.log(intensity)
        lag1 = np.corrcoef(log_level[:-1], log_level[1:])[0, 1]
        assert lag1 > 0.9

    def test_zero_sigma_gives_constant_intensity(self):
        scene = self.make_scene(intensity_sigma=0.0)
        rng = np.random.default_rng(7)
        intensity = scene.simulate_intensity(100, rng)
        assert np.allclose(intensity, 3.0)

    def test_person_presence_rate_near_base(self):
        scene = self.make_scene(person_base_rate=0.3, person_traffic_coupling=0.0)
        rng = np.random.default_rng(8)
        intensity = scene.simulate_intensity(20_000, rng)
        present = scene.simulate_person_presence(intensity, rng)
        assert present.mean() == pytest.approx(0.3, abs=0.02)

    def test_person_presence_correlates_with_traffic(self):
        """The §5.2.2 correlation: busier frames more often contain people."""
        scene = self.make_scene(
            person_base_rate=0.3, person_traffic_coupling=1.5, intensity_sigma=0.5
        )
        rng = np.random.default_rng(9)
        intensity = scene.simulate_intensity(30_000, rng)
        present = scene.simulate_person_presence(intensity, rng)
        busy = intensity > np.median(intensity)
        assert present[busy].mean() > present[~busy].mean() + 0.05

    def test_rejects_invalid_phi(self):
        with pytest.raises(ConfigurationError):
            self.make_scene(intensity_phi=1.0)

    def test_rejects_invalid_rates(self):
        with pytest.raises(ConfigurationError):
            self.make_scene(person_base_rate=1.5)
        with pytest.raises(ConfigurationError):
            self.make_scene(face_given_person=-0.1)

    def test_rejects_nonpositive_frames(self):
        scene = self.make_scene()
        with pytest.raises(ConfigurationError):
            scene.simulate_intensity(0, np.random.default_rng(10))
