"""Tests for scene calibration against detector-view targets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.detection.zoo import yolo_v4_like
from repro.errors import ConfigurationError
from repro.video.calibration import (
    CalibrationReport,
    CalibrationTarget,
    calibrate_scene,
)
from repro.video.presets import ua_detrac_scene


@pytest.fixture(scope="module")
def car_model():
    return yolo_v4_like()


class TestTargetValidation:
    def test_rejects_bad_shares(self):
        with pytest.raises(ConfigurationError):
            CalibrationTarget(person_share=0.0)
        with pytest.raises(ConfigurationError):
            CalibrationTarget(face_share=1.0)

    def test_rejects_bad_mean(self):
        with pytest.raises(ConfigurationError):
            CalibrationTarget(mean_count=0.0)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ConfigurationError):
            CalibrationTarget(tolerance=0.0)


class TestCalibration:
    def test_already_calibrated_scene_converges_immediately(self, car_model):
        """The shipped preset hits §5.1's numbers in one probe round."""
        report = calibrate_scene(
            ua_detrac_scene(),
            CalibrationTarget(person_share=0.6586, face_share=0.0248, tolerance=0.15),
            car_model,
            frame_count=4000,
        )
        assert report.converged
        assert report.iterations == 1

    def test_recovers_from_detuned_scene(self, car_model):
        """Start far off target; the loop pulls the shares back."""
        detuned = dataclasses.replace(
            ua_detrac_scene(), person_base_rate=0.2, face_given_person=0.3
        )
        target = CalibrationTarget(
            person_share=0.6586, face_share=0.0248, tolerance=0.12
        )
        report = calibrate_scene(detuned, target, car_model, frame_count=4000)
        assert report.converged
        assert report.measured_person_share == pytest.approx(0.6586, rel=0.12)
        assert report.measured_face_share == pytest.approx(0.0248, rel=0.12)

    def test_mean_count_target(self, car_model):
        detuned = dataclasses.replace(ua_detrac_scene(), car_intensity=2.0)
        report = calibrate_scene(
            detuned,
            CalibrationTarget(mean_count=5.5, tolerance=0.1),
            car_model,
            frame_count=4000,
        )
        assert report.converged
        assert report.measured_mean_count == pytest.approx(5.5, rel=0.1)

    def test_unreachable_target_reports_non_convergence(self, car_model):
        """A 99% face share is unreachable (faces need persons and the
        clip caps the rate): the loop gives up honestly."""
        report = calibrate_scene(
            ua_detrac_scene(),
            CalibrationTarget(face_share=0.99, tolerance=0.05),
            car_model,
            frame_count=2000,
            max_iterations=4,
        )
        assert not report.converged
        assert isinstance(report, CalibrationReport)

    def test_no_targets_is_trivially_converged(self, car_model):
        report = calibrate_scene(
            ua_detrac_scene(), CalibrationTarget(), car_model, frame_count=1000
        )
        assert report.converged
        assert report.iterations == 1

    def test_rejects_nonpositive_iterations(self, car_model):
        with pytest.raises(ConfigurationError):
            calibrate_scene(
                ua_detrac_scene(),
                CalibrationTarget(),
                car_model,
                max_iterations=0,
            )
