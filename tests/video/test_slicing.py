"""Tests for dataset slicing (the same-camera-different-time model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.video import detrac_sequence_pair, ua_detrac
from repro.video.frame import ObjectClass


class TestSlice:
    @pytest.fixture(scope="class")
    def stream(self):
        return ua_detrac(frame_count=1000, seed=9)

    def test_slice_reindexes_frames(self, stream):
        window = stream.slice(200, 500)
        assert window.frame_count == 300
        assert np.array_equal(
            window.true_counts(ObjectClass.CAR),
            stream.true_counts(ObjectClass.CAR)[200:500],
        )

    def test_slice_preserves_object_attributes(self, stream):
        window = stream.slice(100, 200)
        original = stream.objects_of(ObjectClass.CAR)
        keep = (original.frame >= 100) & (original.frame < 200)
        sliced = window.objects_of(ObjectClass.CAR)
        assert np.array_equal(sliced.size, original.size[keep])
        assert np.array_equal(sliced.difficulty, original.difficulty[keep])

    def test_slice_clutter_window(self, stream):
        window = stream.slice(10, 20)
        assert np.array_equal(window.clutter, stream.clutter[10:20])

    def test_slice_default_name(self, stream):
        assert stream.slice(0, 10).name == f"{stream.name}[0:10]"

    def test_slice_custom_name(self, stream):
        assert stream.slice(0, 10, name="window").name == "window"

    def test_detector_outputs_match_on_slice(self, stream, yolo_car):
        """Detection on a slice equals the corresponding full-stream rows:
        object latents travel with the slice."""
        window = stream.slice(300, 700)
        full = yolo_car.run(stream).counts[300:700]
        sliced = yolo_car.run(window).counts
        assert np.array_equal(full, sliced)

    @pytest.mark.parametrize("bounds", [(-1, 10), (5, 5), (10, 5), (0, 1001)])
    def test_invalid_bounds_rejected(self, stream, bounds):
        with pytest.raises(DatasetError):
            stream.slice(*bounds)


class TestSequencePairStructure:
    def test_windows_are_disjoint_in_time(self):
        """A and B come from one stream separated by a gap, so their car
        counts are not simply shifted copies of each other."""
        video_a, video_b = detrac_sequence_pair(frames_a=400, frames_b=300)
        counts_a = video_a.true_counts(ObjectClass.CAR)
        counts_b = video_b.true_counts(ObjectClass.CAR)
        assert not np.array_equal(counts_a[: counts_b.size], counts_b)

    def test_same_camera_statistics(self):
        video_a, video_b = detrac_sequence_pair()
        mean_a = video_a.true_counts(ObjectClass.CAR).mean()
        mean_b = video_b.true_counts(ObjectClass.CAR).mean()
        assert mean_a == pytest.approx(mean_b, rel=0.4)

    def test_distinct_cache_keys(self):
        video_a, video_b = detrac_sequence_pair(frames_a=100, frames_b=100)
        assert video_a.cache_key != video_b.cache_key
