"""Tests for the dataset container and per-frame record views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.video.dataset import ObjectArrays, VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


def tiny_dataset() -> VideoDataset:
    cars = ObjectArrays(
        frame=np.array([0, 0, 2]),
        size=np.array([50.0, 30.0, 80.0]),
        difficulty=np.array([0.1, 0.9, 0.5]),
        duplicate_latent=np.array([0.2, 0.3, 0.4]),
    )
    persons = ObjectArrays(
        frame=np.array([1]),
        size=np.array([25.0]),
        difficulty=np.array([0.4]),
        duplicate_latent=np.array([0.6]),
    )
    return VideoDataset(
        name="tiny",
        native_resolution=Resolution(608),
        frame_count=3,
        objects={ObjectClass.CAR: cars, ObjectClass.PERSON: persons},
        clutter=np.array([0.1, 0.5, 0.9]),
        seed=42,
    )


class TestObjectArrays:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DatasetError):
            ObjectArrays(
                frame=np.array([0, 1]),
                size=np.array([1.0]),
                difficulty=np.array([0.5, 0.5]),
                duplicate_latent=np.array([0.5, 0.5]),
            )

    def test_empty_arrays(self):
        empty = ObjectArrays.empty()
        assert empty.count == 0


class TestVideoDataset:
    def test_true_counts_per_frame(self):
        dataset = tiny_dataset()
        assert dataset.true_counts(ObjectClass.CAR).tolist() == [2, 0, 1]
        assert dataset.true_counts(ObjectClass.PERSON).tolist() == [0, 1, 0]
        assert dataset.true_counts(ObjectClass.FACE).tolist() == [0, 0, 0]

    def test_true_presence(self):
        dataset = tiny_dataset()
        assert dataset.true_presence(ObjectClass.PERSON).tolist() == [
            False,
            True,
            False,
        ]

    def test_len(self):
        assert len(tiny_dataset()) == 3

    def test_frame_record_materialisation(self):
        dataset = tiny_dataset()
        record = dataset.frame(0)
        assert record.count(ObjectClass.CAR) == 2
        assert record.contains(ObjectClass.CAR)
        assert not record.contains(ObjectClass.FACE)
        assert record.clutter == pytest.approx(0.1)

    def test_frames_iterator_covers_corpus(self):
        dataset = tiny_dataset()
        records = list(dataset.frames())
        assert [record.index for record in records] == [0, 1, 2]

    def test_frame_index_bounds(self):
        dataset = tiny_dataset()
        with pytest.raises(DatasetError):
            dataset.frame(3)
        with pytest.raises(DatasetError):
            dataset.frame(-1)

    def test_cache_key_identifies_corpus(self):
        key = tiny_dataset().cache_key
        assert key[0] == "tiny"
        assert key[1] == 3
        # Identical construction gives an identical key (stable fingerprint).
        assert tiny_dataset().cache_key == key

    def test_cache_key_distinguishes_different_contents(self):
        """Same name/size/seed but different objects must not collide —
        the calibration loop regenerates probes with new parameters."""
        base = tiny_dataset()
        cars = ObjectArrays(
            frame=np.array([0, 0, 2]),
            size=np.array([50.0, 30.0, 99.0]),  # one size changed
            difficulty=np.array([0.1, 0.9, 0.5]),
            duplicate_latent=np.array([0.2, 0.3, 0.4]),
        )
        variant = VideoDataset(
            name="tiny",
            native_resolution=Resolution(608),
            frame_count=3,
            objects={ObjectClass.CAR: cars},
            clutter=np.array([0.1, 0.5, 0.9]),
            seed=42,
        )
        assert variant.cache_key != base.cache_key

    def test_cache_key_distinguishes_duplicate_latents(self):
        """Corpora differing ONLY in duplicate latents must not collide:
        the latents drive detector anomaly terms, so outputs differ even
        though frames, sizes and difficulties agree."""
        base = tiny_dataset()
        cars = ObjectArrays(
            frame=np.array([0, 0, 2]),
            size=np.array([50.0, 30.0, 80.0]),
            difficulty=np.array([0.1, 0.9, 0.5]),
            duplicate_latent=np.array([0.2, 0.3, 0.99]),  # only latents differ
        )
        persons = ObjectArrays(
            frame=np.array([1]),
            size=np.array([25.0]),
            difficulty=np.array([0.4]),
            duplicate_latent=np.array([0.6]),
        )
        variant = VideoDataset(
            name="tiny",
            native_resolution=Resolution(608),
            frame_count=3,
            objects={ObjectClass.CAR: cars, ObjectClass.PERSON: persons},
            clutter=np.array([0.1, 0.5, 0.9]),
            seed=42,
        )
        assert variant.cache_key != base.cache_key

    def test_clutter_read_only(self):
        dataset = tiny_dataset()
        with pytest.raises(ValueError):
            dataset.clutter[0] = 0.0

    def test_rejects_object_frame_out_of_range(self):
        cars = ObjectArrays(
            frame=np.array([5]),
            size=np.array([50.0]),
            difficulty=np.array([0.1]),
            duplicate_latent=np.array([0.2]),
        )
        with pytest.raises(DatasetError):
            VideoDataset(
                name="bad",
                native_resolution=Resolution(608),
                frame_count=3,
                objects={ObjectClass.CAR: cars},
                clutter=np.zeros(3),
            )

    def test_rejects_clutter_length_mismatch(self):
        with pytest.raises(DatasetError):
            VideoDataset(
                name="bad",
                native_resolution=Resolution(608),
                frame_count=3,
                objects={},
                clutter=np.zeros(2),
            )

    def test_rejects_nonpositive_frame_count(self):
        with pytest.raises(DatasetError):
            VideoDataset(
                name="bad",
                native_resolution=Resolution(608),
                frame_count=0,
                objects={},
                clutter=np.zeros(0),
            )


class TestObjectClass:
    def test_from_name(self):
        assert ObjectClass.from_name("person") == ObjectClass.PERSON
        assert ObjectClass.from_name("CAR") == ObjectClass.CAR

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError):
            ObjectClass.from_name("bicycle")
