"""Tests for the full exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.errors import (
    CameraOutageError,
    ConfigurationError,
    DatasetError,
    EstimationError,
    FaultInjectionError,
    InterventionError,
    ProfileError,
    ReproError,
    TransmissionError,
)

ALL_ERRORS = (
    ConfigurationError,
    DatasetError,
    EstimationError,
    FaultInjectionError,
    InterventionError,
    ProfileError,
    CameraOutageError,
    TransmissionError,
)


class TestHierarchy:
    @pytest.mark.parametrize("error", ALL_ERRORS)
    def test_everything_derives_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        assert issubclass(error, Exception)

    def test_single_except_clause_catches_the_package(self):
        for error in ALL_ERRORS:
            with pytest.raises(ReproError):
                raise error("boom")

    def test_outage_is_a_transmission_error(self):
        # The fleet retry loop catches TransmissionError; an outage must
        # land in the same handler while staying distinguishable.
        assert issubclass(CameraOutageError, TransmissionError)
        assert CameraOutageError is not TransmissionError

    def test_fault_injection_is_a_configuration_error(self):
        # Misconfigured injectors surface where they were written, like
        # every other constructor-time mistake.
        assert issubclass(FaultInjectionError, ConfigurationError)

    def test_transmission_is_not_a_configuration_error(self):
        # A failed transmit is a runtime event, not a written mistake.
        assert not issubclass(TransmissionError, ConfigurationError)
        assert not issubclass(TransmissionError, EstimationError)

    def test_siblings_stay_distinct(self):
        siblings = (
            ConfigurationError,
            DatasetError,
            EstimationError,
            InterventionError,
            ProfileError,
            TransmissionError,
        )
        for first in siblings:
            for second in siblings:
                if first is not second:
                    assert not issubclass(first, second)

    def test_messages_round_trip(self):
        error = TransmissionError("camera 'x': 3 attempts exhausted")
        assert "3 attempts exhausted" in str(error)
