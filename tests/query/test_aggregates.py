"""Tests for aggregate functions and frame predicates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.query.aggregates import (
    Aggregate,
    FramePredicate,
    aggregate_value,
    contains_at_least,
)


class TestAggregateEnum:
    def test_mean_family(self):
        assert Aggregate.AVG.is_mean_family
        assert Aggregate.SUM.is_mean_family
        assert Aggregate.COUNT.is_mean_family
        assert not Aggregate.MAX.is_mean_family

    def test_extreme_family(self):
        assert Aggregate.MAX.is_extreme
        assert Aggregate.MIN.is_extreme
        assert not Aggregate.AVG.is_extreme

    def test_default_quantiles_match_paper(self):
        assert Aggregate.MAX.default_quantile == 0.99
        assert Aggregate.MIN.default_quantile == 0.01

    def test_mean_family_has_no_quantile(self):
        with pytest.raises(ConfigurationError):
            _ = Aggregate.AVG.default_quantile


class TestPredicates:
    def test_contains_at_least_one(self):
        predicate = contains_at_least(1)
        assert predicate(np.array([0, 1, 3])).tolist() == [False, True, True]

    def test_contains_at_least_k(self):
        predicate = contains_at_least(3)
        assert predicate(np.array([2, 3, 5])).tolist() == [False, True, True]
        assert predicate.name == "count >= 3"

    def test_rejects_negative_minimum(self):
        with pytest.raises(ConfigurationError):
            contains_at_least(-1)

    def test_predicate_must_return_booleans(self):
        bad = FramePredicate(name="bad", fn=lambda outputs: outputs * 2)
        with pytest.raises(ConfigurationError):
            bad(np.array([1, 2]))


class TestAggregateValue:
    def test_avg(self):
        assert aggregate_value(np.array([1.0, 2.0, 3.0]), Aggregate.AVG) == 2.0

    def test_sum(self):
        assert aggregate_value(np.array([1.0, 2.0, 3.0]), Aggregate.SUM) == 6.0

    def test_count_is_sum_of_indicators(self):
        indicators = np.array([1.0, 0.0, 1.0, 1.0])
        assert aggregate_value(indicators, Aggregate.COUNT) == 3.0

    def test_max_uses_default_extreme_quantile(self):
        values = np.arange(100, dtype=float)
        assert aggregate_value(values, Aggregate.MAX) == 99.0

    def test_min_uses_default_extreme_quantile(self):
        values = np.arange(100, dtype=float)
        assert aggregate_value(values, Aggregate.MIN) == 1.0

    def test_custom_quantile(self):
        values = np.arange(100, dtype=float)
        assert aggregate_value(values, Aggregate.MAX, quantile_r=0.9) == 90.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            aggregate_value(np.array([]), Aggregate.AVG)

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50)
    def test_avg_between_min_and_max(self, values):
        array = np.array(values)
        result = aggregate_value(array, Aggregate.AVG)
        assert array.min() - 1e-9 <= result <= array.max() + 1e-9
