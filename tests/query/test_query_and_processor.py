"""Tests for query objects and the query processor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.interventions import InterventionPlan
from repro.query import Aggregate, AggregateQuery, QueryProcessor, contains_at_least
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


@pytest.fixture
def avg_query(detrac_dataset, yolo_car):
    return AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)


class TestAggregateQuery:
    def test_defaults(self, avg_query):
        assert avg_query.delta == 0.05
        assert avg_query.aggregate == Aggregate.AVG

    def test_count_default_predicate(self, detrac_dataset, yolo_car):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.COUNT)
        assert query.effective_predicate.name == "count >= 1"

    def test_max_default_quantile(self, detrac_dataset, yolo_car):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.MAX)
        assert query.effective_quantile == 0.99

    def test_min_default_quantile(self, detrac_dataset, yolo_car):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.MIN)
        assert query.effective_quantile == 0.01

    def test_predicate_only_for_count(self, detrac_dataset, yolo_car):
        with pytest.raises(ConfigurationError):
            AggregateQuery(
                detrac_dataset, yolo_car, Aggregate.AVG, predicate=contains_at_least(1)
            )

    def test_quantile_only_for_extremes(self, avg_query):
        with pytest.raises(ConfigurationError):
            avg_query.effective_quantile

    def test_rejects_bad_delta(self, detrac_dataset, yolo_car):
        with pytest.raises(ConfigurationError):
            AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG, delta=0.0)

    def test_frame_values_identity_for_avg(self, avg_query):
        outputs = np.array([0, 3, 5])
        assert avg_query.frame_values(outputs).tolist() == [0.0, 3.0, 5.0]

    def test_frame_values_indicator_for_count(self, detrac_dataset, yolo_car):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.COUNT)
        assert query.frame_values(np.array([0, 3, 5])).tolist() == [0.0, 1.0, 1.0]

    def test_label_mentions_parts(self, avg_query):
        label = avg_query.label()
        assert "AVG" in label
        assert "yolo-v4-like" in label
        assert "ua-detrac" in label


class TestQueryProcessor:
    def test_true_answer_is_full_res_aggregate(self, processor, avg_query, yolo_car):
        truth = processor.true_answer(avg_query)
        expected = yolo_car.run(avg_query.dataset).counts.mean()
        assert truth == pytest.approx(expected)

    def test_true_values_length(self, processor, avg_query):
        assert processor.true_values(avg_query).size == avg_query.dataset.frame_count

    def test_execute_under_plan(self, processor, avg_query, rng):
        plan = InterventionPlan.from_knobs(f=0.1, p=256)
        execution = processor.execute(avg_query, plan, rng)
        assert execution.size == round(avg_query.dataset.frame_count * 0.1)
        assert execution.sample.resolution == Resolution(256)

    def test_degraded_values_match_resolution_outputs(
        self, processor, avg_query, yolo_car, rng
    ):
        plan = InterventionPlan.from_knobs(f=0.05, p=320)
        execution = processor.execute(avg_query, plan, rng)
        full = yolo_car.run(avg_query.dataset, Resolution(320)).counts
        expected = full[execution.sample.frame_indices].astype(float)
        assert np.array_equal(execution.values, expected)

    def test_naive_approximation_avg(self, processor, avg_query, rng):
        plan = InterventionPlan.from_knobs(f=0.2)
        execution = processor.execute(avg_query, plan, rng)
        naive = processor.naive_approximation(avg_query, execution)
        assert naive == pytest.approx(float(execution.values.mean()))

    def test_naive_approximation_sum_scales_to_population(
        self, processor, detrac_dataset, yolo_car, rng
    ):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.SUM)
        plan = InterventionPlan.from_knobs(f=0.2, c=(ObjectClass.PERSON,))
        execution = processor.execute(query, plan, rng)
        naive = processor.naive_approximation(query, execution)
        expected = (
            execution.values.sum()
            * detrac_dataset.frame_count
            / execution.values.size
        )
        assert naive == pytest.approx(expected)

    def test_naive_approximation_max_quantile(self, processor, detrac_dataset, yolo_car, rng):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.MAX)
        plan = InterventionPlan.from_knobs(f=0.3)
        execution = processor.execute(query, plan, rng)
        naive = processor.naive_approximation(query, execution)
        assert naive in execution.values

    def test_full_sampling_recovers_truth(self, processor, avg_query, rng):
        plan = InterventionPlan.from_knobs(f=1.0)
        execution = processor.execute(avg_query, plan, rng)
        naive = processor.naive_approximation(avg_query, execution)
        assert naive == pytest.approx(processor.true_answer(avg_query))

    def test_count_true_answer_counts_frames(self, processor, detrac_dataset, yolo_car):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.COUNT)
        truth = processor.true_answer(query)
        counts = yolo_car.run(detrac_dataset).counts
        assert truth == float((counts >= 1).sum())


class TestFrameValuesMemo:
    def test_repeat_calls_share_one_read_only_array(self, processor, avg_query):
        first = processor.frame_values(avg_query, Resolution(256))
        second = processor.frame_values(avg_query, Resolution(256))
        assert second is first  # memo hit: no predicate re-application
        assert not first.flags.writeable

    def test_memo_keys_on_resolution_and_quality(self, processor, avg_query):
        base = processor.frame_values(avg_query, Resolution(256))
        assert processor.frame_values(avg_query, Resolution(512)) is not base
        assert processor.frame_values(avg_query, Resolution(256), 0.8) is not base

    def test_memo_is_per_query(self, processor, detrac_dataset, yolo_car):
        avg = AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        count = AggregateQuery(detrac_dataset, yolo_car, Aggregate.COUNT)
        avg_values = processor.frame_values(avg, Resolution(256))
        count_values = processor.frame_values(count, Resolution(256))
        assert count_values is not avg_values  # COUNT applies its predicate
        assert count_values.max() <= 1.0

    def test_memo_survives_pickling_contract(self, processor):
        """Pickling drops the memo (worker processes rebuild it lazily)."""
        import pickle

        clone = pickle.loads(pickle.dumps(processor))
        assert isinstance(clone, QueryProcessor)
