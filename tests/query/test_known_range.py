"""Tests for structurally known value ranges on queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.interventions import InterventionPlan
from repro.query import Aggregate, AggregateQuery, contains_at_least


class TestKnownValueRange:
    @pytest.mark.parametrize(
        "aggregate",
        [Aggregate.AVG, Aggregate.SUM, Aggregate.MAX, Aggregate.MIN, Aggregate.VAR],
    )
    def test_only_count_has_known_range(self, detrac_dataset, yolo_car, aggregate):
        query = AggregateQuery(detrac_dataset, yolo_car, aggregate)
        assert query.known_value_range is None

    def test_count_range_is_one(self, detrac_dataset, yolo_car):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.COUNT)
        assert query.known_value_range == 1.0

    def test_custom_predicate_still_indicator(self, detrac_dataset, yolo_car):
        query = AggregateQuery(
            detrac_dataset,
            yolo_car,
            Aggregate.COUNT,
            predicate=contains_at_least(5),
        )
        assert query.known_value_range == 1.0

    def test_count_bound_never_certain_on_partial_uniform_sample(
        self, processor, detrac_dataset, yolo_car, rng
    ):
        """Even if a small COUNT sample happens to be all-ones (busy
        video), the bound stays positive thanks to the known range."""
        from repro.estimators import estimate_query

        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.COUNT)
        seen_uniform = False
        for _ in range(50):
            execution = processor.execute(
                query, InterventionPlan.from_knobs(f=0.002), rng
            )
            estimate = estimate_query(query, execution)
            if np.all(execution.values == execution.values[0]):
                seen_uniform = True
                assert estimate.error_bound > 0.0
        # On 95%-busy DETRAC, tiny samples are frequently all-ones; if not,
        # the scenario is untested and the assertion above is vacuous.
        assert seen_uniform

    def test_count_bound_tighter_than_unbounded_range_would_suggest(
        self, processor, detrac_dataset, yolo_car, rng
    ):
        """The indicator range (1) is far below the count range (~40), so
        the COUNT bound is much tighter than AVG's at the same fraction."""
        from repro.estimators import estimate_query

        count_query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.COUNT)
        avg_query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        plan = InterventionPlan.from_knobs(f=0.05)
        trial_rng = np.random.default_rng(3)
        count_estimate = estimate_query(
            count_query, processor.execute(count_query, plan, trial_rng)
        )
        avg_estimate = estimate_query(
            avg_query, processor.execute(avg_query, plan, trial_rng)
        )
        assert count_estimate.error_bound < avg_estimate.error_bound
