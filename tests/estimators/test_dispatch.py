"""Tests for the estimator dispatch layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.estimators.dispatch import (
    estimate_query,
    mean_estimator_registry,
    quantile_estimator_registry,
)
from repro.interventions import InterventionPlan
from repro.query import Aggregate, AggregateQuery


class TestRegistries:
    def test_mean_registry_contents(self):
        assert set(mean_estimator_registry()) == {
            "smokescreen",
            "ebgs",
            "hoeffding",
            "hoeffding-serfling",
            "clt",
        }

    def test_quantile_registry_contents(self):
        assert set(quantile_estimator_registry()) == {"smokescreen", "stein"}

    def test_registries_return_fresh_instances(self):
        assert (
            mean_estimator_registry()["smokescreen"]
            is not mean_estimator_registry()["smokescreen"]
        )


class TestEstimateQuery:
    @pytest.fixture
    def execution(self, processor, detrac_dataset, yolo_car, rng):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        plan = InterventionPlan.from_knobs(f=0.1)
        return query, processor.execute(query, plan, rng)

    def test_avg_not_scaled(self, execution):
        query, degraded = execution
        estimate = estimate_query(query, degraded)
        assert estimate.value < 100  # a mean of car counts, not a sum

    def test_sum_scaled_to_population(self, processor, detrac_dataset, yolo_car, rng):
        avg_query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        sum_query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.SUM)
        plan = InterventionPlan.from_knobs(f=0.1)
        execution = processor.execute(avg_query, plan, rng)
        avg_estimate = estimate_query(avg_query, execution)
        sum_estimate = estimate_query(sum_query, execution)
        assert sum_estimate.value == pytest.approx(
            avg_estimate.value * detrac_dataset.frame_count
        )
        assert sum_estimate.error_bound == avg_estimate.error_bound

    def test_count_uses_indicators(self, processor, detrac_dataset, yolo_car, rng):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.COUNT)
        plan = InterventionPlan.from_knobs(f=0.2)
        execution = processor.execute(query, plan, rng)
        estimate = estimate_query(query, execution)
        assert 0 <= estimate.value <= detrac_dataset.frame_count

    def test_max_routes_to_quantile(self, processor, detrac_dataset, yolo_car, rng):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.MAX)
        plan = InterventionPlan.from_knobs(f=0.2)
        execution = processor.execute(query, plan, rng)
        smokescreen = estimate_query(query, execution, "smokescreen")
        stein = estimate_query(query, execution, "stein")
        assert smokescreen.value == stein.value

    def test_every_mean_method_runs(self, execution):
        query, degraded = execution
        for method in mean_estimator_registry():
            estimate = estimate_query(query, degraded, method)
            assert estimate.method == method

    def test_unknown_method_rejected(self, execution):
        query, degraded = execution
        with pytest.raises(ConfigurationError):
            estimate_query(query, degraded, "bootstrap")

    def test_unknown_quantile_method_rejected(
        self, processor, detrac_dataset, yolo_car, rng
    ):
        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.MAX)
        execution = processor.execute(query, InterventionPlan.from_knobs(f=0.2), rng)
        with pytest.raises(ConfigurationError):
            estimate_query(query, execution, "hoeffding")
