"""Tests for the VAR extension estimators (paper future work, §7)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.estimators.variance import (
    CLTVarianceEstimator,
    SmokescreenVarianceEstimator,
)


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(77)
    return rng.poisson(4.0, size=5000).astype(float)


class TestSmokescreenVariance:
    def test_full_sample_recovers_truth(self, population):
        estimate = SmokescreenVarianceEstimator().estimate(
            population, population.size, 0.05
        )
        assert estimate.value == pytest.approx(population.var(), rel=1e-9)
        assert estimate.error_bound == pytest.approx(0.0, abs=1e-9)

    def test_coverage(self, population):
        """The moment-interval bound is valid at the 95% level."""
        rng = np.random.default_rng(1)
        estimator = SmokescreenVarianceEstimator()
        truth = population.var()
        violations = 0
        trials = 200
        for _ in range(trials):
            sample = rng.choice(population, size=500, replace=False)
            estimate = estimator.estimate(sample, population.size, 0.05)
            if abs(estimate.value - truth) / truth > estimate.error_bound:
                violations += 1
        assert violations / trials <= 0.05

    def test_degenerate_at_tiny_samples(self, population):
        """Small samples cannot pin the second moment: the bound is the
        honest err_b = 1 with value 0 (Theorem 3.1's degenerate branch)."""
        rng = np.random.default_rng(2)
        sample = rng.choice(population, size=10, replace=False)
        estimate = SmokescreenVarianceEstimator().estimate(
            sample, population.size, 0.05
        )
        assert estimate.error_bound == 1.0
        assert estimate.value == 0.0

    def test_bound_shrinks_with_sample_size(self, population):
        rng = np.random.default_rng(3)
        estimator = SmokescreenVarianceEstimator()
        small = estimator.estimate(
            rng.choice(population, 500, replace=False), population.size, 0.05
        )
        large = estimator.estimate(
            rng.choice(population, 4500, replace=False), population.size, 0.05
        )
        assert large.error_bound < small.error_bound

    def test_extras_expose_sample_variance(self, population):
        rng = np.random.default_rng(4)
        sample = rng.choice(population, 100, replace=False)
        estimate = SmokescreenVarianceEstimator().estimate(
            sample, population.size, 0.05
        )
        assert estimate.extras["sample_variance"] == pytest.approx(sample.var())

    def test_constant_sample_certain_zero_variance(self):
        estimate = SmokescreenVarianceEstimator().estimate(
            np.full(50, 3.0), 1000, 0.05
        )
        # Zero range on both moments: the interval is a point at 0... the
        # degenerate LB=0 branch reports err_b=1, the honest answer for a
        # quantity that could still be anything in [0, UB].
        assert estimate.value == 0.0

    def test_rejects_empty(self):
        with pytest.raises(EstimationError):
            SmokescreenVarianceEstimator().estimate(np.array([]), 10, 0.05)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=20.0), min_size=2, max_size=100
        ),
        extra=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=40)
    def test_bound_in_unit_interval(self, values, extra):
        sample = np.array(values)
        estimate = SmokescreenVarianceEstimator().estimate(
            sample, sample.size + extra, 0.05
        )
        assert 0.0 <= estimate.error_bound <= 1.0
        assert estimate.value >= 0.0


class TestCLTVariance:
    def test_value_is_sample_variance(self, population):
        rng = np.random.default_rng(5)
        sample = rng.choice(population, 200, replace=False)
        estimate = CLTVarianceEstimator().estimate(sample, population.size, 0.05)
        assert estimate.value == pytest.approx(sample.var())

    def test_tighter_than_smokescreen_at_moderate_n(self, population):
        rng = np.random.default_rng(6)
        sample = rng.choice(population, 1000, replace=False)
        clt = CLTVarianceEstimator().estimate(sample, population.size, 0.05)
        ours = SmokescreenVarianceEstimator().estimate(sample, population.size, 0.05)
        assert clt.error_bound < ours.error_bound

    def test_single_sample_infinite(self, population):
        estimate = CLTVarianceEstimator().estimate(
            np.array([1.0]), population.size, 0.05
        )
        assert math.isinf(estimate.error_bound)

    def test_degenerate_when_radius_swallows_variance(self):
        """Heavy outlier at tiny n: the lower endpoint goes non-positive."""
        sample = np.array([0.0, 0.0, 0.0, 100.0])
        estimate = CLTVarianceEstimator().estimate(sample, 1000, 0.05)
        assert math.isinf(estimate.error_bound)


class TestVarDispatch:
    def test_var_routes_to_variance_registry(self, processor, detrac_dataset, yolo_car, rng):
        from repro.errors import ConfigurationError
        from repro.estimators.dispatch import estimate_query
        from repro.interventions import InterventionPlan
        from repro.query import Aggregate, AggregateQuery

        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.VAR)
        execution = processor.execute(query, InterventionPlan.from_knobs(f=0.5), rng)
        ours = estimate_query(query, execution, "smokescreen")
        clt = estimate_query(query, execution, "clt")
        assert ours.method == "smokescreen"
        assert clt.method == "clt"
        with pytest.raises(ConfigurationError):
            estimate_query(query, execution, "ebgs")

    def test_var_true_answer(self, processor, detrac_dataset, yolo_car):
        from repro.query import Aggregate, AggregateQuery

        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.VAR)
        truth = processor.true_answer(query)
        expected = yolo_car.run(detrac_dataset).counts.astype(float).var()
        assert truth == pytest.approx(expected)

    def test_var_profile_generation(self, processor, detrac_dataset, yolo_car, rng):
        """The profiler handles VAR end to end, including correction."""
        from repro.core.correction import determine_correction_set
        from repro.core.profiler import DegradationProfiler
        from repro.query import Aggregate, AggregateQuery

        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.VAR)
        correction = determine_correction_set(
            processor, query, np.random.default_rng(7)
        )
        profiler = DegradationProfiler(processor, trials=2)
        profile = profiler.profile_sampling(
            query, (0.3, 0.6, 0.9), rng, correction=correction
        )
        assert len(profile.points) == 3
        assert all(0.0 <= point.error_bound <= 1.0 for point in profile.points)
