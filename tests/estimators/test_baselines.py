"""Tests for the baseline estimators (EBGS, Hoeffding, H-S, CLT, Stein)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.estimators.classic import (
    CLTEstimator,
    HoeffdingEstimator,
    HoeffdingSerflingEstimator,
)
from repro.estimators.ebgs import EBGSEstimator
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.stein import SteinEstimator
from repro.query.aggregates import Aggregate


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(23)
    return rng.poisson(5.0, size=5000).astype(float)


@pytest.fixture()
def sample(population):
    rng = np.random.default_rng(7)
    return rng.choice(population, size=200, replace=False)


class TestEBGS:
    def test_envelope_tighter_or_equal_to_last_prefix(self, sample, population):
        """The running max/min envelope can only tighten the final interval."""
        estimate = EBGSEstimator().estimate(sample, population.size, 0.05)
        assert estimate.extras["lower"] <= estimate.extras["upper"]

    def test_looser_than_smokescreen(self, sample, population):
        """The union-over-time budget makes EBGS looser than Algorithm 1
        (the paper's §5.2.1: Smokescreen always beats EBGS)."""
        ebgs = EBGSEstimator().estimate(sample, population.size, 0.05)
        ours = SmokescreenMeanEstimator().estimate(sample, population.size, 0.05)
        assert ours.error_bound <= ebgs.error_bound

    def test_coverage(self, population):
        rng = np.random.default_rng(8)
        mu = population.mean()
        violations = 0
        trials = 150
        for _ in range(trials):
            sample = rng.choice(population, size=300, replace=False)
            estimate = EBGSEstimator().estimate(sample, population.size, 0.05)
            if abs(estimate.value - mu) / mu > estimate.error_bound:
                violations += 1
        assert violations / trials <= 0.05

    def test_order_dependence_is_prefix_based(self, population):
        """EBGS depends on stream order (prefix envelope); shuffling the
        same sample may change the bound, unlike Algorithm 1."""
        rng = np.random.default_rng(9)
        sample = rng.choice(population, size=300, replace=False)
        shuffled = sample.copy()
        rng.shuffle(shuffled)
        ours = SmokescreenMeanEstimator()
        assert (
            ours.estimate(sample, population.size, 0.05).error_bound
            == ours.estimate(shuffled, population.size, 0.05).error_bound
        )

    def test_single_sample_zero_range(self, population):
        """One sample has range 0, so every radius collapses — the same
        zero-range degeneracy as Algorithm 1 on a constant sample."""
        estimate = EBGSEstimator().estimate(np.array([5.0]), population.size, 0.05)
        assert estimate.value == 5.0
        assert estimate.error_bound == 0.0


class TestRatioBoundBaselines:
    def test_hoeffding_value_is_sample_mean(self, sample, population):
        estimate = HoeffdingEstimator().estimate(sample, population.size, 0.05)
        assert estimate.value == pytest.approx(sample.mean())

    def test_hs_tighter_than_hoeffding(self, sample, population):
        h = HoeffdingEstimator().estimate(sample, population.size, 0.05)
        hs = HoeffdingSerflingEstimator().estimate(sample, population.size, 0.05)
        assert hs.error_bound <= h.error_bound

    def test_smokescreen_tighter_than_both(self, sample, population):
        """The headline §5.2.1 relation on a typical sample."""
        ours = SmokescreenMeanEstimator().estimate(sample, population.size, 0.05)
        h = HoeffdingEstimator().estimate(sample, population.size, 0.05)
        hs = HoeffdingSerflingEstimator().estimate(sample, population.size, 0.05)
        assert ours.error_bound < hs.error_bound < h.error_bound

    def test_degenerate_bound_is_infinite(self, population):
        """When the radius swallows the mean, the ratio bound blows up."""
        tiny = np.array([0.0, 10.0])  # huge range, tiny n
        estimate = HoeffdingEstimator().estimate(tiny, population.size, 0.05)
        assert math.isinf(estimate.error_bound)

    def test_clt_tighter_but_unreliable(self, population):
        """CLT is tighter than Smokescreen on typical draws (Figure 4) but
        violates the confidence level in a measurable share of trials at
        small n (Figure 5)."""
        rng = np.random.default_rng(10)
        mu = population.mean()
        clt = CLTEstimator()
        ours = SmokescreenMeanEstimator()
        tighter = 0
        violations = 0
        trials = 200
        for _ in range(trials):
            sample = rng.choice(population, size=20, replace=False)
            clt_estimate = clt.estimate(sample, population.size, 0.05)
            our_estimate = ours.estimate(sample, population.size, 0.05)
            if clt_estimate.error_bound < our_estimate.error_bound:
                tighter += 1
            if abs(clt_estimate.value - mu) / mu > clt_estimate.error_bound:
                violations += 1
        assert tighter / trials > 0.9
        assert violations > 0  # CLT misses sometimes: the Figure 5 story

    def test_clt_single_sample_infinite(self, population):
        estimate = CLTEstimator().estimate(np.array([3.0]), population.size, 0.05)
        assert math.isinf(estimate.error_bound)


class TestStein:
    def test_answer_matches_smokescreen_quantile(self, sample, population):
        """'Our query result estimation is the same as Stein's' (§5.2.1)."""
        ours = SmokescreenQuantileEstimator().estimate(
            sample, population.size, 0.99, 0.05, Aggregate.MAX
        )
        stein = SteinEstimator().estimate(
            sample, population.size, 0.99, 0.05, Aggregate.MAX
        )
        assert stein.value == ours.value

    def test_epsilon_formula(self, sample, population):
        estimate = SteinEstimator().estimate(
            sample, population.size, 0.99, 0.05, Aggregate.MAX
        )
        epsilon = math.sqrt(math.log(2 / 0.05) / (2 * sample.size))
        assert estimate.extras["epsilon"] == pytest.approx(epsilon)
        assert estimate.error_bound == pytest.approx(epsilon / 0.99)

    def test_smokescreen_tighter_at_small_samples(self, population):
        """Figure 4 MAX panels: our bound is tighter when the fraction is
        small (the without-replacement + variance-aware construction)."""
        rng = np.random.default_rng(11)
        sample = rng.choice(population, size=60, replace=False)
        ours = SmokescreenQuantileEstimator().estimate(
            sample, population.size, 0.99, 0.05, Aggregate.MAX
        )
        stein = SteinEstimator().estimate(
            sample, population.size, 0.99, 0.05, Aggregate.MAX
        )
        assert ours.error_bound < stein.error_bound

    def test_bound_independent_of_data_values(self, population):
        """Stein's bound depends only on n, r, delta."""
        stein = SteinEstimator()
        a = stein.estimate(np.arange(100.0), 1000, 0.99, 0.05, Aggregate.MAX)
        b = stein.estimate(np.arange(100.0) * 7, 1000, 0.99, 0.05, Aggregate.MAX)
        assert a.error_bound == b.error_bound
