"""Tests for the online bound-violation sentinel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimators.base import Estimate
from repro.estimators.sentinel import BoundSentinel, SentinelVerdict
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.system import telemetry


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(47)
    return rng.poisson(5.0, size=2000).astype(float)


def exact_reference(population) -> Estimate:
    """The profiling-time answer: exact on clean video, zero bound."""
    return Estimate(
        value=float(population.mean()),
        error_bound=0.0,
        method="exact",
        n=population.size,
        universe_size=population.size,
    )


def armed(population, profiled_bound=0.1, **kwargs) -> BoundSentinel:
    return BoundSentinel(
        reference=exact_reference(population),
        profiled_bound=profiled_bound,
        universe_size=population.size,
        **kwargs,
    )


class TestBenignStream:
    def test_clean_stream_never_trips(self, population):
        """Zero false positives on a clean seeded run: the drift of an
        unbiased sample stays inside its own streaming bound."""
        rng = np.random.default_rng(1)
        sentinel = armed(population)
        for value in rng.choice(population, size=1000, replace=False):
            sentinel.observe(float(value))
        verdict = sentinel.verdict()
        assert not verdict.tripped
        assert verdict.breaches == 0
        assert verdict.repair is None

    def test_clean_stream_many_seeds_zero_fp(self, population):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            sentinel = armed(population)
            sentinel.extend(rng.choice(population, size=800, replace=False))
            assert not sentinel.tripped, f"false positive at seed {seed}"

    def test_warm_up_floor_blocks_early_checks(self, population):
        sentinel = armed(population, min_count=50)
        for value in population[:49]:
            assert sentinel.observe(float(value)) is None
        assert sentinel.observe(float(population[49])) is not None


class TestViolationDetection:
    def test_systematic_drift_trips(self, population):
        """A non-random degradation (values systematically shrunk) drives
        drift past the allowance and the sentinel confirms it."""
        rng = np.random.default_rng(2)
        sentinel = armed(population, patience=2)
        hostile = np.floor(rng.choice(population, 800, replace=False) * 0.5)
        for value in hostile:
            sentinel.observe(float(value))
        verdict = sentinel.verdict()
        assert verdict.tripped
        assert verdict.first_breach_count is not None
        assert verdict.drift > verdict.allowance

    def test_patience_requires_consecutive_breaches(self, population):
        rng = np.random.default_rng(3)
        tolerant = armed(population, patience=10_000)
        hostile = np.floor(rng.choice(population, 500, replace=False) * 0.5)
        for value in hostile:
            tolerant.observe(float(value))
        assert tolerant.verdict().breaches > 0
        assert not tolerant.tripped

    def test_trip_triggers_automatic_repair(self, population):
        rng = np.random.default_rng(4)
        correction = SmokescreenMeanEstimator().estimate(
            rng.choice(population, size=400, replace=False),
            population.size,
            0.05,
        )
        sentinel = armed(population, correction=correction)
        hostile = np.floor(rng.choice(population, 800, replace=False) * 0.5)
        for value in hostile:
            sentinel.observe(float(value))
        assert sentinel.tripped
        repair = sentinel.repair
        assert repair is not None
        # The repaired bound actually covers the realized error.
        realized = abs(repair.value - population.mean()) / population.mean()
        assert realized <= repair.error_bound
        assert sentinel.verdict().repair is repair

    def test_trip_emits_telemetry_counters(self, population):
        rng = np.random.default_rng(5)
        correction = SmokescreenMeanEstimator().estimate(
            rng.choice(population, size=400, replace=False),
            population.size,
            0.05,
        )
        registry = telemetry.enable()
        try:
            sentinel = armed(population, correction=correction)
            hostile = np.floor(rng.choice(population, 600, replace=False) * 0.4)
            for value in hostile:
                sentinel.observe(float(value))
            counters = registry.snapshot().counters
        finally:
            telemetry.disable()
        assert counters.get("sentinel.violations") == 1
        assert counters.get("sentinel.repairs_triggered") == 1

    def test_trips_at_most_once(self, population):
        rng = np.random.default_rng(6)
        registry = telemetry.enable()
        try:
            sentinel = armed(population)
            hostile = np.floor(rng.choice(population, 1200, replace=False) * 0.4)
            for value in hostile:
                sentinel.observe(float(value))
            counters = registry.snapshot().counters
        finally:
            telemetry.disable()
        assert counters.get("sentinel.violations") == 1

    def test_zero_reference_drift(self):
        reference = Estimate(
            value=0.0, error_bound=0.0, method="exact", n=10, universe_size=10
        )
        silent = BoundSentinel(
            reference, profiled_bound=0.1, universe_size=100, min_count=1
        )
        check = silent.observe(0.0)
        assert check is not None and check.drift == 0.0
        loud = BoundSentinel(
            reference, profiled_bound=0.1, universe_size=100, min_count=1
        )
        check = loud.observe(3.0)
        assert check is not None and np.isinf(check.drift)


class TestBatchedStream:
    def test_extend_checks_once_per_batch(self, population):
        sentinel = armed(population)
        sentinel.extend(population[:400])
        verdict = sentinel.verdict()
        assert verdict.checks == 1

    def test_extend_empty_batch_is_noop(self, population):
        sentinel = armed(population)
        assert sentinel.extend([]) is None
        assert sentinel.verdict().checks == 0


class TestValidationAndPayload:
    def test_rejects_bad_configuration(self, population):
        reference = exact_reference(population)
        with pytest.raises(EstimationError):
            BoundSentinel(reference, -0.1, population.size)
        with pytest.raises(EstimationError):
            BoundSentinel(reference, float("inf"), population.size)
        with pytest.raises(EstimationError):
            BoundSentinel(reference, 0.1, population.size, min_count=0)
        with pytest.raises(EstimationError):
            BoundSentinel(reference, 0.1, population.size, patience=0)

    def test_payload_is_json_friendly(self, population):
        import json

        rng = np.random.default_rng(7)
        sentinel = armed(population, label="cam3")
        sentinel.extend(rng.choice(population, size=200, replace=False))
        payload = sentinel.verdict().as_payload()
        assert payload["label"] == "cam3"
        assert json.loads(json.dumps(payload)) == payload
