"""Tests for Algorithm 2 (Smokescreen's MAX/MIN quantile estimator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.query.aggregates import Aggregate
from repro.stats.quantiles import relative_rank_error


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(17)
    return rng.poisson(6.0, size=8000).astype(float)


class TestAnswerConstruction:
    def test_answer_is_distinct_value_quantile(self):
        values = np.array([1.0, 1, 2, 3, 3, 3, 4, 9, 9, 10])
        estimate = SmokescreenQuantileEstimator().estimate(
            values, 100, 0.9, 0.05, Aggregate.MAX
        )
        # cumulative distinct freqs: 1:0.2, 2:0.3, 3:0.6, 4:0.7, 9:0.9, 10:1.0
        assert estimate.value == 9.0

    def test_min_answer(self):
        values = np.arange(100, dtype=float)
        estimate = SmokescreenQuantileEstimator().estimate(
            values, 1000, 0.05, 0.05, Aggregate.MIN
        )
        assert estimate.value <= 5.0

    def test_rejects_mean_aggregates(self):
        with pytest.raises(ConfigurationError):
            SmokescreenQuantileEstimator().estimate(
                np.arange(10.0), 100, 0.99, 0.05, Aggregate.AVG
            )

    def test_rejects_degenerate_r(self):
        with pytest.raises(ConfigurationError):
            SmokescreenQuantileEstimator().estimate(
                np.arange(10.0), 100, 1.0, 0.05, Aggregate.MAX
            )


class TestBoundBehaviour:
    def test_bound_positive(self, population):
        rng = np.random.default_rng(2)
        sample = rng.choice(population, 200, replace=False)
        estimate = SmokescreenQuantileEstimator().estimate(
            sample, population.size, 0.99, 0.05, Aggregate.MAX
        )
        assert estimate.error_bound > 0.0

    def test_bound_shrinks_with_sample_size(self, population):
        rng = np.random.default_rng(3)
        estimator = SmokescreenQuantileEstimator()
        bounds = []
        for n in (100, 1000, 4000):
            sample = rng.choice(population, n, replace=False)
            bounds.append(
                estimator.estimate(
                    sample, population.size, 0.99, 0.05, Aggregate.MAX
                ).error_bound
            )
        assert bounds[2] < bounds[0]

    def test_coverage_of_rank_error(self, population):
        """The bound covers the true relative rank error >= 1 - delta."""
        rng = np.random.default_rng(4)
        estimator = SmokescreenQuantileEstimator()
        r, delta = 0.99, 0.05
        ordered = np.sort(population)
        true_quantile = ordered[int(population.size * r)]
        violations = 0
        trials = 300
        for _ in range(trials):
            sample = rng.choice(population, size=300, replace=False)
            estimate = estimator.estimate(
                sample, population.size, r, delta, Aggregate.MAX
            )
            error = relative_rank_error(population, estimate.value, true_quantile)
            if error > estimate.error_bound:
                violations += 1
        assert violations / trials <= delta

    def test_min_coverage(self, population):
        rng = np.random.default_rng(5)
        estimator = SmokescreenQuantileEstimator()
        r, delta = 0.02, 0.05
        ordered = np.sort(population)
        true_quantile = ordered[int(population.size * r)]
        violations = 0
        trials = 200
        for _ in range(trials):
            sample = rng.choice(population, size=400, replace=False)
            estimate = estimator.estimate(
                sample, population.size, r, delta, Aggregate.MIN
            )
            error = relative_rank_error(population, estimate.value, true_quantile)
            if error > estimate.error_bound:
                violations += 1
        assert violations / trials <= delta

    def test_extras_expose_diagnostics(self, population):
        rng = np.random.default_rng(6)
        sample = rng.choice(population, 100, replace=False)
        estimate = SmokescreenQuantileEstimator().estimate(
            sample, population.size, 0.99, 0.05, Aggregate.MAX
        )
        assert set(estimate.extras) >= {"quantile_frequency", "deviation", "r"}
        assert 0.0 < estimate.extras["quantile_frequency"] <= 1.0
