"""Tests for Algorithm 3 (profile repair with a correction set)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimators.repair import ProfileRepair
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.query.aggregates import Aggregate


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(31)
    return rng.poisson(5.0, size=6000).astype(float)


def biased_sample(population, rng, n=500, shrink=0.6):
    """A sample whose values are systematically low — the signature of a
    non-random intervention (missed detections at low resolution)."""
    sample = rng.choice(population, size=n, replace=False)
    return np.floor(sample * shrink)


class TestMeanRepair:
    def test_corrected_bound_formula(self, population):
        rng = np.random.default_rng(1)
        correction = rng.choice(population, size=400, replace=False)
        estimate = SmokescreenMeanEstimator().estimate(
            correction, population.size, 0.05
        )
        y_approx = 3.0
        bound = ProfileRepair.corrected_mean_bound(y_approx, estimate)
        drift = abs(y_approx - estimate.value) / abs(estimate.value)
        assert bound == pytest.approx(
            (1 + estimate.error_bound) * drift + estimate.error_bound
        )

    def test_corrected_bound_at_least_correction_bound(self, population):
        rng = np.random.default_rng(2)
        correction = rng.choice(population, size=400, replace=False)
        estimate = SmokescreenMeanEstimator().estimate(
            correction, population.size, 0.05
        )
        bound = ProfileRepair.corrected_mean_bound(estimate.value, estimate)
        assert bound >= estimate.error_bound

    def test_zero_correction_value_gives_infinite_bound(self):
        estimate = SmokescreenMeanEstimator().estimate(np.zeros(10), 100, 0.05)
        assert math.isinf(ProfileRepair.corrected_mean_bound(1.0, estimate))

    def test_repair_covers_biased_estimates(self, population):
        """The §5.2.2 guarantee: under systematic bias the corrected bound
        covers the true error in >= 1 - delta of trials, while the
        uncorrected bound often does not."""
        rng = np.random.default_rng(3)
        repair = ProfileRepair()
        mu = population.mean()
        corrected_violations = 0
        uncorrected_violations = 0
        trials = 150
        for _ in range(trials):
            degraded = biased_sample(population, rng, n=800, shrink=0.6)
            correction = rng.choice(population, size=500, replace=False)
            result = repair.repair_mean(
                degraded, population.size, correction, population.size, 0.05
            )
            true_error = abs(result.value - mu) / mu
            if true_error > result.error_bound:
                corrected_violations += 1
            if true_error > result.uncorrected_bound:
                uncorrected_violations += 1
        assert corrected_violations / trials <= 0.05
        assert uncorrected_violations / trials > 0.5

    def test_repaired_value_is_degraded_estimate(self, population):
        rng = np.random.default_rng(4)
        degraded = biased_sample(population, rng)
        correction = rng.choice(population, size=300, replace=False)
        result = ProfileRepair().repair_mean(
            degraded, population.size, correction, population.size, 0.05
        )
        assert result.value == result.degraded.value


class TestQuantileRepair:
    def test_repair_covers_biased_quantiles(self, population):
        rng = np.random.default_rng(5)
        repair = ProfileRepair()
        r, delta = 0.99, 0.05
        ordered = np.sort(population)
        true_quantile = ordered[int(population.size * r)]
        violations = 0
        trials = 120
        from repro.stats.quantiles import relative_rank_error

        for _ in range(trials):
            degraded = biased_sample(population, rng, n=800, shrink=0.7)
            correction = rng.choice(population, size=600, replace=False)
            result = repair.repair_quantile(
                degraded,
                population.size,
                correction,
                population.size,
                r,
                delta,
                Aggregate.MAX,
            )
            error = relative_rank_error(population, result.value, true_quantile)
            if error > result.error_bound:
                violations += 1
        assert violations / trials <= delta + 0.03

    def test_rank_difference_term(self, population):
        """The corrected quantile bound adds the in-correction-set rank gap
        between the two answers, normalised by r."""
        rng = np.random.default_rng(6)
        correction = rng.choice(population, size=500, replace=False)
        from repro.estimators.quantile import SmokescreenQuantileEstimator

        estimator = SmokescreenQuantileEstimator()
        correction_estimate = estimator.estimate(
            correction, population.size, 0.99, 0.05, Aggregate.MAX
        )
        bound_same = ProfileRepair.corrected_quantile_bound(
            correction_estimate.value,
            correction_estimate.value,
            correction,
            0.99,
            correction_estimate,
        )
        assert bound_same == pytest.approx(correction_estimate.error_bound)

        lower_value = float(np.quantile(correction, 0.5))
        bound_far = ProfileRepair.corrected_quantile_bound(
            lower_value,
            correction_estimate.value,
            correction,
            0.99,
            correction_estimate,
        )
        assert bound_far > bound_same

    def test_empty_correction_rejected(self):
        from repro.estimators.base import Estimate

        dummy = Estimate(value=1.0, error_bound=0.1, method="x", n=1, universe_size=10)
        with pytest.raises(EstimationError):
            ProfileRepair.corrected_quantile_bound(1.0, 1.0, np.array([]), 0.99, dummy)


class TestRepairEdgeCases:
    """Degenerate inputs Equation (12)/(13) must handle without NaNs."""

    def _exact(self, value: float):
        from repro.estimators.base import Estimate

        return Estimate(
            value=value, error_bound=0.0, method="exact",
            n=100, universe_size=100,
        )

    def test_zero_width_correction_reduces_to_pure_drift(self):
        """With err_v == 0 (exhaustive correction) Equation (12) collapses
        to the relative drift itself — no inflation term left."""
        correction = self._exact(4.0)
        assert ProfileRepair.corrected_mean_bound(5.0, correction) == (
            pytest.approx(abs(5.0 - 4.0) / 4.0)
        )
        assert ProfileRepair.corrected_mean_bound(4.0, correction) == 0.0

    def test_zero_width_quantile_correction_is_rank_gap_only(self, population):
        correction = np.sort(population[:500])
        exact = self._exact(float(correction[-1]))
        bound = ProfileRepair.corrected_quantile_bound(
            float(correction[-1]), float(correction[-1]), correction, 0.99, exact
        )
        assert bound == 0.0

    def test_batch_matches_scalar_elementwise(self, population):
        rng = np.random.default_rng(8)
        correction = SmokescreenMeanEstimator().estimate(
            rng.choice(population, size=300, replace=False), population.size, 0.05
        )
        y_approx = np.array([0.0, 1.5, correction.value, 12.0])
        batch = ProfileRepair.corrected_mean_bound_batch(y_approx, correction)
        scalars = [
            ProfileRepair.corrected_mean_bound(float(y), correction)
            for y in y_approx
        ]
        assert batch.tolist() == pytest.approx(scalars)

    def test_batch_on_empty_input_is_empty_not_nan(self):
        correction = self._exact(4.0)
        out = ProfileRepair.corrected_mean_bound_batch(np.array([]), correction)
        assert out.shape == (0,)

    def test_batch_zero_correction_value_all_infinite(self):
        correction = self._exact(0.0)
        out = ProfileRepair.corrected_mean_bound_batch(
            np.array([0.0, 1.0, 2.0]), correction
        )
        assert np.all(np.isinf(out))

    def test_batch_never_produces_nan_on_finite_inputs(self, population):
        rng = np.random.default_rng(9)
        correction = SmokescreenMeanEstimator().estimate(
            rng.choice(population, size=200, replace=False), population.size, 0.05
        )
        y_approx = rng.uniform(-50.0, 50.0, size=1000)
        out = ProfileRepair.corrected_mean_bound_batch(y_approx, correction)
        assert not np.any(np.isnan(out))
        assert np.all(out >= correction.error_bound)

    def test_quantile_bound_extreme_rank_gap(self, population):
        """Worst case: the degraded answer ranks below every correction
        value while the correction answer ranks above — the gap term hits
        its 1/r ceiling and stays finite."""
        correction_values = np.sort(population[:400])
        estimate = self._exact(float(correction_values[-1]))
        bound = ProfileRepair.corrected_quantile_bound(
            float(correction_values[0]) - 1.0,
            float(correction_values[-1]),
            correction_values,
            0.5,
            estimate,
        )
        assert np.isfinite(bound)
        assert bound <= 1.0 / 0.5 + estimate.error_bound
