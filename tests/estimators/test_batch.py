"""Differential tests: the batch estimator API matches the scalar API.

One matrix of trial prefixes, every registered estimator: the batch result
must reproduce the per-trial scalar result within the repo's 1e-9
numerical-equivalence policy (most kernels are in fact bitwise-identical;
CLT's one-pass prefix standard deviation is the documented exception).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.estimators.base import BatchEstimate, validate_batch_request
from repro.estimators.dispatch import (
    estimate_batch,
    mean_estimator_registry,
    quantile_estimator_registry,
    variance_estimator_registry,
)
from repro.interventions import InterventionPlan
from repro.query import Aggregate, AggregateQuery
from repro.stats.prefix_moments import PrefixMoments

TRIALS = 7
MAX_SIZE = 120
UNIVERSE = 900
DELTA = 0.05
RTOL = 1e-9
ATOL = 1e-12


@pytest.fixture(scope="module")
def matrix() -> np.ndarray:
    return np.random.default_rng(21).gamma(2.0, 1.5, size=(TRIALS, MAX_SIZE))


@pytest.fixture(scope="module")
def moments(matrix) -> PrefixMoments:
    return PrefixMoments(matrix)


def batch_vs_scalar(estimator, moments, matrix, n, value_range=None):
    batch = estimator.estimate_batch(
        moments, n, UNIVERSE, DELTA, value_range=value_range
    )
    for t in range(moments.trials):
        scalar = estimator.estimate(
            matrix[t, :n], UNIVERSE, DELTA, value_range=value_range
        )
        assert batch.values[t] == pytest.approx(scalar.value, rel=RTOL, abs=ATOL)
        assert batch.error_bounds[t] == pytest.approx(
            scalar.error_bound, rel=RTOL, abs=ATOL
        )
    assert batch.method == estimator.name
    assert batch.n == n
    assert batch.universe_size == UNIVERSE


class TestMeanEstimators:
    @pytest.mark.parametrize("method", sorted(mean_estimator_registry()))
    @pytest.mark.parametrize("n", [2, 17, MAX_SIZE])
    def test_batch_matches_scalar(self, moments, matrix, method, n):
        batch_vs_scalar(mean_estimator_registry()[method], moments, matrix, n)

    @pytest.mark.parametrize("method", sorted(mean_estimator_registry()))
    def test_known_range_is_honoured(self, moments, matrix, method):
        batch_vs_scalar(
            mean_estimator_registry()[method], moments, matrix, 20,
            value_range=25.0,
        )

    @pytest.mark.parametrize("method", ["smokescreen", "hoeffding", "ebgs"])
    def test_constant_trials(self, method):
        constant = np.full((3, 30), 2.5)
        batch_vs_scalar(
            mean_estimator_registry()[method], PrefixMoments(constant),
            constant, 30,
        )

    def test_single_sample_prefix(self, moments, matrix):
        # n=1 exercises the degenerate edges: zero sample range for the
        # Hoeffding family, infinite nominal bound for CLT.
        for method in ("smokescreen", "hoeffding", "hoeffding-serfling", "clt"):
            batch_vs_scalar(
                mean_estimator_registry()[method], moments, matrix, 1
            )


class TestVarianceAndQuantileFallbacks:
    def test_variance_estimators(self, moments, matrix):
        for estimator in variance_estimator_registry().values():
            batch = estimator.estimate_batch(moments, 40, UNIVERSE, DELTA)
            for t in range(TRIALS):
                scalar = estimator.estimate(matrix[t, :40], UNIVERSE, DELTA)
                assert batch.values[t] == pytest.approx(scalar.value)
                assert batch.error_bounds[t] == pytest.approx(scalar.error_bound)

    def test_quantile_estimators(self, moments, matrix):
        counts = PrefixMoments(np.floor(matrix))
        for estimator in quantile_estimator_registry().values():
            batch = estimator.estimate_batch(
                counts, 40, UNIVERSE, 0.99, DELTA, Aggregate.MAX
            )
            for t in range(TRIALS):
                scalar = estimator.estimate(
                    np.floor(matrix[t, :40]), UNIVERSE, 0.99, DELTA, Aggregate.MAX
                )
                assert batch.values[t] == pytest.approx(scalar.value)
                assert batch.error_bounds[t] == pytest.approx(scalar.error_bound)


class TestDispatch:
    def query(self, dataset, model, aggregate):
        return AggregateQuery(dataset, model, aggregate)

    def test_avg_routes_unscaled(self, detrac_dataset, yolo_car, moments):
        query = self.query(detrac_dataset, yolo_car, Aggregate.AVG)
        batch = estimate_batch(
            query, moments, 30, UNIVERSE, detrac_dataset.frame_count
        )
        assert batch.method == "smokescreen"
        assert np.all(batch.values < 100)

    def test_sum_scaled_to_population(self, detrac_dataset, yolo_car, moments):
        avg = estimate_batch(
            self.query(detrac_dataset, yolo_car, Aggregate.AVG),
            moments, 30, UNIVERSE, detrac_dataset.frame_count,
        )
        total = estimate_batch(
            self.query(detrac_dataset, yolo_car, Aggregate.SUM),
            moments, 30, UNIVERSE, detrac_dataset.frame_count,
        )
        np.testing.assert_allclose(
            total.values, avg.values * detrac_dataset.frame_count
        )
        np.testing.assert_array_equal(total.error_bounds, avg.error_bounds)

    def test_unknown_method_rejected(self, detrac_dataset, yolo_car, moments):
        with pytest.raises(ConfigurationError):
            estimate_batch(
                self.query(detrac_dataset, yolo_car, Aggregate.AVG),
                moments, 30, UNIVERSE, detrac_dataset.frame_count,
                method="nope",
            )

    def test_matches_scalar_dispatch_on_executions(
        self, processor, detrac_dataset, yolo_car, rng
    ):
        from repro.estimators.dispatch import estimate_query

        query = self.query(detrac_dataset, yolo_car, Aggregate.AVG)
        plan = InterventionPlan.from_knobs(f=0.05)
        executions = [processor.execute(query, plan, rng) for _ in range(4)]
        moments = PrefixMoments(np.stack([e.values for e in executions]))
        n = executions[0].values.size
        for method in mean_estimator_registry():
            batch = estimate_batch(
                query, moments, n, executions[0].universe_size,
                executions[0].population_size, method,
            )
            for t, execution in enumerate(executions):
                scalar = estimate_query(query, execution, method)
                assert batch.values[t] == pytest.approx(
                    scalar.value, rel=RTOL, abs=ATOL
                )
                assert batch.error_bounds[t] == pytest.approx(
                    scalar.error_bound, rel=RTOL, abs=ATOL
                )


class TestBatchEstimateContainer:
    def test_trial_view(self, moments):
        batch = mean_estimator_registry()["smokescreen"].estimate_batch(
            moments, 10, UNIVERSE, DELTA
        )
        one = batch.trial(3)
        assert one.value == float(batch.values[3])
        assert one.error_bound == float(batch.error_bounds[3])
        assert one.n == 10

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EstimationError):
            BatchEstimate(
                values=np.zeros(3), error_bounds=np.zeros(2),
                method="m", n=1, universe_size=10,
            )

    def test_negative_bounds_rejected(self):
        with pytest.raises(EstimationError):
            BatchEstimate(
                values=np.zeros(2), error_bounds=np.array([0.1, -0.2]),
                method="m", n=1, universe_size=10,
            )

    @pytest.mark.parametrize(
        "n,universe", [(0, UNIVERSE), (MAX_SIZE + 1, UNIVERSE), (50, 10)]
    )
    def test_request_validation(self, moments, n, universe):
        with pytest.raises(EstimationError):
            validate_batch_request(moments, n, universe)
