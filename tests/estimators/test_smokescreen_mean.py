"""Tests for Algorithm 1 (Smokescreen's AVG/SUM/COUNT estimator)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.estimators.smokescreen import (
    SmokescreenMeanEstimator,
    bound_aware_estimate,
)
from repro.stats.inequalities import hoeffding_serfling_radius


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(42)
    return rng.poisson(5.0, size=5000).astype(float)


class TestOutputConstruction:
    def test_theorem_3_1_identities(self):
        """Y_approx = sgn * 2 UB LB/(UB+LB), err_b = (UB-LB)/(UB+LB)."""
        estimate = bound_aware_estimate(
            sample_mean=10.0, radius=2.0, n=50, universe_size=100, method="test"
        )
        upper, lower = 12.0, 8.0
        assert estimate.value == pytest.approx(2 * upper * lower / (upper + lower))
        assert estimate.error_bound == pytest.approx((upper - lower) / (upper + lower))

    def test_negative_mean_preserves_sign(self):
        estimate = bound_aware_estimate(-10.0, 2.0, 50, 100, "test")
        assert estimate.value < 0
        assert estimate.error_bound == pytest.approx(4.0 / 20.0)

    def test_degenerate_case_lb_zero(self):
        """When LB = 0 the theorem sets Y_approx = 0, err_b = 1."""
        estimate = bound_aware_estimate(1.0, 5.0, 10, 100, "test")
        assert estimate.value == 0.0
        assert estimate.error_bound == 1.0

    def test_zero_radius_zero_error(self):
        estimate = bound_aware_estimate(3.0, 0.0, 100, 100, "test")
        assert estimate.value == pytest.approx(3.0)
        assert estimate.error_bound == 0.0

    def test_value_biased_toward_lower_bound(self):
        """The harmonic mean is below the sample mean; the paper notes the
        result estimate is less precise than the plain mean."""
        estimate = bound_aware_estimate(10.0, 2.0, 50, 100, "test")
        assert estimate.value < 10.0

    def test_error_bound_certifies_value(self):
        """For any mu inside [LB, UB], |Y - mu| / mu <= err_b (Theorem 3.1)."""
        estimate = bound_aware_estimate(10.0, 2.0, 50, 100, "test")
        for mu in np.linspace(8.0, 12.0, 50):
            assert abs(estimate.value - mu) / mu <= estimate.error_bound + 1e-12


class TestEstimate:
    def test_uses_hoeffding_serfling_radius(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        estimate = SmokescreenMeanEstimator().estimate(values, 100, 0.05)
        radius = hoeffding_serfling_radius(4, 100, 0.05, 3.0)
        assert estimate.extras["upper"] == pytest.approx(2.5 + radius)
        assert estimate.extras["lower"] == pytest.approx(max(0.0, 2.5 - radius))

    def test_full_sample_has_zero_bound(self, population):
        estimate = SmokescreenMeanEstimator().estimate(
            population, population.size, 0.05
        )
        assert estimate.error_bound == 0.0
        assert estimate.value == pytest.approx(population.mean())

    def test_bound_shrinks_with_sample_size(self, population):
        rng = np.random.default_rng(0)
        estimator = SmokescreenMeanEstimator()
        small = estimator.estimate(
            rng.choice(population, 50, replace=False), population.size, 0.05
        )
        large = estimator.estimate(
            rng.choice(population, 1000, replace=False), population.size, 0.05
        )
        assert large.error_bound < small.error_bound

    def test_coverage_at_95_percent(self, population):
        """err_b >= true relative error in at least 1 - delta of trials."""
        rng = np.random.default_rng(1)
        estimator = SmokescreenMeanEstimator()
        mu = population.mean()
        violations = 0
        trials = 300
        for _ in range(trials):
            sample = rng.choice(population, size=100, replace=False)
            estimate = estimator.estimate(sample, population.size, 0.05)
            true_error = abs(estimate.value - mu) / mu
            if true_error > estimate.error_bound:
                violations += 1
        assert violations / trials <= 0.05

    def test_all_zero_sample_certain(self):
        """A constant-zero sample collapses the interval to the point {0}:
        a certain zero, consistent with the constant-sample case below."""
        estimate = SmokescreenMeanEstimator().estimate(np.zeros(10), 100, 0.05)
        assert estimate.value == 0.0
        assert estimate.error_bound == 0.0

    def test_constant_sample_zero_range(self):
        """Sample range 0 means radius 0: the estimator reports certainty."""
        estimate = SmokescreenMeanEstimator().estimate(np.full(10, 3.0), 100, 0.05)
        assert estimate.value == pytest.approx(3.0)
        assert estimate.error_bound == 0.0

    def test_rejects_empty_sample(self):
        with pytest.raises(EstimationError):
            SmokescreenMeanEstimator().estimate(np.array([]), 100, 0.05)

    def test_rejects_sample_larger_than_universe(self):
        with pytest.raises(EstimationError):
            SmokescreenMeanEstimator().estimate(np.ones(11), 10, 0.05)

    def test_rejects_non_finite(self):
        with pytest.raises(EstimationError):
            SmokescreenMeanEstimator().estimate(np.array([1.0, np.nan]), 10, 0.05)

    def test_scaled_for_sum(self):
        values = np.array([1.0, 2.0, 3.0])
        estimate = SmokescreenMeanEstimator().estimate(values, 100, 0.05)
        scaled = estimate.scaled(100)
        assert scaled.value == pytest.approx(estimate.value * 100)
        assert scaled.error_bound == estimate.error_bound

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=50.0), min_size=2, max_size=100
        ),
        extra=st.integers(min_value=0, max_value=1000),
        delta=st.floats(min_value=0.01, max_value=0.3),
    )
    @settings(max_examples=60)
    def test_error_bound_in_unit_interval(self, values, extra, delta):
        """Algorithm 1's err_b is always in [0, 1] by construction."""
        sample = np.array(values)
        estimate = SmokescreenMeanEstimator().estimate(
            sample, sample.size + extra, delta
        )
        assert 0.0 <= estimate.error_bound <= 1.0

    @given(
        values=st.lists(
            st.floats(min_value=-50.0, max_value=-0.1), min_size=2, max_size=50
        ),
        extra=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=30)
    def test_negative_values_supported(self, values, extra):
        sample = np.array(values)
        estimate = SmokescreenMeanEstimator().estimate(sample, sample.size + extra, 0.05)
        assert estimate.value <= 0.0
