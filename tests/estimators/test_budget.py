"""Tests for delta-budget splitting and stratified combination."""

from __future__ import annotations

import pytest

from repro.errors import EstimationError
from repro.estimators.budget import (
    StratumInterval,
    combine_stratum_intervals,
    resplit_delta,
    split_delta,
)


class TestSplitDelta:
    def test_even_split(self):
        assert split_delta(0.05, 5) == pytest.approx(0.01)

    def test_resplit_grows_the_share_after_losses(self):
        full = split_delta(0.05, 5)
        after_losses = resplit_delta(0.05, 3)
        assert after_losses > full
        assert after_losses == pytest.approx(0.05 / 3)
        # The union over survivors still spends exactly delta.
        assert 3 * after_losses == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(EstimationError):
            split_delta(0.0, 3)
        with pytest.raises(EstimationError):
            split_delta(1.0, 3)
        with pytest.raises(EstimationError):
            split_delta(0.05, 0)


class TestStratumInterval:
    def test_rejects_bad_weight(self):
        with pytest.raises(EstimationError):
            StratumInterval(weight=0.0, mean=1.0, lower=0.5, upper=1.5, n=10)
        with pytest.raises(EstimationError):
            StratumInterval(weight=1.2, mean=1.0, lower=0.5, upper=1.5, n=10)

    def test_rejects_inverted_interval(self):
        with pytest.raises(EstimationError):
            StratumInterval(weight=0.5, mean=1.0, lower=2.0, upper=1.0, n=10)


class TestCombine:
    def test_weighted_endpoints(self):
        strata = [
            StratumInterval(weight=0.75, mean=4.0, lower=3.0, upper=5.0, n=100),
            StratumInterval(weight=0.25, mean=1.0, lower=0.5, upper=1.5, n=50),
        ]
        estimate = combine_stratum_intervals(strata, 4000, "test-combine")
        assert estimate.extras["upper"] == pytest.approx(0.75 * 5.0 + 0.25 * 1.5)
        assert estimate.extras["lower"] == pytest.approx(0.75 * 3.0 + 0.25 * 0.5)
        assert estimate.n == 150
        assert estimate.universe_size == 4000
        assert estimate.method == "test-combine"
        # Theorem 3.1 output: harmonic mean of the combined endpoints.
        upper, lower = estimate.extras["upper"], estimate.extras["lower"]
        assert estimate.value == pytest.approx(
            2.0 * upper * lower / (upper + lower)
        )
        assert estimate.error_bound == pytest.approx(
            (upper - lower) / (upper + lower)
        )

    def test_single_stratum_passes_through(self):
        strata = [
            StratumInterval(weight=1.0, mean=2.0, lower=1.0, upper=3.0, n=40)
        ]
        estimate = combine_stratum_intervals(strata, 1000, "solo")
        assert estimate.extras == {"upper": 3.0, "lower": 1.0}

    def test_rejects_empty_and_unnormalised_weights(self):
        with pytest.raises(EstimationError):
            combine_stratum_intervals([], 100, "none")
        strata = [
            StratumInterval(weight=0.5, mean=1.0, lower=0.5, upper=1.5, n=10)
        ]
        with pytest.raises(EstimationError):
            combine_stratum_intervals(strata, 100, "half")

    def test_degenerate_zero_lower_is_uninformative(self):
        strata = [
            StratumInterval(weight=1.0, mean=0.1, lower=0.0, upper=1.0, n=10)
        ]
        estimate = combine_stratum_intervals(strata, 100, "degenerate")
        assert estimate.value == 0.0
        assert estimate.error_bound == 1.0
