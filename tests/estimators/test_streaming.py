"""Tests for the streaming (incremental) Algorithm 1 estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.streaming import StreamingMeanEstimator
from repro.stats.inequalities import hoeffding_serfling_radius


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(55)
    return rng.poisson(5.0, size=3000).astype(float)


class TestEquivalenceWithBatch:
    def test_matches_batch_at_every_prefix(self, population):
        rng = np.random.default_rng(1)
        stream_values = rng.choice(population, size=200, replace=False)
        streaming = StreamingMeanEstimator(population.size)
        batch = SmokescreenMeanEstimator()
        for prefix in (1, 5, 50, 200):
            while streaming.count < prefix:
                streaming.update(float(stream_values[streaming.count]))
            incremental = streaming.estimate()
            reference = batch.estimate(
                stream_values[:prefix], population.size, 0.05
            )
            assert incremental.value == pytest.approx(reference.value)
            assert incremental.error_bound == pytest.approx(reference.error_bound)

    def test_extend_equals_updates(self, population):
        values = population[:50]
        one = StreamingMeanEstimator(population.size)
        one.extend(values)
        two = StreamingMeanEstimator(population.size)
        for value in values:
            two.update(float(value))
        assert one.estimate().value == two.estimate().value


class TestStreamBehaviour:
    def test_bound_tightens_as_stream_grows(self, population):
        rng = np.random.default_rng(2)
        values = rng.choice(population, size=500, replace=False)
        streaming = StreamingMeanEstimator(population.size)
        streaming.extend(values[:50])
        early = streaming.estimate().error_bound
        streaming.extend(values[50:])
        late = streaming.estimate().error_bound
        assert late < early

    def test_estimate_when_below(self, population):
        rng = np.random.default_rng(3)
        values = rng.choice(population, size=1000, replace=False)
        streaming = StreamingMeanEstimator(population.size)
        streaming.extend(values[:10])
        # Below the warm-up floor: never stops, however tight the bound.
        assert streaming.estimate_when_below(0.99, min_count=30) is None
        streaming.extend(values[10:])
        hit = streaming.estimate_when_below(0.9)
        assert hit is not None
        assert hit.error_bound <= 0.9

    def test_full_universe_certain(self, population):
        streaming = StreamingMeanEstimator(population.size)
        streaming.extend(population)
        estimate = streaming.estimate()
        assert estimate.error_bound == 0.0
        assert estimate.value == pytest.approx(population.mean())

    def test_processing_until_target_workflow(self, population):
        """The streaming loop: ingest frames until the bound is met; the
        answer then matches the batch estimate on what was consumed."""
        rng = np.random.default_rng(4)
        order = rng.permutation(population.size)
        streaming = StreamingMeanEstimator(population.size)
        result = None
        consumed = 0
        for index in order:
            streaming.update(float(population[index]))
            consumed += 1
            result = streaming.estimate_when_below(0.25)
            if result is not None:
                break
        assert consumed >= 30  # the warm-up floor held
        assert result is not None
        assert consumed < population.size
        reference = SmokescreenMeanEstimator().estimate(
            population[order[:consumed]], population.size, 0.05
        )
        assert result.error_bound == pytest.approx(reference.error_bound)


class TestValidation:
    def test_rejects_bad_construction(self):
        with pytest.raises(EstimationError):
            StreamingMeanEstimator(0)
        with pytest.raises(EstimationError):
            StreamingMeanEstimator(10, delta=1.0)

    def test_rejects_non_finite_values(self):
        streaming = StreamingMeanEstimator(10)
        with pytest.raises(EstimationError):
            streaming.update(float("nan"))
        with pytest.raises(EstimationError):
            streaming.update(float("inf"))

    def test_rejects_overflowing_universe(self):
        streaming = StreamingMeanEstimator(2)
        streaming.update(1.0)
        streaming.update(2.0)
        with pytest.raises(EstimationError):
            streaming.update(3.0)

    def test_estimate_requires_data(self):
        with pytest.raises(EstimationError):
            StreamingMeanEstimator(10).estimate()

    def test_when_below_rejects_bad_min_count(self):
        streaming = StreamingMeanEstimator(10)
        streaming.update(1.0)
        with pytest.raises(EstimationError):
            streaming.estimate_when_below(0.5, min_count=0)

    def test_single_constant_frame_cannot_trigger_stop(self):
        """The regression the warm-up floor closes: one frame has zero
        sample range, hence a zero bound — it must not stop the stream."""
        streaming = StreamingMeanEstimator(1000)
        streaming.update(6.0)
        assert streaming.estimate().error_bound == 0.0
        assert streaming.estimate_when_below(0.2) is None


class TestExtendAtomicity:
    """Regression: a failed ``extend`` must leave the estimator untouched.

    The old implementation folded values one at a time and validated each
    on arrival, so a batch like ``[4.0, nan, 5.0]`` raised *after* 4.0 had
    already been absorbed — count, sum, and extrema were silently
    corrupted behind the exception, and the next ``estimate()`` was wrong.
    """

    def _snapshot(self, streaming):
        return (
            streaming.count,
            streaming._sum,
            streaming._minimum,
            streaming._maximum,
        )

    def test_non_finite_mid_batch_leaves_state_untouched(self):
        streaming = StreamingMeanEstimator(100)
        streaming.extend([1.0, 2.0, 3.0])
        before = self._snapshot(streaming)
        with pytest.raises(EstimationError):
            streaming.extend([4.0, float("nan"), 5.0])
        assert self._snapshot(streaming) == before
        control = StreamingMeanEstimator(100)
        control.extend([1.0, 2.0, 3.0])
        assert streaming.estimate() == control.estimate()

    def test_universe_overflow_mid_batch_leaves_state_untouched(self):
        streaming = StreamingMeanEstimator(4)
        streaming.extend([1.0, 2.0, 3.0])
        before = self._snapshot(streaming)
        with pytest.raises(EstimationError):
            streaming.extend([4.0, 5.0])  # would overflow at the 2nd value
        assert self._snapshot(streaming) == before
        streaming.extend([4.0])  # the universe still has room for one
        assert streaming.count == 4

    def test_rejects_non_flat_batch(self):
        streaming = StreamingMeanEstimator(100)
        with pytest.raises(EstimationError):
            streaming.extend([[1.0, 2.0], [3.0, 4.0]])
        assert streaming.count == 0

    def test_empty_batch_is_noop(self):
        streaming = StreamingMeanEstimator(100)
        streaming.extend([])
        assert streaming.count == 0


class TestWhenBelowUnreachableFloor:
    """Regression: ``min_count > universe_size`` can never be satisfied.

    The old implementation happily returned None forever: the universe
    exhausts at ``universe_size`` observations (``update`` then raises),
    so a caller polling ``estimate_when_below`` in the documented loop
    spun until the overflow error — far from the misconfigured floor that
    actually caused it. Now the impossibility is rejected up front.
    """

    def test_rejects_min_count_beyond_universe(self):
        streaming = StreamingMeanEstimator(50)
        streaming.update(1.0)
        with pytest.raises(EstimationError, match="exceeds the universe"):
            streaming.estimate_when_below(0.5, min_count=51)

    def test_boundary_min_count_equal_to_universe_works(self):
        universe = 40
        rng = np.random.default_rng(9)
        values = rng.poisson(5.0, size=universe).astype(float)
        streaming = StreamingMeanEstimator(universe)
        result = None
        for value in values:
            streaming.update(float(value))
            result = streaming.estimate_when_below(
                0.5, min_count=universe
            )
            if result is not None:
                break
        # At full exhaustion the sample IS the population: zero bound.
        assert result is not None
        assert streaming.count == universe
        assert result.error_bound == 0.0
        assert result.value == pytest.approx(values.mean())


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

#: Finite, well-scaled frame values (counts live in this range too).
_values = st.lists(
    st.floats(
        min_value=0.0, max_value=100.0,
        allow_nan=False, allow_infinity=False,
    ),
    min_size=1,
    max_size=60,
)


class TestStreamingProperties:
    """Hypothesis invariants over arbitrary finite streams."""

    @given(values=_values)
    @settings(max_examples=50, deadline=None)
    def test_stream_agrees_with_batch_on_identical_prefix(self, values):
        """Property: after any prefix, the O(1) stream reports exactly the
        batch Algorithm 1 estimate over that prefix."""
        universe = len(values) + 100
        streaming = StreamingMeanEstimator(universe)
        streaming.extend(values)
        incremental = streaming.estimate()
        reference = SmokescreenMeanEstimator().estimate(
            np.asarray(values), universe, 0.05
        )
        assert incremental.value == pytest.approx(reference.value)
        assert incremental.error_bound == pytest.approx(reference.error_bound)
        assert incremental.n == reference.n

    @given(values=_values)
    @settings(max_examples=50, deadline=None)
    def test_extend_equals_sequential_updates(self, values):
        universe = len(values) + 1
        batched = StreamingMeanEstimator(universe)
        batched.extend(values)
        sequential = StreamingMeanEstimator(universe)
        for value in values:
            sequential.update(float(value))
        assert batched.estimate() == sequential.estimate()

    @given(
        universe=st.integers(min_value=2, max_value=500),
        delta=st.floats(min_value=0.001, max_value=0.5),
        value_range=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_interval_radius_shrinks_monotonically(
        self, universe, delta, value_range
    ):
        """Property: at a fixed sample range the Hoeffding–Serfling radius
        the stream feeds Theorem 3.1 only ever tightens as n grows. (The
        *reported* relative bound need not be monotone — the theorem's
        clipping interacts with the moving mean — but the interval the
        stream maintains must be.)"""
        radii = [
            hoeffding_serfling_radius(n, universe, delta, value_range)
            for n in range(1, universe + 1)
        ]
        for earlier, later in zip(radii, radii[1:]):
            assert later <= earlier + 1e-12
        assert radii[-1] == pytest.approx(0.0, abs=1e-9)

    @given(values=_values)
    @settings(max_examples=50, deadline=None)
    def test_exhausted_universe_is_certain(self, values):
        """Property: at count == universe_size the sample IS the
        population — zero bound, exact mean."""
        streaming = StreamingMeanEstimator(len(values))
        streaming.extend(values)
        estimate = streaming.estimate()
        assert estimate.error_bound == 0.0
        assert estimate.value == pytest.approx(
            sum(values) / len(values)
        )
        with pytest.raises(EstimationError):
            streaming.update(0.0)

    @given(values=_values, target=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_estimate_when_below_honours_floor_and_target(self, values, target):
        """Property: a stop only ever happens past the warm-up floor with
        the bound actually at or under the target."""
        streaming = StreamingMeanEstimator(len(values) + 15)
        stopped = None
        for value in values:
            streaming.update(float(value))
            stopped = streaming.estimate_when_below(target, min_count=10)
            if stopped is not None:
                break
        if stopped is not None:
            assert streaming.count >= 10
            assert stopped.error_bound <= target
