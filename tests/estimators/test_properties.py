"""Property-based invariants across all estimators (hypothesis)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.base import Estimate
from repro.estimators.classic import (
    CLTEstimator,
    HoeffdingEstimator,
    HoeffdingSerflingEstimator,
)
from repro.estimators.ebgs import EBGSEstimator
from repro.estimators.quantile import SmokescreenQuantileEstimator
from repro.estimators.repair import ProfileRepair
from repro.estimators.smokescreen import SmokescreenMeanEstimator
from repro.estimators.stein import SteinEstimator
from repro.estimators.variance import SmokescreenVarianceEstimator
from repro.query.aggregates import Aggregate

count_samples = st.lists(
    st.integers(min_value=0, max_value=40), min_size=3, max_size=120
).map(lambda values: np.array(values, dtype=float))

slack = st.integers(min_value=0, max_value=2000)


class TestMeanEstimatorInvariants:
    @given(values=count_samples, extra=slack)
    @settings(max_examples=60)
    def test_smokescreen_value_inside_interval(self, values, extra):
        estimate = SmokescreenMeanEstimator().estimate(
            values, values.size + extra, 0.05
        )
        assert estimate.extras["lower"] - 1e-9 <= abs(estimate.value)
        assert abs(estimate.value) <= estimate.extras["upper"] + 1e-9

    @given(values=count_samples, extra=slack)
    @settings(max_examples=60)
    def test_bound_monotone_in_delta(self, values, extra):
        """Less confidence demanded -> tighter (or equal) bound."""
        estimator = SmokescreenMeanEstimator()
        universe = values.size + extra
        strict = estimator.estimate(values, universe, 0.01).error_bound
        loose = estimator.estimate(values, universe, 0.20).error_bound
        assert loose <= strict + 1e-12

    @given(values=count_samples, extra=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=60)
    def test_hs_never_looser_than_hoeffding(self, values, extra):
        universe = values.size + extra
        hs = HoeffdingSerflingEstimator().estimate(values, universe, 0.05)
        hoeffding = HoeffdingEstimator().estimate(values, universe, 0.05)
        if math.isfinite(hoeffding.error_bound):
            assert hs.error_bound <= hoeffding.error_bound + 1e-9

    @given(values=count_samples, extra=slack)
    @settings(max_examples=40)
    def test_ebgs_never_tighter_than_smokescreen(self, values, extra):
        universe = values.size + extra
        ours = SmokescreenMeanEstimator().estimate(values, universe, 0.05)
        ebgs = EBGSEstimator().estimate(values, universe, 0.05)
        assert ours.error_bound <= ebgs.error_bound + 1e-9

    @given(values=count_samples, extra=slack, factor=st.floats(0.1, 1000.0))
    @settings(max_examples=40)
    def test_scaled_preserves_bound(self, values, extra, factor):
        estimate = SmokescreenMeanEstimator().estimate(
            values, values.size + extra, 0.05
        )
        scaled = estimate.scaled(factor)
        assert scaled.error_bound == estimate.error_bound
        assert scaled.value == pytest.approx(estimate.value * factor)

    @given(values=count_samples, extra=slack, shift=st.floats(1.0, 100.0))
    @settings(max_examples=40)
    def test_shift_invariance_of_radius(self, values, extra, shift):
        """The interval radius depends only on the sample range, so a
        positive shift tightens the *relative* bound (larger mean)."""
        estimator = SmokescreenMeanEstimator()
        universe = values.size + extra
        base = estimator.estimate(values + 1.0, universe, 0.05)
        shifted = estimator.estimate(values + 1.0 + shift, universe, 0.05)
        assert shifted.error_bound <= base.error_bound + 1e-9


class TestQuantileEstimatorInvariants:
    @given(
        values=count_samples,
        extra=slack,
        r=st.floats(min_value=0.8, max_value=0.995),
    )
    @settings(max_examples=60)
    def test_answer_is_a_sample_value(self, values, extra, r):
        estimate = SmokescreenQuantileEstimator().estimate(
            values, values.size + extra, r, 0.05, Aggregate.MAX
        )
        assert estimate.value in values

    @given(values=count_samples, extra=slack)
    @settings(max_examples=60)
    def test_bound_positive_and_finite(self, values, extra):
        estimate = SmokescreenQuantileEstimator().estimate(
            values, values.size + extra, 0.95, 0.05, Aggregate.MAX
        )
        assert 0.0 < estimate.error_bound < math.inf

    @given(values=count_samples, extra=slack)
    @settings(max_examples=40)
    def test_stein_bound_data_independent(self, values, extra):
        universe = values.size + extra
        a = SteinEstimator().estimate(values, universe, 0.95, 0.05, Aggregate.MAX)
        b = SteinEstimator().estimate(
            values * 3 + 1, universe, 0.95, 0.05, Aggregate.MAX
        )
        assert a.error_bound == b.error_bound


class TestVarianceEstimatorInvariants:
    @given(values=count_samples, extra=slack)
    @settings(max_examples=60)
    def test_variance_value_non_negative(self, values, extra):
        estimate = SmokescreenVarianceEstimator().estimate(
            values, values.size + extra, 0.05
        )
        assert estimate.value >= 0.0
        assert 0.0 <= estimate.error_bound <= 1.0


class TestRepairInvariants:
    @given(
        correction=count_samples,
        y_approx=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_corrected_bound_at_least_correction_bound(self, correction, y_approx):
        estimate = SmokescreenMeanEstimator().estimate(
            correction, correction.size + 100, 0.05
        )
        bound = ProfileRepair.corrected_mean_bound(y_approx, estimate)
        assert bound >= estimate.error_bound - 1e-12

    @given(correction=count_samples)
    @settings(max_examples=40)
    def test_corrected_bound_minimal_at_correction_value(self, correction):
        """Eq. 12's drift term vanishes exactly at Y_approx(v)."""
        estimate = SmokescreenMeanEstimator().estimate(
            correction, correction.size + 100, 0.05
        )
        at_value = ProfileRepair.corrected_mean_bound(estimate.value, estimate)
        away = ProfileRepair.corrected_mean_bound(estimate.value + 1.0, estimate)
        assert at_value <= away + 1e-12
        if estimate.value != 0:
            assert at_value == pytest.approx(estimate.error_bound)


class TestCLTNominality:
    @given(values=count_samples, extra=slack)
    @settings(max_examples=40)
    def test_clt_bound_finite_or_degenerate(self, values, extra):
        estimate = CLTEstimator().estimate(values, values.size + extra, 0.05)
        assert estimate.error_bound >= 0.0

    def test_estimate_post_init_rejects_negative_bound(self):
        from repro.errors import EstimationError

        with pytest.raises(EstimationError):
            Estimate(value=1.0, error_bound=-0.1, method="x", n=1, universe_size=2)
