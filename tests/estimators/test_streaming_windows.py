"""Tests for the windowed / decayed streaming estimators and their
sentinel wiring.

Both variants must pin to a from-scratch evaluation at the repo's 1e-9
policy: the windowed estimate equals the batch Theorem 3.1 construction on
the retained window, and the decayed estimate equals the hand-computed
weighted mean with the Kish effective size plugged into the radius.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimators.base import Estimate
from repro.estimators.sentinel import BoundSentinel
from repro.estimators.smokescreen import bound_aware_estimate
from repro.estimators.streaming import (
    DecayedMeanEstimator,
    StreamingMeanEstimator,
    WindowedMeanEstimator,
)
from repro.stats.inequalities import hoeffding_serfling_radius

RTOL = 1e-9
ATOL = 1e-12


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(23)
    return rng.poisson(5.0, size=2000).astype(float)


class TestWindowedMeanEstimator:
    def test_rejects_bad_construction(self):
        with pytest.raises(EstimationError):
            WindowedMeanEstimator(0, 10)
        with pytest.raises(EstimationError):
            WindowedMeanEstimator(100, 0)
        with pytest.raises(EstimationError):
            WindowedMeanEstimator(100, 101)
        with pytest.raises(EstimationError):
            WindowedMeanEstimator(100, 10, delta=0.0)

    def test_estimate_requires_data(self):
        with pytest.raises(EstimationError):
            WindowedMeanEstimator(100, 10).estimate()

    def test_pins_to_scratch_construction(self, population):
        universe, window = 500, 64
        estimator = WindowedMeanEstimator(universe, window)
        for i, value in enumerate(population[:300]):
            estimator.update(float(value))
            retained = population[max(0, i + 1 - window) : i + 1]
            estimate = estimator.estimate()
            expected_radius = hoeffding_serfling_radius(
                retained.size, universe, 0.05,
                float(retained.max() - retained.min()),
            )
            expected = bound_aware_estimate(
                float(retained.mean()), expected_radius,
                retained.size, universe, "smokescreen-windowed",
            )
            np.testing.assert_allclose(
                estimate.value, expected.value, rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                estimate.error_bound, expected.error_bound,
                rtol=RTOL, atol=ATOL,
            )
            assert estimate.n == retained.size
            assert estimate.method == "smokescreen-windowed"

    def test_never_exhausts_and_forgets_drift(self, population):
        """Unlike the cumulative estimator, the window (a) accepts more
        values than its universe, and (b) converges to the post-drift
        regime within one window length."""
        estimator = WindowedMeanEstimator(500, 50)
        estimator.extend(population[:1500])  # 3x the universe: fine
        assert estimator.count == 1500
        assert estimator.window_count == 50
        estimator.extend(np.zeros(50))  # hostile regime takes over
        assert estimator.estimate().value == 0.0

    def test_matches_cumulative_before_first_eviction(self, population):
        universe = 500
        windowed = WindowedMeanEstimator(universe, 100)
        cumulative = StreamingMeanEstimator(universe)
        values = population[:80]
        windowed.extend(values)
        cumulative.extend(values)
        np.testing.assert_allclose(
            windowed.estimate().value,
            cumulative.estimate().value,
            rtol=RTOL, atol=ATOL,
        )
        np.testing.assert_allclose(
            windowed.estimate().error_bound,
            cumulative.estimate().error_bound,
            rtol=RTOL, atol=ATOL,
        )


class TestDecayedMeanEstimator:
    def test_rejects_bad_construction(self):
        with pytest.raises(EstimationError):
            DecayedMeanEstimator(0, 0.9)
        with pytest.raises(EstimationError):
            DecayedMeanEstimator(100, 0.0)
        with pytest.raises(EstimationError):
            DecayedMeanEstimator(100, 1.0)
        with pytest.raises(EstimationError):
            DecayedMeanEstimator(100, math.nan)

    def test_rejects_saturation_beyond_universe(self):
        # (1 + 0.999) / (1 - 0.999) = 1999 effective frames > universe 100
        with pytest.raises(EstimationError, match="saturates"):
            DecayedMeanEstimator(100, 0.999)
        DecayedMeanEstimator(2000, 0.999)  # fits: no raise

    def test_estimate_requires_data(self):
        with pytest.raises(EstimationError):
            DecayedMeanEstimator(1000, 0.9).estimate()

    def test_pins_to_scratch_construction(self, population):
        universe, decay = 1000, 0.95
        estimator = DecayedMeanEstimator(universe, decay)
        values = population[:200]
        estimator.extend(values)
        weights = decay ** np.arange(len(values) - 1, -1, -1, dtype=float)
        expected_mean = np.average(values, weights=weights)
        effective = weights.sum() ** 2 / (weights**2).sum()
        expected_radius = hoeffding_serfling_radius(
            effective, universe, 0.05, float(values.max() - values.min())
        )
        expected = bound_aware_estimate(
            float(expected_mean), expected_radius,
            max(1, int(effective)), universe, "smokescreen-decayed",
        )
        estimate = estimator.estimate()
        np.testing.assert_allclose(
            estimate.value, expected.value, rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(
            estimate.error_bound, expected.error_bound, rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(
            estimator.effective_size(), effective, rtol=RTOL, atol=ATOL
        )
        assert estimate.n == int(effective)
        assert estimate.method == "smokescreen-decayed"

    def test_forgets_drift_geometrically(self, population):
        estimator = DecayedMeanEstimator(2000, 0.9)
        estimator.extend(population[:500])
        clean_value = estimator.estimate().value
        estimator.extend(np.zeros(100))  # ~10 effective frames of zeros
        assert estimator.estimate().value < 0.01 * clean_value


def _reference(population) -> Estimate:
    return Estimate(
        value=float(population.mean()),
        error_bound=0.0,
        method="exact",
        n=population.size,
        universe_size=population.size,
    )


class TestSentinelWithPluggableStream:
    def test_rejects_stale_stream(self, population):
        stale = WindowedMeanEstimator(population.size, 100)
        stale.update(1.0)
        with pytest.raises(EstimationError, match="fresh"):
            BoundSentinel(
                reference=_reference(population),
                profiled_bound=0.1,
                universe_size=population.size,
                stream=stale,
            )

    def test_windowed_stream_trips_where_cumulative_dilutes(self, population):
        """The failure mode the windowed variant exists for: a long clean
        prefix followed by drift. The cumulative mean barely moves; the
        windowed mean converges to the hostile regime and trips."""
        # 1800 clean frames, then 100 hostile zeros: a ~5% dilution of the
        # all-time mean, but a total takeover of a 100-frame window.
        hostile = np.zeros(100)
        kwargs = dict(
            reference=_reference(population),
            profiled_bound=0.05,
            universe_size=population.size,
            min_count=30,
            patience=2,
        )
        windowed = BoundSentinel(
            stream=WindowedMeanEstimator(population.size, 100), **kwargs
        )
        cumulative = BoundSentinel(**kwargs)
        for sentinel in (windowed, cumulative):
            for chunk in np.split(population[:1800], 9):
                sentinel.extend(chunk)
            for chunk in np.split(hostile, 2):
                sentinel.extend(chunk)
        assert windowed.verdict().tripped
        assert not cumulative.verdict().tripped

    def test_windowed_stream_stays_quiet_on_clean_feed(self, population):
        sentinel = BoundSentinel(
            reference=_reference(population),
            profiled_bound=0.1,
            universe_size=population.size,
            stream=WindowedMeanEstimator(population.size, 480),
            min_count=30,
            patience=2,
        )
        rng = np.random.default_rng(31)
        for chunk in np.split(rng.permutation(population), 5):
            sentinel.extend(chunk)
        verdict = sentinel.verdict()
        assert not verdict.tripped
        assert verdict.breaches == 0
