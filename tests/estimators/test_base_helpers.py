"""Tests for the estimator base helpers and streaming integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.estimators.base import Estimate, effective_range, validate_sample


class TestValidateSample:
    def test_passes_through_valid_arrays(self):
        array = validate_sample(np.array([1, 2, 3]), 10)
        assert array.dtype == float
        assert array.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_empty(self):
        with pytest.raises(EstimationError):
            validate_sample(np.array([]), 10)

    def test_rejects_oversized(self):
        with pytest.raises(EstimationError):
            validate_sample(np.ones(11), 10)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(EstimationError):
            validate_sample(np.array([1.0, bad]), 10)

    def test_accepts_lists(self):
        array = validate_sample([1, 2], 10)
        assert isinstance(array, np.ndarray)


class TestEffectiveRange:
    def test_known_range_wins(self):
        assert effective_range(np.array([0.0, 0.0]), 1.0) == 1.0

    def test_falls_back_to_sample_range(self):
        assert effective_range(np.array([2.0, 7.0]), None) == 5.0

    def test_rejects_negative_known_range(self):
        with pytest.raises(EstimationError):
            effective_range(np.array([1.0]), -0.5)

    def test_known_range_fixes_constant_indicator_blind_spot(self):
        """The coverage-audit regression in miniature: an all-ones
        indicator sample must not certify p = 1."""
        from repro.estimators.smokescreen import SmokescreenMeanEstimator

        ones = np.ones(20)
        without = SmokescreenMeanEstimator().estimate(ones, 1000, 0.05)
        with_known = SmokescreenMeanEstimator().estimate(
            ones, 1000, 0.05, value_range=1.0
        )
        assert without.error_bound == 0.0  # the blind spot
        assert with_known.error_bound > 0.0  # closed by the known range

    def test_known_range_never_tightens_vs_true_wider_sample(self):
        """When the sample already spans the known range, supplying it
        changes nothing."""
        from repro.estimators.smokescreen import SmokescreenMeanEstimator

        sample = np.array([0.0, 1.0] * 10)
        default = SmokescreenMeanEstimator().estimate(sample, 1000, 0.05)
        known = SmokescreenMeanEstimator().estimate(
            sample, 1000, 0.05, value_range=1.0
        )
        assert default.error_bound == known.error_bound


class TestEstimateContainer:
    def test_scaled_keeps_metadata(self):
        estimate = Estimate(
            value=2.0, error_bound=0.1, method="m", n=5, universe_size=50,
            extras={"upper": 3.0},
        )
        scaled = estimate.scaled(10.0)
        assert scaled.method == "m"
        assert scaled.n == 5
        assert scaled.extras["upper"] == 3.0

    def test_rejects_negative_bound(self):
        with pytest.raises(EstimationError):
            Estimate(value=1.0, error_bound=-1e-9, method="m", n=1, universe_size=2)
