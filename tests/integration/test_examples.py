"""Smoke tests: every shipped example runs end to end."""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scenarios():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "harry_traffic_survey.py",
        "bandwidth_budget.py",
        "profile_transfer.py",
        "city_dashboard.py",
        "chaos_fleet.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_quickstart_reports_choice_and_estimate(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "chosen setting" in out
    assert "estimate" in out


def test_harry_reports_privacy_and_energy(capsys):
    runpy.run_path(
        str(EXAMPLES_DIR / "harry_traffic_survey.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "Harry chose" in out
    assert "face frames" in out
    assert "transmission saved" in out


def test_dashboard_meets_every_target(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "city_dashboard.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "chosen shared fraction" in out
    assert out.count("target") >= 3


def test_chaos_fleet_reports_degradation_and_valid_bound(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "chaos_fleet.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "lost cameras:" in out
    assert "degraded cameras:" in out
    assert "widened bound" in out
    assert "within bound: True" in out
    # The seeded run actually loses cameras, so coverage drops below 100%.
    assert "coverage 60.0% of fleet frames" in out
