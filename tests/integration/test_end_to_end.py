"""End-to-end integration tests across subsystem boundaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Aggregate,
    InterventionPlan,
    ObjectClass,
    PublicPreferences,
    Smokescreen,
    estimate_query,
    ua_detrac,
    yolo_v4_like,
)
from repro.core.tradeoff import choose_tradeoff
from repro.experiments.metrics import true_error
from repro.query import AggregateQuery, QueryProcessor


@pytest.fixture(scope="module")
def system():
    return Smokescreen(ua_detrac(frame_count=2500), yolo_v4_like(), trials=3, seed=5)


class TestAdministrationProcedure:
    """The §3.1 flow: profile -> choose -> estimate, for each aggregate."""

    @pytest.mark.parametrize(
        "aggregate", [Aggregate.AVG, Aggregate.SUM, Aggregate.COUNT, Aggregate.MAX]
    )
    def test_profile_choose_estimate(self, system, aggregate):
        query = system.query(aggregate)
        profile = system.profiler.profile_sampling(
            query, (0.05, 0.1, 0.2, 0.4, 0.8), np.random.default_rng(1)
        )
        max_error = float(profile.error_bounds().max()) + 0.01
        choice = choose_tradeoff(profile, PublicPreferences(max_error=max_error))
        assert choice.point.plan.fraction == 0.05  # loosest target: max degradation

        estimate = system.estimate(query, choice.point.plan)
        assert np.isfinite(estimate.value)
        assert estimate.error_bound >= 0

    def test_stricter_target_means_less_degradation(self, system):
        query = system.query(Aggregate.AVG)
        profile = system.profiler.profile_sampling(
            query, (0.05, 0.1, 0.2, 0.4, 0.8), np.random.default_rng(2)
        )
        bounds = profile.error_bounds()
        strict = choose_tradeoff(
            profile, PublicPreferences(max_error=float(bounds.min()) + 1e-6)
        )
        loose = choose_tradeoff(
            profile, PublicPreferences(max_error=float(bounds.max()) + 1e-6)
        )
        assert strict.degradation_level >= loose.degradation_level


class TestBoundValidityEndToEnd:
    """The system-level §5 guarantee: bounds cover true errors."""

    def test_random_plan_coverage_through_full_stack(self, system):
        query = system.query(Aggregate.AVG)
        processor = system.processor
        rng = np.random.default_rng(3)
        violations = 0
        trials = 100
        for _ in range(trials):
            execution = processor.execute(
                query, InterventionPlan.from_knobs(f=0.05), rng
            )
            estimate = estimate_query(query, execution)
            if true_error(processor, query, estimate.value) > estimate.error_bound:
                violations += 1
        assert violations / trials <= 0.05

    def test_repair_coverage_under_removal(self, system):
        """Removal biases the universe; the repaired profile bound covers
        the per-trial errors."""
        from repro.experiments.trials import run_repair_trials

        query = system.query(Aggregate.AVG)
        processor = system.processor
        correction_rng = np.random.default_rng(4)
        correction = system.build_correction_set(query)
        plan = InterventionPlan.from_knobs(f=0.3, c=(ObjectClass.PERSON,))
        summary = run_repair_trials(
            processor, query, plan, correction.values, 30, correction_rng
        )
        assert summary.corrected_bound >= summary.true_error


class TestCrossDatasetConsistency:
    def test_same_estimator_contract_on_both_corpora(self, processor, rng):
        from repro.experiments.workloads import load_dataset, model_for

        for name in ("night-street", "ua-detrac"):
            dataset = load_dataset(name, 1500)
            query = AggregateQuery(dataset, model_for(name), Aggregate.AVG)
            local_processor = QueryProcessor()
            execution = local_processor.execute(
                query, InterventionPlan.from_knobs(f=0.1), rng
            )
            estimate = estimate_query(query, execution)
            assert 0.0 <= estimate.error_bound <= 1.0
            assert estimate.universe_size == dataset.frame_count


class TestExtensionInterventions:
    def test_noise_plan_biases_outputs_and_repair_covers(self, system):
        from repro.experiments.trials import run_repair_trials
        from repro.interventions import FrameSampling, NoiseAddition

        query = system.query(Aggregate.AVG)
        processor = system.processor
        plan = InterventionPlan(
            sampling=FrameSampling(0.5), extras=(NoiseAddition(0.4),)
        )
        assert not plan.is_random_for(query.dataset)
        correction = system.build_correction_set(query)
        summary = run_repair_trials(
            processor, query, plan, correction.values, 20, np.random.default_rng(6)
        )
        # Noise suppresses detections systematically...
        assert summary.true_error > 0.05
        # ...and the corrected bound still covers the error.
        assert summary.corrected_bound >= summary.true_error
