"""Failure injection and adversarial inputs across the stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.base import DetectorOutputs
from repro.errors import (
    ConfigurationError,
    EstimationError,
    InterventionError,
)
from repro.interventions import InterventionPlan
from repro.query import Aggregate, AggregateQuery, QueryProcessor
from repro.video.dataset import ObjectArrays, VideoDataset
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


class BrokenDetector:
    """A detector that returns NaN outputs (a crashed/misloaded model)."""

    name = "broken"
    target_class = ObjectClass.CAR
    threshold = 0.7

    def run(self, dataset, resolution=None, quality=1.0):
        counts = np.full(dataset.frame_count, np.nan)
        return DetectorOutputs(
            counts=counts, resolution=resolution or dataset.native_resolution
        )


class EmptySceneDetector:
    """A detector that never finds anything (all-zero outputs)."""

    name = "empty"
    target_class = ObjectClass.CAR
    threshold = 0.7

    def run(self, dataset, resolution=None, quality=1.0):
        counts = np.zeros(dataset.frame_count, dtype=np.int64)
        return DetectorOutputs(
            counts=counts, resolution=resolution or dataset.native_resolution
        )


def empty_dataset(frames: int = 100) -> VideoDataset:
    return VideoDataset(
        name="empty-scene",
        native_resolution=Resolution(608),
        frame_count=frames,
        objects={ObjectClass.CAR: ObjectArrays.empty()},
        clutter=np.linspace(0, 1, frames, endpoint=False),
        seed=0,
    )


class TestBrokenModelOutputs:
    def test_nan_outputs_rejected_at_estimation(self, detrac_dataset, rng):
        """Non-finite model outputs surface as EstimationError, not as a
        silently wrong bound."""
        from repro.estimators import estimate_query

        query = AggregateQuery(detrac_dataset, BrokenDetector(), Aggregate.AVG)
        processor = QueryProcessor()
        execution = processor.execute(query, InterventionPlan.from_knobs(f=0.1), rng)
        with pytest.raises(EstimationError):
            estimate_query(query, execution)


class TestDegenerateScenes:
    def test_all_zero_outputs_yield_certain_zero(self, rng):
        """An empty scene: every sampled output is 0, the interval
        collapses to the point {0}, and the estimate is a certain zero."""
        from repro.estimators import estimate_query

        dataset = empty_dataset()
        query = AggregateQuery(dataset, EmptySceneDetector(), Aggregate.AVG)
        processor = QueryProcessor()
        execution = processor.execute(query, InterventionPlan.from_knobs(f=0.3), rng)
        estimate = estimate_query(query, execution)
        assert estimate.value == 0.0
        assert estimate.error_bound == 0.0

    def test_count_on_empty_scene_partial_sample_stays_uncertain(self, rng):
        """COUNT knows its indicator range is 1 a priori, so an all-zero
        *partial* sample cannot certify absence — the estimator reports 0
        with the honest err_b = 1 rather than a falsely certain zero."""
        from repro.estimators import estimate_query

        dataset = empty_dataset()
        query = AggregateQuery(dataset, EmptySceneDetector(), Aggregate.COUNT)
        processor = QueryProcessor()
        execution = processor.execute(query, InterventionPlan.from_knobs(f=0.3), rng)
        estimate = estimate_query(query, execution)
        assert estimate.value == 0.0
        assert estimate.error_bound == 1.0

    def test_count_on_empty_scene_census_is_certain(self, rng):
        """A full census collapses the interval regardless of the known
        range (rho_N = 0): zero frames contain cars, with certainty."""
        from repro.estimators import estimate_query

        dataset = empty_dataset()
        query = AggregateQuery(dataset, EmptySceneDetector(), Aggregate.COUNT)
        processor = QueryProcessor()
        execution = processor.execute(query, InterventionPlan.from_knobs(f=1.0), rng)
        estimate = estimate_query(query, execution)
        assert estimate.value == 0.0
        assert estimate.error_bound == 0.0

    def test_single_frame_corpus(self, rng):
        dataset = empty_dataset(frames=1)
        query = AggregateQuery(dataset, EmptySceneDetector(), Aggregate.AVG)
        processor = QueryProcessor()
        execution = processor.execute(query, InterventionPlan.from_knobs(f=1.0), rng)
        assert execution.size == 1


class TestRemovalEdgeCases:
    def test_removal_of_everything_rejected(self, rng):
        """If the restricted class appears in every frame, removal leaves
        nothing to sample — a clear error, not a crash."""
        from repro.detection.zoo import DetectorSuite

        class AlwaysPresent:
            name = "always"
            target_class = ObjectClass.PERSON
            threshold = 0.7

            def run(self, dataset, resolution=None, quality=1.0):
                return DetectorOutputs(
                    counts=np.ones(dataset.frame_count, dtype=np.int64),
                    resolution=resolution or dataset.native_resolution,
                )

        dataset = empty_dataset()
        suite = DetectorSuite(
            person_detector=AlwaysPresent(), face_detector=AlwaysPresent()
        )
        plan = InterventionPlan.from_knobs(c=(ObjectClass.PERSON,))
        with pytest.raises(InterventionError):
            plan.draw(dataset, rng, suite)

    def test_tiny_eligible_universe_still_samples(self, detrac_dataset, suite, rng):
        """Person removal on UA-DETRAC leaves ~1/3 of frames; sampling at
        any fraction of that universe works."""
        plan = InterventionPlan.from_knobs(f=0.001, c=(ObjectClass.PERSON,))
        sample = plan.draw(detrac_dataset, rng, suite)
        assert sample.size >= 1


class TestAdversarialCorrectionSets:
    def test_tiny_correction_set_gives_weak_not_wrong_bound(
        self, processor, detrac_dataset, yolo_car, rng
    ):
        """A 5-frame correction set cannot repair much — the corrected
        bound must be huge (or infinite), never confidently wrong."""
        from repro.estimators import ProfileRepair

        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        degraded = processor.execute(
            query, InterventionPlan.from_knobs(f=0.3, p=128), rng
        )
        tiny = processor.true_values(query)[:5]
        result = ProfileRepair().repair_mean(
            degraded.values,
            degraded.universe_size,
            tiny,
            detrac_dataset.frame_count,
            0.05,
        )
        truth = processor.true_answer(query)
        true_error = abs(result.value - truth) / truth
        assert result.error_bound >= true_error

    def test_constant_correction_set_certifies_only_itself(self):
        """A constant correction set claims zero uncertainty about its own
        mean; the corrected bound then reduces to the pure drift term."""
        from repro.estimators import ProfileRepair
        from repro.estimators.smokescreen import SmokescreenMeanEstimator

        correction = np.full(50, 4.0)
        estimate = SmokescreenMeanEstimator().estimate(correction, 1000, 0.05)
        assert estimate.error_bound == 0.0
        bound = ProfileRepair.corrected_mean_bound(6.0, estimate)
        assert bound == pytest.approx(abs(6.0 - 4.0) / 4.0)


class TestExtremeDeltas:
    @pytest.mark.parametrize("delta", [0.001, 0.3])
    def test_bounds_defined_across_delta_range(
        self, processor, detrac_dataset, yolo_car, rng, delta
    ):
        from repro.estimators import estimate_query

        query = AggregateQuery(
            detrac_dataset, yolo_car, Aggregate.AVG, delta=delta
        )
        execution = processor.execute(query, InterventionPlan.from_knobs(f=0.1), rng)
        estimate = estimate_query(query, execution)
        assert 0.0 <= estimate.error_bound <= 1.0

    def test_rejects_delta_of_zero_or_one(self, detrac_dataset, yolo_car):
        with pytest.raises(ConfigurationError):
            AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG, delta=0.0)
        with pytest.raises(ConfigurationError):
            AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG, delta=1.0)


class TestNearCensusSampling:
    def test_n_equals_population_minus_one(self, processor, detrac_dataset, yolo_car):
        """The rho_n factor stays positive right up to the census."""
        from repro.estimators import SmokescreenMeanEstimator

        values = processor.true_values(
            AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        )
        estimate = SmokescreenMeanEstimator().estimate(
            values[:-1], values.size, 0.05
        )
        assert 0.0 < estimate.error_bound < 0.05

    def test_census_is_certain(self, processor, detrac_dataset, yolo_car):
        from repro.estimators import SmokescreenMeanEstimator

        values = processor.true_values(
            AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        )
        estimate = SmokescreenMeanEstimator().estimate(values, values.size, 0.05)
        assert estimate.error_bound == 0.0
        assert estimate.value == pytest.approx(values.mean())
