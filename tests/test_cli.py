"""Tests for the command-line interface (invoked in-process)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import experiment_names
from repro.experiments.workloads import model_for
from repro.system import telemetry


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "--dataset", "ua-detrac"])
        assert args.output == "hypercube.json"
        assert args.trials == 3
        assert not args.no_correction

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--dataset", "city-walk"])

    def test_every_subcommand_accepts_telemetry_flags(self):
        for argv in (
            ["profile", "--dataset", "ua-detrac"],
            ["choose", "--cube", "c.json", "--max-error", "0.5"],
            ["estimate", "--dataset", "ua-detrac"],
            ["experiment", "fig8"],
            ["chaos"],
            ["info", "--dataset", "ua-detrac"],
            ["report"],
        ):
            args = build_parser().parse_args(
                argv + ["--telemetry", "t.json", "--log-level", "info",
                        "--log-format", "json"]
            )
            assert args.telemetry == "t.json"
            assert args.log_level == "info"
            assert args.log_format == "json"

    def test_experiment_names_cover_every_figure(self):
        names = experiment_names()
        for figure in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
            assert figure in names
        assert "fig10-sampling" in names
        assert "fig10-resolution" in names
        assert "temporal" in names
        assert "var" in names


class TestInfo:
    def test_prints_calibration(self, capsys):
        code = main(["info", "--dataset", "ua-detrac", "--frames", "1500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ua-detrac" in out
        assert "mean cars/frame" in out
        assert "person frames" in out


class TestEstimate:
    def test_random_plan(self, capsys):
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--aggregate", "avg", "--fraction", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate:" in out
        assert "warning" not in out

    def test_non_random_plan_warns(self, capsys):
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction", "0.5", "--resolution", "256",
        ])
        assert code == 0
        assert "warning" in capsys.readouterr().out

    def test_max_aggregate_with_stein(self, capsys):
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--aggregate", "max", "--fraction", "0.2", "--method", "stein",
        ])
        assert code == 0
        assert "stein" not in capsys.readouterr().err

    def test_unknown_aggregate_exits(self):
        with pytest.raises(SystemExit):
            main([
                "estimate", "--dataset", "ua-detrac", "--frames", "1500",
                "--aggregate", "median",
            ])

    def test_unknown_method_reports_error(self, capsys):
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction", "0.1", "--method", "bootstrap",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestProfileAndChoose:
    def test_profile_writes_cube_and_choose_reads_it(self, tmp_path, capsys):
        cube_path = tmp_path / "cube.json"
        code = main([
            "profile", "--dataset", "ua-detrac", "--frames", "1500",
            "--output", str(cube_path), "--fraction-step", "0.25",
            "--resolution-count", "3", "--trials", "1",
        ])
        assert code == 0
        data = json.loads(cube_path.read_text())
        assert data["kind"] == "hypercube"

        capsys.readouterr()
        code = main([
            "choose", "--cube", str(cube_path), "--axis", "sampling",
            "--max-error", "0.9",
        ])
        assert code == 0
        assert "chosen setting" in capsys.readouterr().out

    def test_choose_infeasible_target_reports_error(self, tmp_path, capsys):
        cube_path = tmp_path / "cube.json"
        main([
            "profile", "--dataset", "ua-detrac", "--frames", "1500",
            "--output", str(cube_path), "--fraction-step", "0.5",
            "--resolution-count", "2", "--trials", "1", "--no-correction",
        ])
        capsys.readouterr()
        # No profiled fraction is at or below 0.1, so the degradation goal
        # admits nothing.
        code = main([
            "choose", "--cube", str(cube_path), "--axis", "sampling",
            "--max-error", "0.9", "--max-fraction", "0.1",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTelemetrySnapshot:
    def test_warm_profile_reports_all_hits_and_no_degradation(
        self, tmp_path, capsys
    ):
        """Acceptance criterion: a warm-cache ``profile --telemetry`` run
        reports cache hits == detector consultations and zero
        ``cache.corrupt``/``executor.fallback`` events."""
        cache_dir = tmp_path / "cache"
        base = [
            "profile", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction-step", "0.25", "--resolution-count", "3",
            "--trials", "1", "--cache-dir", str(cache_dir),
        ]
        # Cold run populates the persistent cache.
        assert main(base + ["--output", str(tmp_path / "cold.json")]) == 0
        # Empty the shared detector's in-process cache so the warm run
        # behaves like a fresh process: every output must come from disk.
        model_for("ua-detrac").clear_cache()
        snapshot_path = tmp_path / "telemetry.json"
        capsys.readouterr()
        code = main(base + [
            "--output", str(tmp_path / "warm.json"),
            "--telemetry", str(snapshot_path),
        ])
        assert code == 0
        assert not telemetry.enabled()  # main() restored the no-op registry
        assert "telemetry snapshot written" in capsys.readouterr().out
        snapshot = json.loads(snapshot_path.read_text())
        counters = snapshot["counters"]
        assert counters["cache.hit"] > 0
        assert counters["cache.hit"] == counters["detector.consultations"]
        assert "cache.corrupt" not in counters
        assert "executor.fallback" not in counters
        assert snapshot["spans"], "profile generation records spans"
        warm = json.loads((tmp_path / "warm.json").read_text())
        cold = json.loads((tmp_path / "cold.json").read_text())
        assert warm["bounds"] == cold["bounds"]  # telemetry never read

    def test_cache_dir_does_not_leak_past_main(self, tmp_path):
        """An in-process ``profile --cache-dir`` run must not leave the
        process-global detector cache active: later detector work in the
        same process (other tests, notebooks) would silently read from and
        write to a directory it never asked for."""
        from repro.detection import diskcache

        assert diskcache.active_cache() is None
        code = main([
            "profile", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction-step", "0.5", "--resolution-count", "2",
            "--trials", "1", "--cache-dir", str(tmp_path / "cache"),
            "--output", str(tmp_path / "cube.json"),
        ])
        assert code == 0
        assert diskcache.active_cache() is None

    def test_snapshot_written_even_when_command_fails(self, tmp_path, capsys):
        snapshot_path = tmp_path / "telemetry.json"
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction", "0.1", "--method", "bootstrap",
            "--telemetry", str(snapshot_path),
        ])
        assert code == 1
        assert snapshot_path.exists()
        assert not telemetry.enabled()


class TestExperimentCommand:
    def test_fig8_runs_fast(self, capsys):
        code = main(["experiment", "fig8", "--frames", "1500"])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_fig4_with_options(self, capsys):
        code = main([
            "experiment", "fig4", "--dataset", "ua-detrac",
            "--aggregate", "max", "--frames", "1500", "--trials", "3",
        ])
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_ablation_reuse(self, capsys):
        code = main(["experiment", "ablation-reuse", "--frames", "1500"])
        assert code == 0
        assert "reuse" in capsys.readouterr().out


class TestChaos:
    def test_sweep_emits_outage_rate_to_bound_width_table(self, capsys):
        code = main([
            "chaos", "--frames", "1000", "--trials", "3",
            "--rates", "0,0.3", "--cameras", "3", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "outage rate" in out
        assert "mean bound width" in out
        assert "mean frame coverage" in out

    def test_registered_as_experiment(self):
        assert "chaos" in experiment_names()

    def test_rejects_bad_rates(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--rates", "0,banana"])
        with pytest.raises(SystemExit):
            main(["chaos", "--rates", ","])
