"""Tests for the command-line interface (invoked in-process)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import experiment_names
from repro.experiments.workloads import model_for
from repro.system import observe, telemetry


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "--dataset", "ua-detrac"])
        assert args.output == "hypercube.json"
        assert args.trials == 3
        assert not args.no_correction

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--dataset", "city-walk"])

    def test_every_subcommand_accepts_telemetry_flags(self):
        for argv in (
            ["profile", "--dataset", "ua-detrac"],
            ["choose", "--cube", "c.json", "--max-error", "0.5"],
            ["estimate", "--dataset", "ua-detrac"],
            ["experiment", "fig8"],
            ["chaos"],
            ["info", "--dataset", "ua-detrac"],
            ["report"],
        ):
            args = build_parser().parse_args(
                argv + ["--telemetry", "t.json", "--log-level", "info",
                        "--log-format", "json", "--trace", "t.trace.json",
                        "--prometheus", "t.prom",
                        "--run-ledger", "runs.jsonl"]
            )
            assert args.telemetry == "t.json"
            assert args.log_level == "info"
            assert args.log_format == "json"
            assert args.trace == "t.trace.json"
            assert args.prometheus == "t.prom"
            assert args.run_ledger == "runs.jsonl"

    def test_experiment_names_cover_every_figure(self):
        names = experiment_names()
        for figure in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"):
            assert figure in names
        assert "fig10-sampling" in names
        assert "fig10-resolution" in names
        assert "temporal" in names
        assert "var" in names


class TestInfo:
    def test_prints_calibration(self, capsys):
        code = main(["info", "--dataset", "ua-detrac", "--frames", "1500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ua-detrac" in out
        assert "mean cars/frame" in out
        assert "person frames" in out


class TestEstimate:
    def test_random_plan(self, capsys):
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--aggregate", "avg", "--fraction", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimate:" in out
        assert "warning" not in out

    def test_non_random_plan_warns(self, capsys):
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction", "0.5", "--resolution", "256",
        ])
        assert code == 0
        assert "warning" in capsys.readouterr().out

    def test_max_aggregate_with_stein(self, capsys):
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--aggregate", "max", "--fraction", "0.2", "--method", "stein",
        ])
        assert code == 0
        assert "stein" not in capsys.readouterr().err

    def test_unknown_aggregate_exits(self):
        with pytest.raises(SystemExit):
            main([
                "estimate", "--dataset", "ua-detrac", "--frames", "1500",
                "--aggregate", "median",
            ])

    def test_unknown_method_reports_error(self, capsys):
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction", "0.1", "--method", "bootstrap",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestProfileAndChoose:
    def test_profile_writes_cube_and_choose_reads_it(self, tmp_path, capsys):
        cube_path = tmp_path / "cube.json"
        code = main([
            "profile", "--dataset", "ua-detrac", "--frames", "1500",
            "--output", str(cube_path), "--fraction-step", "0.25",
            "--resolution-count", "3", "--trials", "1",
        ])
        assert code == 0
        data = json.loads(cube_path.read_text())
        assert data["kind"] == "hypercube"

        capsys.readouterr()
        code = main([
            "choose", "--cube", str(cube_path), "--axis", "sampling",
            "--max-error", "0.9",
        ])
        assert code == 0
        assert "chosen setting" in capsys.readouterr().out

    def test_choose_infeasible_target_reports_error(self, tmp_path, capsys):
        cube_path = tmp_path / "cube.json"
        main([
            "profile", "--dataset", "ua-detrac", "--frames", "1500",
            "--output", str(cube_path), "--fraction-step", "0.5",
            "--resolution-count", "2", "--trials", "1", "--no-correction",
        ])
        capsys.readouterr()
        # No profiled fraction is at or below 0.1, so the degradation goal
        # admits nothing.
        code = main([
            "choose", "--cube", str(cube_path), "--axis", "sampling",
            "--max-error", "0.9", "--max-fraction", "0.1",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestTelemetrySnapshot:
    def test_warm_profile_reports_all_hits_and_no_degradation(
        self, tmp_path, capsys
    ):
        """Acceptance criterion: a warm-cache ``profile --telemetry`` run
        reports cache hits == detector consultations and zero
        ``cache.corrupt``/``executor.fallback`` events."""
        cache_dir = tmp_path / "cache"
        base = [
            "profile", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction-step", "0.25", "--resolution-count", "3",
            "--trials", "1", "--cache-dir", str(cache_dir),
        ]
        # Cold run populates the persistent cache.
        assert main(base + ["--output", str(tmp_path / "cold.json")]) == 0
        # Empty the shared detector's in-process cache so the warm run
        # behaves like a fresh process: every output must come from disk.
        model_for("ua-detrac").clear_cache()
        snapshot_path = tmp_path / "telemetry.json"
        capsys.readouterr()
        code = main(base + [
            "--output", str(tmp_path / "warm.json"),
            "--telemetry", str(snapshot_path),
        ])
        assert code == 0
        assert not telemetry.enabled()  # main() restored the no-op registry
        assert "telemetry snapshot written" in capsys.readouterr().out
        snapshot = json.loads(snapshot_path.read_text())
        counters = snapshot["counters"]
        assert counters["cache.hit"] > 0
        assert counters["cache.hit"] == counters["detector.consultations"]
        assert "cache.corrupt" not in counters
        assert "executor.fallback" not in counters
        assert snapshot["spans"], "profile generation records spans"
        warm = json.loads((tmp_path / "warm.json").read_text())
        cold = json.loads((tmp_path / "cold.json").read_text())
        assert warm["bounds"] == cold["bounds"]  # telemetry never read

    def test_cache_dir_does_not_leak_past_main(self, tmp_path):
        """An in-process ``profile --cache-dir`` run must not leave the
        process-global detector cache active: later detector work in the
        same process (other tests, notebooks) would silently read from and
        write to a directory it never asked for."""
        from repro.detection import diskcache

        assert diskcache.active_cache() is None
        code = main([
            "profile", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction-step", "0.5", "--resolution-count", "2",
            "--trials", "1", "--cache-dir", str(tmp_path / "cache"),
            "--output", str(tmp_path / "cube.json"),
        ])
        assert code == 0
        assert diskcache.active_cache() is None

    def test_snapshot_written_even_when_command_fails(self, tmp_path, capsys):
        snapshot_path = tmp_path / "telemetry.json"
        code = main([
            "estimate", "--dataset", "ua-detrac", "--frames", "1500",
            "--fraction", "0.1", "--method", "bootstrap",
            "--telemetry", str(snapshot_path),
        ])
        assert code == 1
        assert snapshot_path.exists()
        assert not telemetry.enabled()


# A quick profile invocation (8 cells, 1 trial) shared by the exporter
# and runs-ledger tests below.
FAST_PROFILE = [
    "profile", "--dataset", "ua-detrac", "--frames", "1500",
    "--fraction-step", "0.5", "--resolution-count", "2", "--trials", "1",
]


class TestExporterFlags:
    def test_trace_and_prometheus_files_written(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        prom_path = tmp_path / "metrics.prom"
        snapshot_path = tmp_path / "telemetry.json"
        # Other tests may have warmed the shared model's in-process cache;
        # empty it so this run actually invokes the detector.
        model_for("ua-detrac").clear_cache()
        code = main(FAST_PROFILE + [
            "--output", str(tmp_path / "cube.json"),
            "--telemetry", str(snapshot_path),
            "--trace", str(trace_path),
            "--prometheus", str(prom_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chrome trace written to" in out
        assert "prometheus metrics written to" in out

        # Acceptance: the trace captures the layered span structure
        # (cli -> profiler -> sweep -> gather), not a flat list.
        snapshot = telemetry.MetricsSnapshot.from_dict(
            json.loads(snapshot_path.read_text())
        )
        assert observe.trace_depth(snapshot) >= 3
        payload = json.loads(trace_path.read_text())
        names = {
            event["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        }
        assert {"cli.profile", "profiler.sweep", "profiler.gather"} <= names

        prom = prom_path.read_text()
        assert "# TYPE repro_profiler_frames_invoked_total counter" in prom
        assert "# TYPE repro_span_cli_profile histogram" in prom
        assert 'le="+Inf"' in prom

    def test_trace_alone_enables_collection(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main([
            "info", "--dataset", "ua-detrac", "--frames", "1500",
            "--trace", str(trace_path),
        ])
        assert code == 0
        assert not telemetry.enabled()
        payload = json.loads(trace_path.read_text())
        assert any(
            event["name"] == "cli.info"
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        )


class TestSnapshotConcurrency:
    def test_write_leaves_no_temporary_behind(self, tmp_path, capsys):
        snapshot_path = tmp_path / "telemetry.json"
        code = main([
            "info", "--dataset", "ua-detrac", "--frames", "1500",
            "--telemetry", str(snapshot_path),
        ])
        assert code == 0
        assert snapshot_path.exists()
        assert list(tmp_path.glob(".telemetry.json.*.tmp")) == []

    def test_peer_marker_diverts_instead_of_clobbering(self, tmp_path, capsys):
        """S2: if another run's temporary marker is visible next to the
        destination, this run writes its snapshot to a run-id-suffixed
        path instead of racing the peer for the shared one."""
        snapshot_path = tmp_path / "telemetry.json"
        snapshot_path.write_text('{"sentinel": true}\n')
        marker = tmp_path / ".telemetry.json.deadbeef.tmp"
        marker.write_text("{}")
        code = main([
            "info", "--dataset", "ua-detrac", "--frames", "1500",
            "--telemetry", str(snapshot_path),
        ])
        assert code == 0
        # The pre-existing destination was not overwritten...
        assert json.loads(snapshot_path.read_text()) == {"sentinel": True}
        # ...the snapshot landed on a diverted, run-id-suffixed path...
        diverted = list(tmp_path.glob("telemetry.*.json"))
        assert len(diverted) == 1
        assert "counters" in json.loads(diverted[0].read_text())
        out = capsys.readouterr().out
        assert f"telemetry snapshot written to {diverted[0]}" in out
        # ...and the peer's marker was left alone.
        assert marker.exists()


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8177
        assert args.datasets == "ua-detrac"
        assert args.tick_ms == 5.0
        assert args.max_batch == 64
        assert args.max_queue == 256
        assert args.tenant_rate == 50.0
        assert args.tenant_burst == 100
        assert args.handler.__name__ == "cmd_serve"

    def test_serve_accepts_tuning_flags(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--datasets", "ua-detrac,night-street",
            "--frames", "2000", "--workers", "auto", "--tick-ms", "2",
            "--max-batch", "16", "--tenant-rate", "5", "--tenant-burst", "3",
            "--cache-dir", "/tmp/cache", "--run-ledger", "runs.jsonl",
        ])
        assert args.port == 0
        assert args.datasets == "ua-detrac,night-street"
        assert args.workers == "auto"
        assert args.tick_ms == 2.0
        assert args.tenant_burst == 3

    def test_call_defaults_and_endpoints(self):
        args = build_parser().parse_args(["call", "estimate"])
        assert args.endpoint == "estimate"
        assert args.port == 8177
        assert args.tenant == "cli"
        assert args.handler.__name__ == "cmd_call"
        for endpoint in ("bound", "profile", "choose", "stats",
                         "healthz", "metrics", "shutdown"):
            assert build_parser().parse_args(
                ["call", endpoint]
            ).endpoint == endpoint
        with pytest.raises(SystemExit):
            build_parser().parse_args(["call", "teapot"])

    def test_pool_defaults(self):
        args = build_parser().parse_args(["pool"])
        assert args.host is None
        assert args.port == 8177
        assert args.handler.__name__ == "cmd_pool"

    def test_runs_check_accepts_serve_thresholds(self):
        args = build_parser().parse_args([
            "runs", "check", "--baseline", "b.json",
            "--min-serve-speedup", "5", "--min-serve-coalescing", "2",
        ])
        assert args.min_serve_speedup == 5.0
        assert args.min_serve_coalescing == 2.0

    def test_runs_check_accepts_stream_fps_floor(self):
        args = build_parser().parse_args([
            "runs", "check", "--baseline", "b.json",
            "--min-stream-fps", "5000",
        ])
        assert args.min_stream_fps == 5000.0


class TestStreamCommand:
    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.dataset == "ua-detrac"
        assert args.frames == 2000
        assert args.scenario is None
        assert args.onset == 0.5
        assert args.window == 480
        assert args.estimator == "windowed"
        assert args.decay == 0.999
        assert args.fps == 0.0
        assert args.handler.__name__ == "cmd_stream"

    def test_stream_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--scenario", "teapot"])

    def test_stream_replay_records_facts_and_prints_table(
        self, tmp_path, capsys
    ):
        ledger = tmp_path / "stream.jsonl"
        code = main([
            "stream", "--scenario", "weather", "--severity", "0.95",
            "--frames", "2000", "--run-ledger", str(ledger),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TRIPPED" in out
        assert "repaired bound" in out
        record = json.loads(ledger.read_text().splitlines()[-1])
        facts = record["facts"]["stream"]
        assert facts["tripped"] is True
        assert facts["repairs"] == 1
        assert facts["frames_per_sec"] > 0

    def test_clean_stream_replay_stays_quiet(self, capsys):
        code = main(["stream", "--frames", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TRIPPED" not in out


class TestPoolCommand:
    def test_local_pool_inspection_without_a_pool(self, capsys):
        from repro.system.executor import shutdown_pool

        shutdown_pool()
        assert main(["pool"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["pool"] is None
        assert isinstance(payload["generation"], int)
        assert "no persistent pool is warm" in captured.err

    def test_local_pool_inspection_with_a_warm_pool(self, capsys):
        from repro.system.executor import (
            _PoolKey,
            _ensure_pool,
            shutdown_pool,
        )

        _ensure_pool(
            _PoolKey(
                workers=2, cache_dir=None, cache_limit=None,
                telemetry_on=False,
            )
        )
        try:
            assert main(["pool"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["pool"]["workers"] == 2
            assert payload["generation"] >= 1
        finally:
            shutdown_pool()


class TestRunsCLI:
    def _record_profile_run(self, tmp_path, capsys):
        ledger = tmp_path / "runs.jsonl"
        # Start from a cold in-process model cache so the recorded run has
        # a non-zero invocation count to gate on.
        model_for("ua-detrac").clear_cache()
        code = main(FAST_PROFILE + [
            "--output", str(tmp_path / "cube.json"),
            "--run-ledger", str(ledger),
        ])
        assert code == 0
        capsys.readouterr()
        return ledger

    def test_list_shows_recorded_run(self, tmp_path, capsys):
        ledger = self._record_profile_run(tmp_path, capsys)
        assert main(["runs", "list", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "profile" in out
        assert "ok" in out

    def test_show_prints_full_record(self, tmp_path, capsys):
        ledger = self._record_profile_run(tmp_path, capsys)
        assert main(["runs", "show", "--ledger", str(ledger)]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["command"] == "profile"
        assert record["status"] == "ok"
        assert record["dataset"] == "ua-detrac"
        assert record["metrics"]["model_invocations"] > 0
        assert record["bounds"]["max_width"] is not None
        assert record["wall_seconds"] > 0

    def test_pin_diff_check_roundtrip_passes(self, tmp_path, capsys):
        ledger = self._record_profile_run(tmp_path, capsys)
        baseline = tmp_path / "baseline.json"
        assert main([
            "runs", "pin", "--ledger", str(ledger),
            "--output", str(baseline),
        ]) == 0
        assert "baseline pinned" in capsys.readouterr().out

        assert main([
            "runs", "diff", "--ledger", str(ledger),
            "--baseline", str(baseline),
        ]) == 0
        out = capsys.readouterr().out
        assert "wall_seconds" in out
        assert "model_invocations" in out

        # A run checked against its own pin passes the gate.
        assert main([
            "runs", "check", "--ledger", str(ledger),
            "--baseline", str(baseline),
        ]) == 0
        assert "regression gate: PASS" in capsys.readouterr().out

    def test_check_fails_on_injected_wall_breach(self, tmp_path, capsys):
        """Acceptance: an injected 10x wall-time breach makes
        ``repro runs check`` exit non-zero."""
        ledger = self._record_profile_run(tmp_path, capsys)
        baseline_path = tmp_path / "baseline.json"
        assert main([
            "runs", "pin", "--ledger", str(ledger),
            "--output", str(baseline_path),
        ]) == 0
        baseline = json.loads(baseline_path.read_text())
        baseline["wall_seconds"] = baseline["wall_seconds"] / 100.0
        baseline_path.write_text(json.dumps(baseline))
        capsys.readouterr()
        code = main([
            "runs", "check", "--ledger", str(ledger),
            "--baseline", str(baseline_path),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "regression gate: FAIL" in out
        assert "wall_seconds" in out

    def test_check_fails_on_extra_invocations(self, tmp_path, capsys):
        ledger = self._record_profile_run(tmp_path, capsys)
        baseline_path = tmp_path / "baseline.json"
        assert main([
            "runs", "pin", "--ledger", str(ledger),
            "--output", str(baseline_path),
        ]) == 0
        baseline = json.loads(baseline_path.read_text())
        baseline["metrics"]["model_invocations"] -= 1
        baseline_path.write_text(json.dumps(baseline))
        capsys.readouterr()
        code = main([
            "runs", "check", "--ledger", str(ledger),
            "--baseline", str(baseline_path),
        ])
        assert code == 1
        assert "model_invocations" in capsys.readouterr().out

    def test_command_filter_and_limit(self, tmp_path, capsys):
        ledger = self._record_profile_run(tmp_path, capsys)
        assert main([
            "info", "--dataset", "ua-detrac", "--frames", "1500",
            "--run-ledger", str(ledger),
        ]) == 0
        capsys.readouterr()

        assert main([
            "runs", "show", "--ledger", str(ledger), "--command", "profile",
        ]) == 0
        assert json.loads(capsys.readouterr().out)["command"] == "profile"

        assert main([
            "runs", "list", "--ledger", str(ledger), "--limit", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "info" in out
        assert "profile" not in out

    def test_missing_ledger_reports_error(self, tmp_path, capsys):
        code = main(["runs", "list", "--ledger", str(tmp_path / "no.jsonl")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExperimentCommand:
    def test_fig8_runs_fast(self, capsys):
        code = main(["experiment", "fig8", "--frames", "1500"])
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_fig4_with_options(self, capsys):
        code = main([
            "experiment", "fig4", "--dataset", "ua-detrac",
            "--aggregate", "max", "--frames", "1500", "--trials", "3",
        ])
        assert code == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_ablation_reuse(self, capsys):
        code = main(["experiment", "ablation-reuse", "--frames", "1500"])
        assert code == 0
        assert "reuse" in capsys.readouterr().out


class TestChaos:
    def test_sweep_emits_outage_rate_to_bound_width_table(self, capsys):
        code = main([
            "chaos", "--frames", "1000", "--trials", "3",
            "--rates", "0,0.3", "--cameras", "3", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "outage rate" in out
        assert "mean bound width" in out
        assert "mean frame coverage" in out

    def test_registered_as_experiment(self):
        assert "chaos" in experiment_names()

    def test_rejects_bad_rates(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--rates", "0,banana"])
        with pytest.raises(SystemExit):
            main(["chaos", "--rates", ","])

    def test_scenario_mode_emits_sentinel_table(self, capsys):
        code = main([
            "chaos", "--scenario", "occlusion", "--frames", "1000",
            "--trials", "2", "--cameras", "3", "--severities", "0.7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scenario chaos: occlusion" in out
        assert "sentinel recall" in out
        assert "localization accuracy" in out
        assert "sentinel verdict: detected" in out

    def test_scenario_mode_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--scenario", "volcano"])

    def test_scenario_ledger_records_verdict(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        code = main([
            "chaos", "--scenario", "compression-attack", "--frames", "1000",
            "--trials", "2", "--cameras", "3", "--severities", "0.3",
            "--run-ledger", str(ledger),
        ])
        assert code == 0
        from repro.system.observe import latest_run

        record = latest_run(ledger)
        assert record["facts"]["scenario"] == "compression-attack"
        assert record["facts"]["sentinel"]["verdict"] == "detected"
        assert record["facts"]["sentinel"]["fpr"] == 0.0
        events = [e for e in record["events"] if e["event"] == "chaos.scenario"]
        assert events and events[0]["scenario"] == "compression-attack"
