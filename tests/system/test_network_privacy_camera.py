"""Tests for transmission, privacy accounting, camera, and administrator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.interventions import InterventionPlan
from repro.system.camera import Camera
from repro.system.network import TransmissionModel
from repro.system.privacy import privacy_report
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


class TestTransmissionModel:
    def test_frame_bytes_proportional_to_pixels(self):
        model = TransmissionModel(bytes_per_pixel=0.1)
        assert model.frame_bytes(Resolution(100)) == pytest.approx(1000.0)

    def test_plan_bytes_scale_with_fraction_and_resolution(self, detrac_dataset):
        model = TransmissionModel()
        full = model.plan_bytes(detrac_dataset, InterventionPlan())
        sampled = model.plan_bytes(detrac_dataset, InterventionPlan.from_knobs(f=0.1))
        shrunk = model.plan_bytes(detrac_dataset, InterventionPlan.from_knobs(p=304))
        assert sampled == pytest.approx(full * 0.1)
        assert shrunk == pytest.approx(full * 0.25)

    def test_savings_ratio(self, detrac_dataset):
        model = TransmissionModel()
        plan = InterventionPlan.from_knobs(f=0.1, p=304)
        assert model.savings_ratio(detrac_dataset, plan) == pytest.approx(0.975)

    def test_energy_proportional_to_bytes(self, detrac_dataset):
        model = TransmissionModel(joules_per_megabyte=4.0)
        plan = InterventionPlan.from_knobs(f=0.5)
        energy = model.plan_energy_joules(detrac_dataset, plan)
        assert energy == pytest.approx(model.plan_bytes(detrac_dataset, plan) / 1e6 * 4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TransmissionModel(bytes_per_pixel=0.0)
        with pytest.raises(ConfigurationError):
            TransmissionModel().frame_bytes(Resolution(100), quality=0.0)


class TestPrivacyReport:
    def test_no_degradation_full_exposure(self, detrac_dataset, suite):
        report = privacy_report(detrac_dataset, suite, InterventionPlan())
        assert report.person_exposure_ratio == pytest.approx(1.0)
        assert report.face_exposure_ratio == pytest.approx(1.0)

    def test_removal_eliminates_person_exposure(self, detrac_dataset, suite):
        plan = InterventionPlan.from_knobs(c=(ObjectClass.PERSON,))
        report = privacy_report(detrac_dataset, suite, plan)
        assert report.person_frames_exposed == 0.0

    def test_sampling_scales_exposure(self, detrac_dataset, suite):
        plan = InterventionPlan.from_knobs(f=0.1)
        report = privacy_report(detrac_dataset, suite, plan)
        assert report.person_exposure_ratio == pytest.approx(0.1)

    def test_resolution_protects_faces(self, detrac_dataset, suite):
        """Downscaling makes faces unrecognisable: the GDPR-style goal."""
        plan = InterventionPlan.from_knobs(p=128)
        report = privacy_report(detrac_dataset, suite, plan)
        assert report.face_exposure_ratio < 0.05

    def test_face_removal_does_not_remove_persons(self, detrac_dataset, suite):
        plan = InterventionPlan.from_knobs(c=(ObjectClass.FACE,))
        report = privacy_report(detrac_dataset, suite, plan)
        assert report.face_frames_exposed == 0.0
        assert report.person_frames_exposed > 0.0


class TestCamera:
    def test_configure_and_transmit(self, detrac_dataset, suite, rng):
        camera = Camera("cam", detrac_dataset, suite)
        camera.configure(fraction=0.1, resolution=256)
        sample = camera.transmit(rng)
        assert sample.size == round(detrac_dataset.frame_count * 0.1)
        assert camera.bytes_transmitted > 0

    def test_transmission_cost_shrinks_with_degradation(self, detrac_dataset, suite):
        camera = Camera("cam", detrac_dataset, suite)
        full_cost = camera.transmission_cost()
        camera.configure(fraction=0.1, resolution=128)
        assert camera.transmission_cost() < 0.05 * full_cost

    def test_apply_plan_validates_resolution(self, detrac_dataset, suite):
        from repro.errors import InterventionError

        camera = Camera("cam", detrac_dataset, suite)
        with pytest.raises(InterventionError):
            camera.apply_plan(InterventionPlan.from_knobs(p=2048))

    def test_repr_mentions_plan(self, detrac_dataset, suite):
        camera = Camera("cam", detrac_dataset, suite)
        camera.configure(fraction=0.5)
        assert "sampling" in repr(camera)


class TestAdministrator:
    def test_full_deploy_flow(self, suite):
        from repro.core.smokescreen import Smokescreen
        from repro.core.tradeoff import PublicPreferences
        from repro.detection import yolo_v4_like
        from repro.query import Aggregate
        from repro.system import Administrator
        from repro.video import ua_detrac

        dataset = ua_detrac(frame_count=1200)
        system = Smokescreen(dataset, yolo_v4_like(), trials=2)
        query = system.query(Aggregate.AVG)
        profile = system.profiler.profile_sampling(
            query, (0.05, 0.1, 0.3, 0.6), np.random.default_rng(0)
        )
        administrator = Administrator(
            name="Harry", preferences=PublicPreferences(max_error=0.5)
        )
        camera = Camera("road-cam", dataset, suite)
        choice, estimate = administrator.deploy(system, camera, query, profile)
        assert camera.plan is choice.point.plan
        assert estimate.error_bound <= 0.5 + 0.3  # fresh draw may differ from profile
