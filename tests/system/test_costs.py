"""Tests for invocation accounting and the cost model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.system.costs import CostModel, InvocationLedger


class TestInvocationLedger:
    def test_accumulates_per_resolution(self):
        ledger = InvocationLedger()
        ledger.record(608, 100)
        ledger.record(608, 50)
        ledger.record(256, 30)
        assert ledger.total == 180
        assert ledger.by_resolution() == {608: 150, 256: 30}

    def test_merge(self):
        a = InvocationLedger()
        a.record(608, 10)
        b = InvocationLedger()
        b.record(608, 5)
        b.record(128, 7)
        a.merge(b)
        assert a.by_resolution() == {608: 15, 128: 7}

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            InvocationLedger().record(608, -1)

    def test_by_resolution_returns_copy(self):
        ledger = InvocationLedger()
        ledger.record(608, 10)
        snapshot = ledger.by_resolution()
        snapshot[608] = 0
        assert ledger.total == 10


class TestCostModel:
    def test_per_frame_time_scales_with_pixels(self):
        model = CostModel(seconds_per_frame_at_native=0.030, native_side=608)
        native = model.seconds_per_frame(608)
        half = model.seconds_per_frame(304)
        assert native == pytest.approx(0.030)
        assert half < native
        assert half > model.fixed_overhead_seconds

    def test_paper_timing_reproduced(self):
        """§5.3.1: 6,084 YOLOv4 invocations take about three minutes.

        4% of 15,210 frames under each of 10 resolutions is 6,084
        invocations... per-resolution; the paper's phrasing prices the
        full sweep at ~3 minutes, i.e. ~30 ms/frame at native.
        """
        model = CostModel(seconds_per_frame_at_native=0.030, native_side=608)
        ledger = InvocationLedger()
        ledger.record(608, 6084)
        seconds = model.model_seconds(ledger)
        assert 150 <= seconds <= 210

    def test_profile_seconds_adds_estimation(self):
        model = CostModel(estimation_seconds_per_setting=0.02)
        ledger = InvocationLedger()
        ledger.record(608, 100)
        with_settings = model.profile_seconds(ledger, settings=10)
        without = model.profile_seconds(ledger, settings=0)
        assert with_settings == pytest.approx(without + 0.2)

    def test_estimation_negligible_vs_model_time(self):
        """The paper's conclusion: model time dominates."""
        model = CostModel()
        ledger = InvocationLedger()
        ledger.record(608, 6084)
        model_time = model.model_seconds(ledger)
        estimation_time = 30 * model.estimation_seconds_per_setting
        assert estimation_time < 0.01 * model_time

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CostModel(seconds_per_frame_at_native=0.0)
        with pytest.raises(ConfigurationError):
            CostModel(native_side=0)
        with pytest.raises(ConfigurationError):
            CostModel().seconds_per_frame(0)
        with pytest.raises(ConfigurationError):
            CostModel().profile_seconds(InvocationLedger(), settings=-1)
