"""Tests for invocation accounting and the cost model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.system.costs import CostModel, DispatchCostModel, InvocationLedger


class TestInvocationLedger:
    def test_accumulates_per_resolution(self):
        ledger = InvocationLedger()
        ledger.record(608, 100)
        ledger.record(608, 50)
        ledger.record(256, 30)
        assert ledger.total == 180
        assert ledger.by_resolution() == {608: 150, 256: 30}

    def test_merge(self):
        a = InvocationLedger()
        a.record(608, 10)
        b = InvocationLedger()
        b.record(608, 5)
        b.record(128, 7)
        a.merge(b)
        assert a.by_resolution() == {608: 15, 128: 7}

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            InvocationLedger().record(608, -1)

    def test_by_resolution_returns_copy(self):
        ledger = InvocationLedger()
        ledger.record(608, 10)
        snapshot = ledger.by_resolution()
        snapshot[608] = 0
        assert ledger.total == 10


class TestCostModel:
    def test_per_frame_time_scales_with_pixels(self):
        model = CostModel(seconds_per_frame_at_native=0.030, native_side=608)
        native = model.seconds_per_frame(608)
        half = model.seconds_per_frame(304)
        assert native == pytest.approx(0.030)
        assert half < native
        assert half > model.fixed_overhead_seconds

    def test_paper_timing_reproduced(self):
        """§5.3.1: 6,084 YOLOv4 invocations take about three minutes.

        4% of 15,210 frames under each of 10 resolutions is 6,084
        invocations... per-resolution; the paper's phrasing prices the
        full sweep at ~3 minutes, i.e. ~30 ms/frame at native.
        """
        model = CostModel(seconds_per_frame_at_native=0.030, native_side=608)
        ledger = InvocationLedger()
        ledger.record(608, 6084)
        seconds = model.model_seconds(ledger)
        assert 150 <= seconds <= 210

    def test_profile_seconds_adds_estimation(self):
        model = CostModel(estimation_seconds_per_setting=0.02)
        ledger = InvocationLedger()
        ledger.record(608, 100)
        with_settings = model.profile_seconds(ledger, settings=10)
        without = model.profile_seconds(ledger, settings=0)
        assert with_settings == pytest.approx(without + 0.2)

    def test_estimation_negligible_vs_model_time(self):
        """The paper's conclusion: model time dominates."""
        model = CostModel()
        ledger = InvocationLedger()
        ledger.record(608, 6084)
        model_time = model.model_seconds(ledger)
        estimation_time = 30 * model.estimation_seconds_per_setting
        assert estimation_time < 0.01 * model_time

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CostModel(seconds_per_frame_at_native=0.0)
        with pytest.raises(ConfigurationError):
            CostModel(native_side=0)
        with pytest.raises(ConfigurationError):
            CostModel().seconds_per_frame(0)
        with pytest.raises(ConfigurationError):
            CostModel().profile_seconds(InvocationLedger(), settings=-1)


class TestDispatchCostModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DispatchCostModel(spawn_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            DispatchCostModel(dispatch_seconds_per_task=-1e-6)
        with pytest.raises(ConfigurationError):
            DispatchCostModel(overhead_fraction=0.0)
        with pytest.raises(ConfigurationError):
            DispatchCostModel(overhead_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DispatchCostModel(min_chunks_per_worker=0)

    def test_chunk_size_amortizes_dispatch_overhead(self):
        model = DispatchCostModel(
            dispatch_seconds_per_task=0.01, overhead_fraction=0.1
        )
        # Cheap units need big chunks: 0.01s dispatch must be <= 10% of
        # the chunk's work, so 1ms units need chunks of >= 100 units.
        assert model.chunk_size(10_000, unit_seconds=0.001, workers=4) == 100
        # Expensive units dispatch singly.
        assert model.chunk_size(10_000, unit_seconds=1.0, workers=4) == 1

    def test_chunk_size_keeps_chunks_per_worker(self):
        model = DispatchCostModel(
            dispatch_seconds_per_task=0.01,
            overhead_fraction=0.1,
            min_chunks_per_worker=2,
        )
        # 16 units over 4 workers: the balance cap (2 chunks per worker)
        # wins over the amortization target of 100.
        assert model.chunk_size(16, unit_seconds=0.001, workers=4) == 2

    def test_chunk_size_degenerate_inputs(self):
        model = DispatchCostModel()
        assert model.chunk_size(0, unit_seconds=0.1, workers=4) == 1
        assert model.chunk_size(5, unit_seconds=0.0, workers=4) >= 1
        assert model.chunk_size(5, unit_seconds=0.1, workers=0) >= 1

    def test_parallel_pays_needs_enough_work(self):
        model = DispatchCostModel(
            spawn_seconds=0.2, dispatch_seconds_per_task=0.001
        )
        # Two tiny units never justify a pool, warm or cold.
        assert not model.parallel_pays(
            2, unit_seconds=1e-5, workers=4, pool_warm=True
        )
        # Heavy units across many workers always do once the pool is warm.
        assert model.parallel_pays(
            64, unit_seconds=0.5, workers=4, pool_warm=True
        )

    def test_warm_pool_lowers_the_bar(self):
        model = DispatchCostModel(
            spawn_seconds=1.0, dispatch_seconds_per_task=0.0001
        )
        # 8 units of 100ms: saves ~600ms of wall, beats dispatch but not
        # a 1s spawn -- parallel pays only when the spawn cost is sunk.
        units, unit_seconds, workers = 8, 0.1, 4
        assert model.parallel_pays(units, unit_seconds, workers, pool_warm=True)
        assert not model.parallel_pays(
            units, unit_seconds, workers, pool_warm=False
        )

    def test_single_worker_or_unit_never_pays(self):
        model = DispatchCostModel()
        assert not model.parallel_pays(100, 1.0, workers=1, pool_warm=True)
        assert not model.parallel_pays(1, 1.0, workers=8, pool_warm=True)

    def test_predicted_walls_are_consistent(self):
        model = DispatchCostModel(
            spawn_seconds=0.5, dispatch_seconds_per_task=0.001
        )
        serial = model.serial_seconds(100, 0.01)
        cold = model.parallel_seconds(100, 0.01, workers=4, pool_warm=False)
        warm = model.parallel_seconds(100, 0.01, workers=4, pool_warm=True)
        assert serial == pytest.approx(1.0)
        assert cold == pytest.approx(warm + 0.5)
        assert warm < serial
