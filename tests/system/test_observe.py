"""Tests for the telemetry export layer: trace/prometheus exporters,
the run ledger, and the regression gate.

The contracts under test: span attributes of any supported type
round-trip through snapshot JSON (and render in both exporters without
crashing or silently stringifying), histogram quantiles are defined on
empty and single-observation series, the Chrome trace preserves span
nesting exactly, the ledger appends atomically and reads back what it
wrote, the gate passes a self-comparison and fails an injected breach,
and cross-process snapshot folding preserves nesting associatively.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.errors import ConfigurationError
from repro.system import telemetry
from repro.system.observe import (
    GateThresholds,
    append_record,
    begin_run,
    annotate,
    check_run,
    config_fingerprint,
    diff_runs,
    export_chrome_trace,
    export_prometheus,
    finish_run,
    latest_run,
    prometheus_exposition,
    read_runs,
    record_event,
)
from repro.system.observe import ledger as ledger_mod
from repro.system.executor import ExecutorConfig, ParallelExecutor
from repro.system.telemetry import (
    HISTOGRAM_BUCKET_BOUNDS,
    HistogramStat,
    MetricsRegistry,
    MetricsSnapshot,
    SpanRecord,
)


@pytest.fixture(autouse=True)
def no_active_run():
    """Every test starts and ends without a process-global active run."""
    finish_run()
    yield
    finish_run()


def nested_snapshot() -> MetricsSnapshot:
    """A registry exercise with 3 nesting levels and typed attributes."""
    registry = MetricsRegistry()
    registry.count("cache.hit", 30)
    registry.count("cache.miss", 10)
    registry.gauge("fleet.clock", 12.5)
    registry.observe("span.sweep", 0.004)
    registry.observe("span.sweep", 0.009)
    with registry.span("cli.profile", seed=7):
        with registry.span("profiler.sweep", fraction=0.25, shape=(2, 3)):
            with registry.span("profiler.gather", eligible=1500):
                pass
            with registry.span("profiler.price", vectorized=True):
                pass
    return registry.snapshot()


class TestAttributeRoundTrip:
    """Satellite S1: non-string span attributes survive JSON round-trips."""

    def test_int_float_tuple_attributes_preserved(self):
        registry = MetricsRegistry()
        with registry.span(
            "s", count=3, ratio=0.5, pair=(1, 2), label="x", flag=True
        ):
            pass
        snapshot = registry.snapshot()
        attrs = dict(snapshot.spans[0].attributes)
        assert attrs["count"] == 3 and isinstance(attrs["count"], int)
        assert attrs["ratio"] == 0.5 and isinstance(attrs["ratio"], float)
        assert attrs["pair"] == (1, 2)
        assert attrs["label"] == "x"
        assert attrs["flag"] is True

    def test_json_round_trip_restores_types(self):
        snapshot = nested_snapshot()
        restored = MetricsSnapshot.from_dict(
            json.loads(json.dumps(snapshot.to_dict()))
        )
        assert restored.counters == snapshot.counters
        assert restored.gauges == snapshot.gauges
        assert restored.histograms == snapshot.histograms
        [root] = restored.spans
        assert root.name == "cli.profile"
        assert dict(root.attributes)["seed"] == 7
        [sweep] = root.children
        assert dict(sweep.attributes)["fraction"] == 0.25
        assert dict(sweep.attributes)["shape"] == (2, 3)
        assert [child.name for child in sweep.children] == [
            "profiler.gather", "profiler.price",
        ]

    def test_numpy_scalar_attributes_normalize(self):
        np = pytest.importorskip("numpy")
        registry = MetricsRegistry()
        with registry.span("s", n=np.int64(5), x=np.float64(0.25)):
            pass
        attrs = dict(registry.snapshot().spans[0].attributes)
        assert attrs["n"] == 5 and isinstance(attrs["n"], int)
        assert attrs["x"] == 0.25 and isinstance(attrs["x"], float)

    def test_exporters_accept_typed_attributes(self, tmp_path):
        snapshot = nested_snapshot()
        payload = export_chrome_trace(snapshot, tmp_path / "trace.json")
        args = {
            event["name"]: event["args"]
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        }
        assert args["profiler.sweep"]["fraction"] == 0.25
        assert args["profiler.sweep"]["shape"] == [2, 3]
        text = prometheus_exposition(snapshot)
        assert "repro_cache_hit_total 30" in text


class TestQuantiles:
    """Satellite S3: quantile math on empty/single/merged series."""

    def test_empty_histogram_quantile_is_nan(self):
        stat = HistogramStat()
        assert math.isnan(stat.quantile(0.5))
        assert math.isnan(stat.quantile(0.0))
        assert math.isnan(stat.quantile(1.0))

    def test_single_observation_quantile_is_the_value(self):
        stat = HistogramStat.single(0.42)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert stat.quantile(q) == pytest.approx(0.42)

    def test_quantile_rejects_out_of_range(self):
        stat = HistogramStat.single(1.0)
        with pytest.raises(ValueError):
            stat.quantile(-0.1)
        with pytest.raises(ValueError):
            stat.quantile(1.5)

    def test_quantile_bounds_respected_on_merged_series(self):
        stat = HistogramStat()
        for value in (0.002, 0.003, 0.04, 0.7, 2.0):
            stat = stat.merged(HistogramStat.single(value))
        assert stat.quantile(0.0) == pytest.approx(0.002)
        assert stat.quantile(1.0) == pytest.approx(2.0)
        median = stat.quantile(0.5)
        assert 0.002 <= median <= 2.0

    def test_quantile_monotone_in_q(self):
        stat = HistogramStat()
        for value in (0.0001, 0.004, 0.06, 0.6, 10.0, 200.0):
            stat = stat.merged(HistogramStat.single(value))
        qs = [stat.quantile(q / 10) for q in range(11)]
        assert qs == sorted(qs)


class TestChromeTrace:
    def test_depth_and_nesting_preserved(self, tmp_path):
        from repro.system.observe import trace_depth

        snapshot = nested_snapshot()
        assert trace_depth(snapshot) == 3
        payload = export_chrome_trace(snapshot, tmp_path / "trace.json")
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_name = {event["name"]: event for event in spans}
        parent = by_name["cli.profile"]
        child = by_name["profiler.sweep"]
        grandchild = by_name["profiler.gather"]
        for inner, outer in ((child, parent), (grandchild, child)):
            assert inner["ts"] >= outer["ts"]
            assert inner["ts"] + inner["dur"] <= (
                outer["ts"] + outer["dur"] + 1e-6
            )

    def test_written_file_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(nested_snapshot(), path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "M" for e in loaded["traceEvents"])

    def test_none_snapshot_writes_empty_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        payload = export_chrome_trace(None, path)
        assert payload["traceEvents"] == []
        assert path.exists()

    def test_no_leftover_temp_files(self, tmp_path):
        export_chrome_trace(nested_snapshot(), tmp_path / "trace.json")
        assert [p.name for p in tmp_path.iterdir()] == ["trace.json"]


class TestPrometheus:
    def test_counter_gauge_histogram_families(self):
        text = prometheus_exposition(nested_snapshot())
        assert "# TYPE repro_cache_hit_total counter" in text
        assert "repro_cache_hit_total 30" in text
        assert "# TYPE repro_fleet_clock gauge" in text
        assert "repro_fleet_clock 12.5" in text
        assert "# TYPE repro_span_sweep histogram" in text
        assert text.endswith("\n")

    def test_histogram_buckets_cumulative_with_inf(self):
        text = prometheus_exposition(nested_snapshot())
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_span_sweep_bucket")
        ]
        assert len(bucket_lines) == len(HISTOGRAM_BUCKET_BOUNDS) + 1
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert bucket_lines[-1].startswith(
            'repro_span_sweep_bucket{le="+Inf"}'
        )
        assert counts[-1] == 2
        assert "repro_span_sweep_sum 0.013" in text
        assert "repro_span_sweep_count 2" in text

    def test_invalid_chars_sanitized(self):
        registry = MetricsRegistry()
        registry.count("weird-name.with:ok", 1)
        text = prometheus_exposition(registry.snapshot())
        assert "repro_weird_name_with:ok_total 1" in text

    def test_none_snapshot_yields_comment_only(self):
        text = prometheus_exposition(None)
        assert text.startswith("#") and text.endswith("\n")

    def test_export_writes_atomically(self, tmp_path):
        path = tmp_path / "metrics.prom"
        text = export_prometheus(nested_snapshot(), path)
        assert path.read_text() == text
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]


class TestLedger:
    def test_begin_annotate_finish_appends_record(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        begin_run("profile", {"dataset": "ua-detrac", "frames": 2000}, path)
        annotate(model_invocations=6084, dataset="ua-detrac")
        annotate(bounds={"max_width": 0.3})
        annotate(bounds={"mean_width": 0.1})
        record_event("fleet.execute", cameras=5)
        record = finish_run(snapshot=nested_snapshot())
        assert record is not None
        [stored] = read_runs(path)
        assert stored["run_id"] == record["run_id"]
        assert stored["command"] == "profile"
        assert stored["metrics"]["model_invocations"] == 6084
        assert stored["metrics"]["cache_hits"] == 30
        assert stored["metrics"]["cache_hit_ratio"] == pytest.approx(0.75)
        assert stored["bounds"] == {"max_width": 0.3, "mean_width": 0.1}
        assert stored["dataset"] == "ua-detrac"
        assert stored["events"] == [{"event": "fleet.execute", "cameras": 5}]
        assert stored["fingerprint"] == config_fingerprint(
            {"dataset": "ua-detrac", "frames": 2000}
        )

    def test_finish_without_begin_is_noop(self):
        assert finish_run() is None

    def test_annotate_without_run_is_noop(self):
        annotate(model_invocations=1)
        record_event("x")

    def test_appends_accumulate_oldest_first(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        for index in range(3):
            begin_run("profile", {"index": index}, path)
            finish_run()
        records = read_runs(path)
        assert [r["config"]["index"] for r in records] == [0, 1, 2]
        assert latest_run(path)["config"]["index"] == 2

    def test_reader_skips_garbage_and_foreign_schema(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        begin_run("profile", {}, path)
        finish_run()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"schema": 999, "run_id": "future"}) + "\n")
            handle.write("[1,2,3]\n")
        records = read_runs(path)
        assert len(records) == 1

    def test_latest_run_filters(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        begin_run("profile", {}, path)
        profile_record = finish_run()
        begin_run("chaos", {}, path)
        finish_run()
        assert latest_run(path, command="profile")["run_id"] == (
            profile_record["run_id"]
        )
        # The run-id prefix must reach past the shared time component to
        # select uniquely (both records were created in the same second).
        prefix = profile_record["run_id"][:14]
        assert latest_run(path, run_id=prefix)["run_id"] == (
            profile_record["run_id"]
        )
        with pytest.raises(ConfigurationError):
            latest_run(path, command="estimate")

    def test_missing_ledger_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_runs(tmp_path / "absent.jsonl")

    def test_event_cap_counts_drops(self, tmp_path):
        begin_run("chaos", {}, tmp_path / "runs.jsonl")
        for index in range(ledger_mod.MAX_EVENTS + 7):
            record_event("tick", index=index)
        record = finish_run()
        assert len(record["events"]) == ledger_mod.MAX_EVENTS
        assert record["events_dropped"] == 7

    def test_append_record_is_one_line_per_record(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        append_record(path, {"schema": 1, "run_id": "a"})
        append_record(path, {"schema": 1, "run_id": "b"})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_fingerprint_stable_and_order_insensitive(self):
        a = config_fingerprint({"x": 1, "y": [2, 3]})
        b = config_fingerprint({"y": [2, 3], "x": 1})
        c = config_fingerprint({"x": 2, "y": [2, 3]})
        assert a == b
        assert a != c


def baseline_record(**overrides) -> dict:
    record = {
        "schema": 1,
        "run_id": "base",
        "wall_seconds": 10.0,
        "metrics": {
            "model_invocations": 6084,
            "cache_hit_ratio": 0.9,
        },
        "bounds": {"max_width": 0.5},
    }
    record.update(overrides)
    return record


def candidate_record(**metric_overrides) -> dict:
    record = baseline_record(run_id="cand")
    record["metrics"] = {**record["metrics"], **metric_overrides}
    return record


class TestGate:
    def test_identical_records_pass(self):
        result = check_run(baseline_record(), baseline_record())
        assert result.passed
        assert set(result.checked) == {
            "wall_seconds", "model_invocations", "max_bound_width",
            "cache_hit_ratio",
        }

    def test_wall_breach_fails(self):
        candidate = candidate_record()
        candidate["wall_seconds"] = 101.0
        result = check_run(baseline_record(), candidate)
        assert not result.passed
        assert [v.metric for v in result.violations] == ["wall_seconds"]

    def test_invocation_growth_fails_at_tight_ratio(self):
        result = check_run(
            baseline_record(), candidate_record(model_invocations=6085)
        )
        assert not result.passed
        assert result.violations[0].metric == "model_invocations"

    def test_cache_hit_floor_defaults_to_baseline_minus_slack(self):
        passing = check_run(
            baseline_record(), candidate_record(cache_hit_ratio=0.89)
        )
        assert passing.passed
        failing = check_run(
            baseline_record(), candidate_record(cache_hit_ratio=0.5)
        )
        assert not failing.passed

    def test_bound_width_inflation_fails(self):
        candidate = candidate_record()
        candidate["bounds"] = {"max_width": 0.6}
        result = check_run(baseline_record(), candidate)
        assert not result.passed
        assert result.violations[0].metric == "max_bound_width"

    def test_zero_baseline_invocations_flag_any_growth(self):
        base = baseline_record()
        base["metrics"]["model_invocations"] = 0
        grown = candidate_record(model_invocations=5)
        assert not check_run(base, grown).passed
        same = candidate_record(model_invocations=0)
        assert check_run(base, same).passed

    def test_missing_fields_are_skipped_not_failed(self):
        bare = {"schema": 1, "run_id": "bare"}
        result = check_run(bare, bare)
        assert result.passed
        assert result.checked == ()

    def test_thresholds_none_disables_check(self):
        candidate = candidate_record()
        candidate["wall_seconds"] = 1e9
        thresholds = GateThresholds(max_wall_ratio=None)
        assert check_run(baseline_record(), candidate, thresholds).passed

    def test_diff_rows_include_ratio(self):
        candidate = candidate_record()
        candidate["wall_seconds"] = 20.0
        rows = {row["metric"]: row for row in diff_runs(
            baseline_record(), candidate
        )}
        assert rows["wall_seconds"]["ratio"] == pytest.approx(2.0)
        assert rows["model_invocations"]["delta"] == 0


def sentinel_record(recall=1.0, fpr=0.0, **overrides) -> dict:
    record = baseline_record(**overrides)
    record["facts"] = {
        "sentinel": {"recall": recall, "fpr": fpr, "localization": 1.0}
    }
    return record


class TestSentinelGate:
    """Chaos-run sentinel metrics flow through the same perf gate."""

    def test_identical_sentinel_records_pass(self):
        result = check_run(sentinel_record(), sentinel_record(run_id="cand"))
        assert result.passed
        assert "sentinel_recall" in result.checked
        assert "sentinel_fpr" in result.checked

    def test_recall_floor_defaults_to_baseline(self):
        result = check_run(
            sentinel_record(recall=1.0),
            sentinel_record(recall=0.5, run_id="cand"),
        )
        assert not result.passed
        assert [v.metric for v in result.violations] == ["sentinel_recall"]

    def test_fpr_ceiling_defaults_to_baseline(self):
        result = check_run(
            sentinel_record(fpr=0.0),
            sentinel_record(fpr=0.25, run_id="cand"),
        )
        assert not result.passed
        assert [v.metric for v in result.violations] == ["sentinel_fpr"]

    def test_explicit_thresholds_override_baseline(self):
        lenient = GateThresholds(
            min_sentinel_recall=0.4, max_sentinel_fpr=0.5
        )
        result = check_run(
            sentinel_record(recall=1.0, fpr=0.0),
            sentinel_record(recall=0.5, fpr=0.25, run_id="cand"),
            lenient,
        )
        assert result.passed

    def test_non_chaos_records_skip_sentinel_checks(self):
        result = check_run(baseline_record(), candidate_record())
        assert result.passed
        assert "sentinel_recall" not in result.checked
        assert "sentinel_fpr" not in result.checked

    def test_diff_surfaces_sentinel_rows(self):
        rows = {row["metric"]: row for row in diff_runs(
            sentinel_record(), sentinel_record(recall=0.5, run_id="cand")
        )}
        assert rows["sentinel_recall"]["delta"] == pytest.approx(-0.5)
        assert rows["sentinel_localization"]["ratio"] == pytest.approx(1.0)


def serve_record(speedup=200.0, coalescing=8.0, **overrides) -> dict:
    record = baseline_record(**overrides)
    record["facts"] = {
        "serve": {
            "p50_warm_seconds": 0.004,
            "p99_warm_seconds": 0.01,
            "cold_cli_seconds": 1.0,
            "speedup_cold_over_warm": speedup,
            "coalescing_ratio": coalescing,
            "requests": 84,
            "rejected": 0,
            "batched_kernel_calls": 5,
        }
    }
    return record


class TestServeGate:
    """Serving-benchmark facts flow through the same perf gate."""

    def test_serve_checks_disabled_by_default(self):
        # Both floors are wall-time/timing dependent: nothing is checked
        # unless an explicit threshold opts in.
        result = check_run(serve_record(), serve_record(run_id="cand"))
        assert result.passed
        assert "serve_speedup" not in result.checked
        assert "serve_coalescing_ratio" not in result.checked

    def test_speedup_floor_enforced_when_explicit(self):
        thresholds = GateThresholds(min_serve_speedup=5.0)
        passing = check_run(
            serve_record(), serve_record(run_id="cand"), thresholds
        )
        assert passing.passed
        assert "serve_speedup" in passing.checked
        failing = check_run(
            serve_record(),
            serve_record(speedup=3.0, run_id="cand"),
            thresholds,
        )
        assert not failing.passed
        assert [v.metric for v in failing.violations] == ["serve_speedup"]

    def test_coalescing_floor_enforced_when_explicit(self):
        thresholds = GateThresholds(min_serve_coalescing=2.0)
        failing = check_run(
            serve_record(),
            serve_record(coalescing=1.0, run_id="cand"),
            thresholds,
        )
        assert not failing.passed
        assert [v.metric for v in failing.violations] == [
            "serve_coalescing_ratio"
        ]

    def test_records_without_serve_facts_skip_the_checks(self):
        thresholds = GateThresholds(
            min_serve_speedup=5.0, min_serve_coalescing=2.0
        )
        result = check_run(
            baseline_record(), candidate_record(), thresholds
        )
        assert result.passed
        assert "serve_speedup" not in result.checked

    def test_diff_surfaces_serve_rows(self):
        rows = {row["metric"]: row for row in diff_runs(
            serve_record(), serve_record(speedup=100.0, run_id="cand")
        )}
        assert rows["serve_speedup"]["delta"] == pytest.approx(-100.0)
        assert rows["serve_coalescing_ratio"]["ratio"] == pytest.approx(1.0)
        assert rows["serve_p50_warm_seconds"]["baseline"] == pytest.approx(
            0.004
        )


def stream_record(fps=1_000_000.0, **overrides) -> dict:
    record = baseline_record(**overrides)
    record["facts"] = {
        "stream": {
            "frames_per_sec": fps,
            "windows": 5,
            "violations": 2,
            "repairs": 1,
            "first_breach_count": 1920,
            "tripped": True,
        }
    }
    return record


class TestStreamGate:
    """Streaming-replay facts flow through the same perf gate."""

    def test_stream_checks_disabled_by_default(self):
        result = check_run(
            stream_record(), stream_record(run_id="cand"), GateThresholds()
        )
        assert result.passed
        assert "stream_frames_per_sec" not in result.checked

    def test_fps_floor_enforced_when_explicit(self):
        thresholds = GateThresholds(min_stream_fps=5000.0)
        passing = check_run(
            stream_record(), stream_record(run_id="cand"), thresholds
        )
        assert passing.passed
        assert "stream_frames_per_sec" in passing.checked
        failing = check_run(
            stream_record(),
            stream_record(fps=400.0, run_id="cand"),
            thresholds,
        )
        assert not failing.passed
        assert [v.metric for v in failing.violations] == [
            "stream_frames_per_sec"
        ]

    def test_records_without_stream_facts_skip_the_checks(self):
        result = check_run(
            baseline_record(),
            candidate_record(),
            GateThresholds(min_stream_fps=5000.0),
        )
        assert result.passed
        assert "stream_frames_per_sec" not in result.checked

    def test_diff_surfaces_stream_rows(self):
        rows = {row["metric"]: row for row in diff_runs(
            stream_record(), stream_record(fps=2_000_000.0, run_id="cand")
        )}
        assert rows["stream_frames_per_sec"]["delta"] == pytest.approx(
            1_000_000.0
        )
        assert rows["stream_violations"]["ratio"] == pytest.approx(1.0)
        assert rows["stream_repairs"]["baseline"] == 1


def _traced_unit(index: int) -> int:
    """Module-level (picklable) work unit that records a nested span."""
    with telemetry.span("unit.outer", index=index):
        with telemetry.span("unit.inner", index=index):
            telemetry.count("unit.calls")
    return index * 10


class TestCrossProcessMerge:
    """Satellite S4: worker snapshots fold into the parent correctly."""

    def test_folded_worker_spans_preserve_nesting(self):
        registry = telemetry.enable()
        try:
            executor = ParallelExecutor(ExecutorConfig(workers=2))
            results = executor.map(_traced_unit, [0, 1, 2, 3])
            snapshot = registry.snapshot()
        finally:
            telemetry.disable()
        assert results == [0, 10, 20, 30]
        # Pool-dispatched units fold in under a trace-tagged
        # ``executor.unit`` root; the in-process probe unit stays at the
        # top level. Either way the unit's own nesting is intact.
        outers = [
            s
            for s in telemetry.iter_spans(snapshot)
            if s.name == "unit.outer"
        ]
        assert len(outers) == 4
        for outer in outers:
            assert [c.name for c in outer.children] == ["unit.inner"]
            assert not outer.children[0].children
        dispatched = [
            s for s in snapshot.spans if s.name == "executor.unit"
        ]
        assert dispatched
        for unit in dispatched:
            assert dict(unit.attributes)["trace_id"]
            assert [c.name for c in unit.children] == ["unit.outer"]
        assert snapshot.counters["unit.calls"] == 4
        assert sorted(
            dict(outer.attributes)["index"] for outer in outers
        ) == [0, 1, 2, 3]

    def test_fold_order_does_not_change_aggregates(self):
        def worker(tag: str) -> MetricsSnapshot:
            registry = MetricsRegistry()
            with registry.span("outer", tag=tag):
                with registry.span("inner"):
                    # Power-of-two values: exact in binary, so the total
                    # is independent of summation order.
                    registry.observe("latency", 0.25 * (len(tag) + 1))
            registry.count("done")
            return registry.snapshot()

        parts = [worker(tag) for tag in ("a", "bb", "ccc")]
        forward = MetricsRegistry()
        for part in parts:
            forward.merge_snapshot(part)
        backward = MetricsRegistry()
        for part in reversed(parts):
            backward.merge_snapshot(part)
        left, right = forward.snapshot(), backward.snapshot()
        assert left.counters == right.counters
        assert left.histograms == right.histograms
        assert sorted(s.attributes for s in left.spans) == sorted(
            s.attributes for s in right.spans
        )
        for snapshot in (left, right):
            for root in snapshot.spans:
                assert [c.name for c in root.children] == ["inner"]

    def test_trace_renders_folded_worker_roots(self, tmp_path):
        registry = telemetry.enable()
        try:
            with telemetry.span("cli.profile"):
                pass
            executor = ParallelExecutor(ExecutorConfig(workers=2))
            executor.map(_traced_unit, [0, 1])
            snapshot = registry.snapshot()
        finally:
            telemetry.disable()
        payload = export_chrome_trace(snapshot, tmp_path / "trace.json")
        names = [
            event["name"] for event in payload["traceEvents"]
            if event["ph"] == "X"
        ]
        assert names.count("unit.outer") == 2
        assert names.count("unit.inner") == 2
        assert "cli.profile" in names


class TestPrometheusLabels:
    """Label-carrying metric names render as one family with label sets."""

    def test_labeled_name_round_trips(self):
        from repro.system.observe import labeled_name
        from repro.system.observe.prometheus import split_labels

        dotted = labeled_name(
            "serve.request_seconds", endpoint="estimate", tenant="acme"
        )
        assert dotted == (
            "serve.request_seconds{endpoint=estimate,tenant=acme}"
        )
        base, labels = split_labels(dotted)
        assert base == "serve.request_seconds"
        assert labels == {"endpoint": "estimate", "tenant": "acme"}

    def test_malformed_suffix_treated_as_unlabeled(self):
        from repro.system.observe.prometheus import split_labels

        base, labels = split_labels("serve.request_seconds{oops}")
        assert base == "serve.request_seconds{oops}"
        assert labels == {}

    def test_labeled_histogram_family_renders_once(self):
        from repro.system.observe import labeled_name

        registry = MetricsRegistry()
        registry.observe("serve.request_seconds", 0.004)
        registry.observe(
            labeled_name("serve.request_seconds", endpoint="estimate"),
            0.008,
        )
        registry.observe(
            labeled_name("serve.request_seconds", endpoint="profile"),
            0.016,
        )
        text = prometheus_exposition(registry.snapshot())
        type_lines = [
            line for line in text.splitlines()
            if line.startswith("# TYPE repro_serve_request_seconds ")
        ]
        assert len(type_lines) == 1
        assert 'repro_serve_request_seconds_count{endpoint="estimate"} 1' in text
        assert 'repro_serve_request_seconds_count{endpoint="profile"} 1' in text
        assert "repro_serve_request_seconds_count 1" in text
        assert 'bucket{endpoint="estimate",le="+Inf"} 1' in text

    def test_labeled_counter_and_gauge_render(self):
        from repro.system.observe import labeled_name

        registry = MetricsRegistry()
        registry.count(labeled_name("serve.requests", tenant="t1"), 3)
        registry.gauge(labeled_name("serve.queue_depth", lane="fast"), 7)
        text = prometheus_exposition(registry.snapshot())
        assert 'repro_serve_requests_total{tenant="t1"} 3' in text
        assert 'repro_serve_queue_depth{lane="fast"} 7' in text

    def test_label_values_escaped_per_exposition_spec(self):
        from repro.system.observe import labeled_name

        registry = MetricsRegistry()
        hostile = 'a"b\\c\nd'
        registry.count(labeled_name("serve.requests", tenant=hostile), 1)
        text = prometheus_exposition(registry.snapshot())
        assert (
            'repro_serve_requests_total{tenant="a\\"b\\\\c\\nd"} 1' in text
        )
        assert "\nd\"} 1" not in text  # no raw newline inside the line

    def test_unlabeled_output_unchanged_by_label_support(self):
        text = prometheus_exposition(nested_snapshot())
        assert "{" not in text.replace('le="', "le-").replace(
            '{le-', "le-"
        ) or True
        # The unlabeled families render without any label braces except
        # histogram bucket ``le``.
        for line in text.splitlines():
            if line.startswith("#") or "_bucket{" in line:
                continue
            assert "{" not in line


def latency_record(p99=0.01, **overrides) -> dict:
    record = serve_record(**overrides)
    record["facts"]["serve"]["p99_warm_seconds"] = p99
    return record


class TestLatencyGate:
    """The explicit-only p99 ceiling on the serve benchmark."""

    def test_p99_not_checked_by_default(self):
        result = check_run(
            latency_record(), latency_record(p99=9.0, run_id="cand")
        )
        assert result.passed
        assert "serve_p99_warm_seconds" not in result.checked

    def test_p99_ceiling_enforced_when_explicit(self):
        thresholds = GateThresholds(max_p99_latency=0.5)
        passing = check_run(
            latency_record(), latency_record(run_id="cand"), thresholds
        )
        assert passing.passed
        assert "serve_p99_warm_seconds" in passing.checked
        failing = check_run(
            latency_record(),
            latency_record(p99=0.75, run_id="cand"),
            thresholds,
        )
        assert not failing.passed
        assert [v.metric for v in failing.violations] == [
            "serve_p99_warm_seconds"
        ]
        assert "above ceiling" in failing.violations[0].message

    def test_p99_skipped_without_serve_facts(self):
        thresholds = GateThresholds(max_p99_latency=0.5)
        result = check_run(
            baseline_record(), candidate_record(), thresholds
        )
        assert result.passed
        assert "serve_p99_warm_seconds" not in result.checked

    def test_diff_surfaces_fleet_rows(self):
        baseline = baseline_record()
        candidate = baseline_record(run_id="cand")
        for record, cameras in ((baseline, 4), (candidate, 6)):
            record["facts"] = {
                "fleet": {
                    "telemetry": {
                        "fleet": {
                            "cameras": cameras,
                            "violations": 1,
                            "violation_concentration": 0.5,
                        }
                    }
                }
            }
        rows = {row["metric"]: row for row in diff_runs(baseline, candidate)}
        assert rows["fleet_cameras"]["baseline"] == 4
        assert rows["fleet_cameras"]["candidate"] == 6
        assert rows["fleet_violation_concentration"]["candidate"] == 0.5
