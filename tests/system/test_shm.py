"""Tests for the shared-memory data plane.

The contract under test: a published corpus pickles down to a handle,
workers attach read-only and reconstruct bit-identical arrays, and every
segment is unlinked on normal completion, on worker crash, and on
``KeyboardInterrupt`` — no ``/dev/shm`` entries and no resource_tracker
warnings survive the process.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.system import shm
from repro.system.executor import shutdown_pool
from repro.video import ua_detrac
from repro.video.frame import ObjectClass

REPO_ROOT = Path(__file__).resolve().parents[2]
DEV_SHM = Path("/dev/shm")


def _own_segments(pid: int | None = None) -> list[Path]:
    """The /dev/shm entries a process's publications would leave behind."""
    if not DEV_SHM.is_dir():
        return []
    prefix = f"{shm.SEGMENT_PREFIX}_{pid if pid is not None else os.getpid()}_"
    return sorted(DEV_SHM.glob(f"{prefix}*"))


def _run_script(body: str) -> subprocess.CompletedProcess:
    """Run a python snippet against the checkout in a fresh process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-c", body],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=300,
    )


@pytest.fixture
def dataset():
    return ua_detrac(frame_count=300, seed=7)


@pytest.fixture(autouse=True)
def clean_publications():
    shutdown_pool()
    shm.release_all()
    yield
    shutdown_pool()
    shm.release_all()
    shm.set_enabled(None)


class TestPublishAttach:
    def test_roundtrip_is_bit_identical(self, dataset):
        handle = shm.publish_dataset(dataset)
        assert handle is not None
        rebuilt = shm.dataset_from_handle(handle)
        assert rebuilt.fingerprint == dataset.fingerprint
        assert rebuilt.frame_count == dataset.frame_count
        assert rebuilt.native_resolution == dataset.native_resolution
        np.testing.assert_array_equal(rebuilt.clutter, dataset.clutter)
        for object_class in ObjectClass:
            ours = dataset.objects_of(object_class)
            theirs = rebuilt.objects_of(object_class)
            np.testing.assert_array_equal(theirs.frame, ours.frame)
            np.testing.assert_array_equal(theirs.size, ours.size)
            np.testing.assert_array_equal(theirs.difficulty, ours.difficulty)
            np.testing.assert_array_equal(
                theirs.duplicate_latent, ours.duplicate_latent
            )

    def test_attached_arrays_are_read_only(self, dataset):
        handle = shm.publish_dataset(dataset)
        rebuilt = shm.dataset_from_handle(handle)
        arrays = rebuilt.objects_of(ObjectClass.CAR)
        with pytest.raises(ValueError):
            arrays.frame[0] = 99

    def test_publish_is_idempotent(self, dataset):
        first = shm.publish_dataset(dataset)
        second = shm.publish_dataset(dataset)
        assert first == second
        assert len(_own_segments()) <= 1

    def test_published_dataset_pickles_to_a_handle(self, dataset):
        unpublished = len(pickle.dumps(dataset))
        shm.publish_dataset(dataset)
        published = len(pickle.dumps(dataset))
        assert published < unpublished / 10
        clone = pickle.loads(pickle.dumps(dataset))
        assert clone.fingerprint == dataset.fingerprint
        np.testing.assert_array_equal(clone.clutter, dataset.clutter)

    def test_handle_itself_pickles(self, dataset):
        handle = shm.publish_dataset(dataset)
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle

    def test_release_unlinks_the_segment(self, dataset):
        shm.publish_dataset(dataset)
        assert shm.published_handle(dataset.fingerprint) is not None
        assert shm.published_bytes() > 0
        shm.release(dataset.fingerprint)
        assert shm.published_handle(dataset.fingerprint) is None
        assert _own_segments() == []

    def test_release_all_clears_everything(self, dataset):
        other = ua_detrac(frame_count=200, seed=8)
        shm.publish_dataset(dataset)
        shm.publish_dataset(other)
        shm.release_all()
        assert shm.published_bytes() == 0
        assert _own_segments() == []


class TestGating:
    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm.enabled()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        shm.set_enabled(True)
        assert shm.enabled()
        shm.set_enabled(None)
        assert not shm.enabled()

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm.enabled()


_SCRIPT_PRELUDE = """
import os, sys
from dataclasses import dataclass
from repro.system.executor import ExecutorConfig, ParallelExecutor
from repro.video import ua_detrac

DATASET = ua_detrac(frame_count=300, seed=7)
PARENT = os.getpid()

@dataclass(frozen=True)
class Unit:
    dataset: object
    index: int

UNITS = [Unit(DATASET, i) for i in range(12)]
"""


class TestLifecycle:
    """Segments are unlinked however the run ends (satellite criterion)."""

    def test_normal_completion_leaves_no_segments(self):
        script = _SCRIPT_PRELUDE + """
def unit_mean(unit):
    return float(unit.dataset.clutter.mean()) + unit.index

executor = ParallelExecutor(ExecutorConfig(workers=2))
parallel = executor.map(unit_mean, UNITS)
serial = [unit_mean(unit) for unit in UNITS]
assert parallel == serial, (parallel, serial)

from repro.system import shm
assert shm.published_handle(DATASET.fingerprint) is not None
print("OK", PARENT)
"""
        result = _run_script(script)
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        pid = int(result.stdout.split()[1])
        assert _own_segments(pid) == []
        assert "resource_tracker" not in result.stderr
        assert "leaked" not in result.stderr

    def test_worker_crash_leaves_no_segments(self):
        script = _SCRIPT_PRELUDE + """
def crashy(unit):
    if os.getpid() != PARENT:
        os._exit(3)  # hard-kill the worker: no cleanup, no exception
    return unit.index

executor = ParallelExecutor(ExecutorConfig(workers=2))
results = executor.map(crashy, UNITS)  # rebuild once, then serial fallback
assert results == [unit.index for unit in UNITS], results
print("OK", PARENT)
"""
        result = _run_script(script)
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        pid = int(result.stdout.split()[1])
        assert _own_segments(pid) == []
        assert "leaked" not in result.stderr

    def test_keyboard_interrupt_leaves_no_segments(self):
        script = _SCRIPT_PRELUDE + """
def interrupted(unit):
    raise KeyboardInterrupt

executor = ParallelExecutor(ExecutorConfig(workers=2))
try:
    executor.map(interrupted, UNITS)
except KeyboardInterrupt:
    print("OK", PARENT)
    raise SystemExit(0)
raise SystemExit(1)
"""
        result = _run_script(script)
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
        pid = int(result.stdout.split()[1])
        assert _own_segments(pid) == []
        assert "resource_tracker" not in result.stderr
        assert "leaked" not in result.stderr


class TestDeterminismAcrossPlanes:
    """shm on/off and pool lifetimes never change the bits."""

    def test_shm_off_matches_shm_on(self, dataset):
        from repro.core.candidates import CandidateGrid
        from repro.core.profiler import DegradationProfiler
        from repro.detection.zoo import default_suite, yolo_v4_like
        from repro.query import Aggregate, AggregateQuery, QueryProcessor
        from repro.system.executor import ExecutorConfig, ParallelExecutor
        from repro.video.geometry import Resolution

        grid = CandidateGrid(
            fractions=(0.05, 0.1), resolutions=(Resolution(152),), removals=((),)
        )

        def one_run():
            profiler = DegradationProfiler(
                QueryProcessor(default_suite()), trials=2
            )
            query = AggregateQuery(dataset, yolo_v4_like(), Aggregate.AVG)
            return profiler.generate_hypercube_seeded(
                query, grid, root=13,
                executor=ParallelExecutor(ExecutorConfig(workers=2)),
            )

        shm.set_enabled(True)
        with_plane = one_run()
        shutdown_pool()
        shm.set_enabled(False)
        without_plane = one_run()
        assert np.array_equal(with_plane.bounds, without_plane.bounds)
        assert np.array_equal(with_plane.values, without_plane.values)

    def test_no_segments_survive_in_process_runs(self, dataset):
        shm.publish_dataset(dataset)
        shm.release_all()
        assert _own_segments() == []


class TestServeDaemonLifecycle:
    """The serving daemon publishes at warmup and must unlink on SIGINT.

    The SIGTERM path (with request traffic and ledger-flush assertions)
    lives in ``tests/system/test_serve.py``; this is the same leak-check
    contract on the interrupt signal an operator's Ctrl-C sends.
    """

    def test_sigint_leaves_dev_shm_empty(self):
        import re
        import signal
        import time

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--frames", "600",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        try:
            bound = None
            deadline = time.time() + 120
            while time.time() < deadline and bound is None:
                line = proc.stdout.readline()
                if not line:
                    break
                bound = re.search(r"listening on http://", line)
            assert bound is not None, "daemon never came up"
            # Warmup published the corpus: the daemon owns live segments.
            proc.send_signal(signal.SIGINT)
            output, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0, output
        assert _own_segments(proc.pid) == []
        assert "resource_tracker" not in output
