"""Tests for the parallel execution substrate.

The contract under test: seeded profile generation and trial loops are a
pure function of ``(inputs, root)`` — the same bits come back for any
worker count, including the serial path and the silent fallback — and a
warm persistent detector cache eliminates model invocations entirely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidates import CandidateGrid
from repro.core.profiler import DegradationProfiler
from repro.detection import diskcache
from repro.detection.zoo import default_suite, yolo_v4_like
from repro.errors import ConfigurationError
from repro.experiments.trials import (
    run_method_trials_seeded,
    run_repair_trials_seeded,
)
from repro.interventions import InterventionPlan
from repro.query import Aggregate, AggregateQuery, QueryProcessor
from repro.query.aggregates import FramePredicate
from repro.system import telemetry
from repro.system.costs import InvocationLedger
from repro.system.executor import (
    ExecutorConfig,
    ParallelExecutor,
    active_pool,
    child_rng,
    child_seed,
    merge_ledger_counts,
    normalize_root,
    pool_generation,
    resolve_worker_count,
    shutdown_pool,
    trial_chunks,
)
from repro.video import ua_detrac
from repro.video.geometry import Resolution

WORKER_MATRIX = (1, 2, 4)


def _record_then_fail(item: tuple) -> None:
    """Picklable unit: append its id to a shared file, then blow up."""
    path, value = item
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    raise AttributeError(f"worker bug on unit {value}")


def _record_call(item: tuple) -> int:
    """Picklable unit: append its id to a shared file, return doubled."""
    path, value = item
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    return value * 2


def _count_and_double(value: int) -> int:
    """Picklable unit that writes telemetry inside the worker."""
    telemetry.count("test.unit")
    telemetry.observe("test.value", float(value))
    return value * 2


@pytest.fixture(scope="module")
def corpus():
    """A small corpus private to this module (keeps caches isolated)."""
    return ua_detrac(frame_count=900, seed=11)


def fresh_query(corpus) -> AggregateQuery:
    """A query on a fresh detector: empty memory cache every call."""
    return AggregateQuery(corpus, yolo_v4_like(), Aggregate.AVG)


class TestSeedStreams:
    def test_child_seed_deterministic(self):
        a = child_seed(7, 3, 5)
        b = child_seed(7, 3, 5)
        assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_distinct_keys_distinct_streams(self):
        base = child_rng(7, 0, 0).random(8)
        assert not np.array_equal(base, child_rng(7, 0, 1).random(8))
        assert not np.array_equal(base, child_rng(7, 1, 0).random(8))
        assert not np.array_equal(base, child_rng(8, 0, 0).random(8))

    def test_normalize_root_int_and_sequence_agree(self):
        assert normalize_root(42) == normalize_root((42,)) == (42,)
        assert normalize_root([1, 2]) == (1, 2)
        assert np.array_equal(
            child_rng(42, 0, 0).random(4), child_rng((42,), 0, 0).random(4)
        )


class TestTrialChunks:
    @pytest.mark.parametrize(
        "trials,workers", [(1, 1), (5, 2), (7, 3), (100, 4), (3, 8)]
    )
    def test_partition_properties(self, trials, workers):
        chunks = trial_chunks(trials, workers)
        assert all(len(chunk) > 0 for chunk in chunks)
        flat = [t for chunk in chunks for t in chunk]
        assert flat == list(range(trials))  # disjoint, contiguous, complete
        assert len(chunks) == min(trials, workers)

    def test_rejects_nonpositive_trials(self):
        with pytest.raises(ConfigurationError):
            trial_chunks(0, 2)

    def test_chunk_count_clamped_to_at_least_one(self):
        assert trial_chunks(4, 0) == [range(0, 4)]


class TestExecutorConfig:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            ExecutorConfig(workers=0)

    def test_defaults_serial(self):
        assert ParallelExecutor().config.workers == 1

    def test_accepts_auto(self):
        assert ExecutorConfig(workers="auto").workers == "auto"

    def test_rejects_other_strings(self):
        with pytest.raises(ConfigurationError):
            ExecutorConfig(workers="fast")


class TestAutoWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_worker_count(3, unit_count=100) == 3

    def test_rejects_zero_and_negative_workers(self):
        # Regression: validation used to live only in ExecutorConfig, so
        # direct callers could smuggle workers=0 through to the pool.
        for bad in (0, -1, -8):
            with pytest.raises(ConfigurationError):
                resolve_worker_count(bad, unit_count=10)

    def test_rejects_unknown_strings(self):
        with pytest.raises(ConfigurationError):
            resolve_worker_count("fast", unit_count=10)

    def test_auto_serial_on_single_cpu(self, monkeypatch):
        monkeypatch.setattr("repro.system.executor.os.cpu_count", lambda: 1)
        assert resolve_worker_count("auto", unit_count=1000) == 1

    def test_auto_uses_cpus_capped_at_units(self, monkeypatch):
        # No fixed unit floor anymore: the serial/parallel decision is
        # costed per map call, so auto resolves to the host's full width.
        monkeypatch.setattr("repro.system.executor.os.cpu_count", lambda: 8)
        assert resolve_worker_count("auto", unit_count=4) == 4
        assert resolve_worker_count("auto", unit_count=200) == 8
        monkeypatch.setattr("repro.system.executor.os.cpu_count", lambda: 64)
        assert resolve_worker_count("auto", unit_count=20) == 20

    def test_auto_handles_unknown_cpu_count(self, monkeypatch):
        monkeypatch.setattr("repro.system.executor.os.cpu_count", lambda: None)
        assert resolve_worker_count("auto", unit_count=1000) == 1

    def test_worker_count_caps_explicit_at_units(self):
        executor = ParallelExecutor(ExecutorConfig(workers=8))
        assert executor.worker_count(3) == 3
        assert executor.worker_count(0) == 1

    def test_sweep_identical_under_auto(self, corpus, monkeypatch):
        monkeypatch.setattr("repro.system.executor.os.cpu_count", lambda: 2)
        query = fresh_query(corpus)
        grid = CandidateGrid(
            fractions=(0.05, 0.1), resolutions=(Resolution(152),), removals=((),)
        )
        profiler = DegradationProfiler(QueryProcessor(default_suite()), trials=2)
        serial = profiler.generate_hypercube_seeded(
            query, grid, root=4, executor=ParallelExecutor(ExecutorConfig(workers=1))
        )
        auto = profiler.generate_hypercube_seeded(
            query, grid, root=4,
            executor=ParallelExecutor(ExecutorConfig(workers="auto")),
        )
        np.testing.assert_array_equal(serial.bounds, auto.bounds)


class TestMergeLedgerCounts:
    def test_folds_counts(self):
        ledger = InvocationLedger()
        ledger.record(608, 10)
        merge_ledger_counts(ledger, {608: 5, 128: 3})
        assert ledger.by_resolution() == {608: 15, 128: 3}
        assert ledger.total == 18

    def test_none_ledger_is_noop(self):
        merge_ledger_counts(None, {608: 5})


class TestDeterminismMatrix:
    """Bit-identity across worker counts (acceptance criterion)."""

    def test_hypercube_identical_for_any_worker_count(self, corpus):
        grid = CandidateGrid(
            fractions=(0.05, 0.1, 0.2),
            resolutions=(Resolution(152), Resolution(608)),
            removals=((),),
        )
        cubes, totals = [], []
        for workers in WORKER_MATRIX:
            ledger = InvocationLedger()
            profiler = DegradationProfiler(
                QueryProcessor(default_suite()), trials=2, ledger=ledger
            )
            executor = ParallelExecutor(ExecutorConfig(workers=workers))
            cubes.append(
                profiler.generate_hypercube_seeded(
                    fresh_query(corpus), grid, root=17, executor=executor
                )
            )
            totals.append(ledger.total)
        for cube in cubes[1:]:
            assert np.array_equal(cube.bounds, cubes[0].bounds)
            assert np.array_equal(cube.values, cubes[0].values)
        assert totals[1:] == totals[:-1]

    def test_sampling_profile_identical_and_matches_trial_count(self, corpus):
        profiles = []
        for workers in WORKER_MATRIX:
            profiler = DegradationProfiler(QueryProcessor(default_suite()), trials=5)
            profile = profiler.profile_sampling_seeded(
                fresh_query(corpus),
                (0.05, 0.1, 0.3),
                root=(3, 1),
                executor=ParallelExecutor(ExecutorConfig(workers=workers)),
            )
            profiles.append(profile)
        reference = profiles[0]
        for profile in profiles[1:]:
            assert np.array_equal(profile.error_bounds(), reference.error_bounds())
            assert [p.value for p in profile.points] == [
                p.value for p in reference.points
            ]

    def test_method_trials_identical(self, corpus):
        query = fresh_query(corpus)
        processor = QueryProcessor(default_suite())
        plan = InterventionPlan.from_knobs(f=0.1)
        summaries = [
            run_method_trials_seeded(
                processor,
                query,
                plan,
                ("smokescreen", "clt"),
                trials=6,
                root=5,
                executor=ParallelExecutor(ExecutorConfig(workers=workers)),
            )
            for workers in WORKER_MATRIX
        ]
        assert summaries[1:] == summaries[:-1]

    def test_repair_trials_identical(self, corpus):
        query = fresh_query(corpus)
        processor = QueryProcessor(default_suite())
        plan = InterventionPlan.from_knobs(f=0.2, p=304)
        correction_values = processor.true_values(query)[:40]
        summaries = [
            run_repair_trials_seeded(
                processor,
                query,
                plan,
                correction_values,
                trials=6,
                root=9,
                executor=ParallelExecutor(ExecutorConfig(workers=workers)),
            )
            for workers in WORKER_MATRIX
        ]
        assert summaries[1:] == summaries[:-1]

    def test_unpicklable_query_falls_back_to_serial_result(self, corpus):
        """A lambda predicate cannot cross process boundaries; the pool
        path must silently fall back and still match the serial bits."""
        model = yolo_v4_like()
        predicate = FramePredicate(name="count > 1", fn=lambda counts: counts > 1)
        query = AggregateQuery(corpus, model, Aggregate.COUNT, predicate=predicate)
        results = []
        for workers in (1, 3):
            profiler = DegradationProfiler(QueryProcessor(default_suite()), trials=3)
            profile = profiler.profile_sampling_seeded(
                query,
                (0.1, 0.2),
                root=2,
                executor=ParallelExecutor(ExecutorConfig(workers=workers)),
            )
            results.append(profile.error_bounds())
        assert np.array_equal(results[0], results[1])


class TestWorkerErrorConfinement:
    """Worker ``fn`` failures must propagate without a serial re-run."""

    def test_worker_attribute_error_propagates_without_rerun(self, tmp_path):
        log = tmp_path / "calls.log"
        executor = ParallelExecutor(ExecutorConfig(workers=2))
        items = [(str(log), i) for i in range(6)]
        with pytest.raises(AttributeError, match="worker bug"):
            executor.map(_record_then_fail, items)
        lines = log.read_text(encoding="utf-8").splitlines()
        # The over-broad fallback used to re-run every unit serially
        # (masking the bug and duplicating side effects).
        assert len(lines) == len(set(lines))

    def test_successful_pool_run_executes_each_unit_once(self, tmp_path):
        log = tmp_path / "calls.log"
        executor = ParallelExecutor(ExecutorConfig(workers=2))
        items = [(str(log), i) for i in range(8)]
        results = executor.map(_record_call, items)
        assert results == [i * 2 for i in range(8)]
        lines = sorted(log.read_text(encoding="utf-8").splitlines(), key=int)
        assert lines == [str(i) for i in range(8)]

    def test_unpicklable_fn_falls_back_and_counts_the_event(self):
        executor = ParallelExecutor(ExecutorConfig(workers=2))
        registry = telemetry.enable()
        try:
            results = executor.map(lambda x: x + 1, [1, 2, 3])
            snapshot = registry.snapshot()
        finally:
            telemetry.disable()
        assert results == [2, 3, 4]
        assert snapshot.counters["executor.fallback"] == 1.0
        # Regression: gauges used to be emitted before pool creation, so
        # a degraded run still advertised itself as parallel. The fallback
        # must report the serial truth and never claim a chunk size.
        assert snapshot.gauges["executor.workers"] == 1.0
        assert "executor.chunk_size" not in snapshot.gauges

    def test_worker_telemetry_folds_into_parent(self):
        executor = ParallelExecutor(ExecutorConfig(workers=2))
        registry = telemetry.enable()
        try:
            results = executor.map(_count_and_double, list(range(10)))
            snapshot = registry.snapshot()
        finally:
            telemetry.disable()
        assert results == [i * 2 for i in range(10)]
        assert snapshot.counters["test.unit"] == 10.0
        assert snapshot.counters["executor.units"] == 10.0
        assert snapshot.histograms["test.value"].count == 10
        assert snapshot.histograms["test.value"].maximum == 9.0
        assert snapshot.gauges["executor.workers"] == 2.0

    def test_serial_path_has_no_pool_metrics(self):
        executor = ParallelExecutor(ExecutorConfig(workers=1))
        registry = telemetry.enable()
        try:
            results = executor.map(_count_and_double, [1, 2])
            counters = registry.snapshot().counters
        finally:
            telemetry.disable()
        assert results == [2, 4]
        assert counters["test.unit"] == 2.0
        assert "executor.units" not in counters

    def test_serial_path_still_records_the_dispatch_decision(self):
        """Every run ledgers its dispatch mode, even an explicit serial
        one — the regression gate diffs ``facts.executor`` across runs."""
        from repro.system.observe import ledger as run_ledger

        executor = ParallelExecutor(ExecutorConfig(workers=1))
        run_ledger.begin_run("test-serial", path=None)
        try:
            executor.map(_count_and_double, [1, 2])
            run = run_ledger.active_run()
            assert run is not None
            facts = run.facts["executor"]
        finally:
            run_ledger.finish_run()
        assert facts["mode"] == "serial"
        assert facts["reason"] == "explicit"
        assert facts["units"] == 2
        assert facts["workers"] == 1


def _triple(value: int) -> int:
    """Picklable unit for pool-lifecycle tests."""
    return value * 3


class TestPersistentPool:
    """The module-managed pool survives map calls and rebuilds on change."""

    @pytest.fixture(autouse=True)
    def fresh_pool_state(self):
        shutdown_pool()
        yield
        shutdown_pool()

    def test_pool_reused_across_map_calls(self):
        executor = ParallelExecutor(ExecutorConfig(workers=2))
        items = list(range(24))
        first = executor.map(_triple, items)
        pool = active_pool()
        assert pool is not None
        generation = pool_generation()
        second = executor.map(_triple, items)
        assert second == first == [i * 3 for i in items]
        assert active_pool() is pool
        assert pool_generation() == generation
        assert pool.map_calls == 2

    def test_config_change_rebuilds_pool(self):
        items = list(range(24))
        ParallelExecutor(ExecutorConfig(workers=2)).map(_triple, items)
        first = active_pool()
        ParallelExecutor(ExecutorConfig(workers=3)).map(_triple, items)
        second = active_pool()
        assert second is not None and second is not first
        assert second.key.workers == 3
        assert second.generation > first.generation

    def test_shutdown_then_fresh_spawn(self):
        executor = ParallelExecutor(ExecutorConfig(workers=2))
        items = list(range(24))
        before = executor.map(_triple, items)
        shutdown_pool()
        assert active_pool() is None
        after = executor.map(_triple, items)
        assert after == before

    def test_close_shuts_the_shared_pool_down(self):
        executor = ParallelExecutor(ExecutorConfig(workers=2))
        executor.map(_triple, list(range(24)))
        assert active_pool() is not None
        executor.close()
        assert active_pool() is None

    def test_results_identical_across_pool_lifetimes(self, corpus):
        grid = CandidateGrid(
            fractions=(0.05, 0.1), resolutions=(Resolution(152),), removals=((),)
        )

        def one_run():
            profiler = DegradationProfiler(
                QueryProcessor(default_suite()), trials=2
            )
            return profiler.generate_hypercube_seeded(
                fresh_query(corpus), grid, root=29,
                executor=ParallelExecutor(ExecutorConfig(workers=2)),
            )

        cold = one_run()       # fresh pool
        warm = one_run()       # reused pool
        shutdown_pool()
        respawned = one_run()  # second pool lifetime
        assert np.array_equal(warm.bounds, cold.bounds)
        assert np.array_equal(respawned.bounds, cold.bounds)
        assert np.array_equal(warm.values, cold.values)
        assert np.array_equal(respawned.values, cold.values)


class TestPersistentCacheIntegration:
    """Cold vs warm persistent cache (acceptance criterion)."""

    def test_warm_cache_needs_zero_invocations(self, corpus, tmp_path):
        grid = CandidateGrid(
            fractions=(0.05, 0.15),
            resolutions=(Resolution(304), Resolution(608)),
            removals=((),),
        )
        query = fresh_query(corpus)
        diskcache.activate(tmp_path / "cache")
        try:
            cold_ledger = InvocationLedger()
            cold = DegradationProfiler(
                QueryProcessor(default_suite()), trials=2, ledger=cold_ledger
            ).generate_hypercube_seeded(query, grid, root=23)
            assert cold_ledger.total > 0
            assert diskcache.active_cache().entries()

            # Same corpus and settings, fresh process-like state: the
            # detector's memory cache is emptied, so every output must
            # come from disk and the merged ledger stays at zero.
            query.model.clear_cache()
            warm_ledger = InvocationLedger()
            warm = DegradationProfiler(
                QueryProcessor(default_suite()), trials=2, ledger=warm_ledger
            ).generate_hypercube_seeded(query, grid, root=23)
            assert warm_ledger.total == 0
            assert np.array_equal(warm.bounds, cold.bounds)
            assert np.array_equal(warm.values, cold.values)

            # Parallel warm run: workers re-activate the cache and serve
            # all outputs from disk too.
            query.model.clear_cache()
            parallel_ledger = InvocationLedger()
            parallel = DegradationProfiler(
                QueryProcessor(default_suite()), trials=2, ledger=parallel_ledger
            ).generate_hypercube_seeded(
                query,
                grid,
                root=23,
                executor=ParallelExecutor(ExecutorConfig(workers=4)),
            )
            assert parallel_ledger.total == 0
            assert np.array_equal(parallel.bounds, cold.bounds)
        finally:
            diskcache.deactivate()

    def test_results_identical_with_and_without_cache(self, corpus, tmp_path):
        query = fresh_query(corpus)
        profiler = DegradationProfiler(QueryProcessor(default_suite()), trials=2)
        without = profiler.profile_sampling_seeded(query, (0.1, 0.2), root=31)
        diskcache.activate(tmp_path / "cache")
        try:
            query.model.clear_cache()
            cached = profiler.profile_sampling_seeded(query, (0.1, 0.2), root=31)
        finally:
            diskcache.deactivate()
        assert np.array_equal(cached.error_bounds(), without.error_bounds())
