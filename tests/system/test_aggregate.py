"""Tests for hierarchical fleet telemetry aggregation.

The rollup arithmetic must be exact and order-stable: violation
concentration is the worst shard's share of all violations, cache-hit
dispersion is the population standard deviation of per-camera hit
ratios, and the slowest-camera ranking is a strict latency sort.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.system.observe import CameraStats, TelemetryAggregator


class TestShardAssignment:
    def test_auto_sharding_blocks_in_insertion_order(self):
        aggregator = TelemetryAggregator(shard_size=2)
        shards = [
            aggregator.add_camera(f"cam-{i}").shard for i in range(5)
        ]
        assert shards == [
            "shard-00", "shard-00", "shard-01", "shard-01", "shard-02"
        ]

    def test_explicit_shard_wins(self):
        aggregator = TelemetryAggregator()
        stats = aggregator.add_camera("cam-a", shard="edge-west")
        assert stats.shard == "edge-west"

    def test_len_counts_cameras(self):
        aggregator = TelemetryAggregator()
        for i in range(3):
            aggregator.add_camera(f"cam-{i}")
        assert len(aggregator) == 3


class TestCameraStats:
    def test_cache_hit_ratio(self):
        stats = CameraStats(
            name="c", shard="s", cache_hits=3, cache_misses=1
        )
        assert stats.cache_hit_ratio == pytest.approx(0.75)

    def test_cache_hit_ratio_none_without_traffic(self):
        assert CameraStats(name="c", shard="s").cache_hit_ratio is None

    def test_to_dict_rounds(self):
        stats = CameraStats(
            name="c", shard="s", latency=0.123456789, frames=5,
            cache_hits=1, cache_misses=2,
        )
        payload = stats.to_dict()
        assert payload["latency_s"] == 0.123457
        assert payload["cache_hit_ratio"] == pytest.approx(1 / 3, abs=1e-6)


class TestRollup:
    def _fleet(self) -> TelemetryAggregator:
        aggregator = TelemetryAggregator(shard_size=2)
        aggregator.add_camera(
            "cam-0", latency=0.10, frames=100, violation=True,
            cache_hits=9, cache_misses=1,
        )
        aggregator.add_camera(
            "cam-1", latency=0.30, frames=200, violation=True,
            cache_hits=5, cache_misses=5,
        )
        aggregator.add_camera(
            "cam-2", latency=0.20, frames=50, status="degraded",
            violation=True, cache_hits=1, cache_misses=9,
        )
        aggregator.add_camera("cam-3", latency=0.05, frames=25)
        return aggregator

    def test_fleet_totals(self):
        rollup = self._fleet().rollup()
        fleet = rollup["fleet"]
        assert fleet["cameras"] == 4
        assert fleet["shards"] == 2
        assert fleet["total_frames"] == 375
        assert fleet["mean_latency_s"] == pytest.approx(0.1625)
        assert fleet["max_latency_s"] == pytest.approx(0.30)
        assert fleet["violations"] == 3

    def test_violation_concentration_is_worst_shard_share(self):
        # shard-00 holds 2 of 3 violations.
        fleet = self._fleet().rollup()["fleet"]
        assert fleet["violation_concentration"] == pytest.approx(
            2 / 3, abs=1e-6
        )

    def test_violation_concentration_one_when_localized(self):
        aggregator = TelemetryAggregator(shard_size=2)
        aggregator.add_camera("a", violation=True)
        aggregator.add_camera("b", violation=True)
        aggregator.add_camera("c")
        aggregator.add_camera("d")
        fleet = aggregator.rollup()["fleet"]
        assert fleet["violation_concentration"] == 1.0

    def test_violation_concentration_zero_without_violations(self):
        aggregator = TelemetryAggregator()
        aggregator.add_camera("a")
        assert aggregator.rollup()["fleet"]["violation_concentration"] == 0.0

    def test_cache_hit_dispersion_is_population_stdev(self):
        fleet = self._fleet().rollup()["fleet"]
        ratios = [0.9, 0.5, 0.1]  # cam-3 has no cache traffic
        mu = sum(ratios) / len(ratios)
        expected = math.sqrt(
            sum((r - mu) ** 2 for r in ratios) / len(ratios)
        )
        assert fleet["cache_hit_dispersion"] == pytest.approx(
            expected, abs=1e-6
        )

    def test_top_slowest_sorted_and_capped(self):
        fleet = self._fleet().rollup(top_k=2)["fleet"]
        assert [c["name"] for c in fleet["top_slowest"]] == [
            "cam-1", "cam-2"
        ]

    def test_shard_blocks(self):
        shards = self._fleet().rollup()["shards"]
        assert sorted(shards) == ["shard-00", "shard-01"]
        first = shards["shard-00"]
        assert first["cameras"] == 2
        assert first["frames"] == 300
        assert first["mean_latency_s"] == pytest.approx(0.20)
        assert first["max_latency_s"] == pytest.approx(0.30)
        assert first["violations"] == 2
        assert first["degraded"] == 0
        second = shards["shard-01"]
        assert second["degraded"] == 1
        assert second["mean_cache_hit_ratio"] == pytest.approx(0.1)

    def test_cache_status_not_degraded(self):
        aggregator = TelemetryAggregator()
        aggregator.add_camera("a", status="cache")
        aggregator.add_camera("b", status="failed")
        shards = aggregator.rollup()["shards"]
        assert sum(s["degraded"] for s in shards.values()) == 1

    def test_empty_fleet_rollup(self):
        rollup = TelemetryAggregator().rollup()
        fleet = rollup["fleet"]
        assert fleet["cameras"] == 0
        assert fleet["max_latency_s"] == 0.0
        assert fleet["top_slowest"] == []
        assert rollup["shards"] == {}

    def test_rollup_json_serializable(self):
        payload = json.dumps(self._fleet().rollup(), sort_keys=True)
        assert "violation_concentration" in payload
