"""Concurrent-append safety for the JSONL run ledger.

``append_record`` promises that one ``O_APPEND`` write per line means
concurrent appenders — daemon request handlers, pool workers, the
flight recorder firing mid-crash — interleave complete lines, never
fragments. These tests hammer one ledger file from many processes and
threads and assert every raw line still parses and nothing is lost.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.system import telemetry
from repro.system.observe import ledger as run_ledger
from repro.system.observe import tracing

WRITERS = 8
RECORDS_PER_WRITER = 50


def _hammer(task: tuple) -> int:
    """Picklable worker: append many records of varying sizes."""
    path, writer = task
    for index in range(RECORDS_PER_WRITER):
        # Vary payload size so torn writes would land mid-line for at
        # least some interleavings.
        run_ledger.append_record(
            path,
            {
                "schema": run_ledger.SCHEMA_VERSION,
                "writer": writer,
                "index": index,
                "padding": "x" * (17 * (index % 13) + writer),
            },
        )
    return RECORDS_PER_WRITER


def _hammer_with_flights(task: tuple) -> int:
    """Picklable worker: interleave normal appends with flight dumps."""
    path, writer = task
    run = run_ledger.begin_run(f"soak-{writer}", {}, path)
    try:
        for index in range(10):
            with tracing.span("soak.unit", writer=writer, index=index):
                pass
            tracing.dump_flight_record(f"probe-{writer}-{index}")
    finally:
        run_ledger.finish_run(status="ok", exit_code=0)
    assert run.run_id
    return 1


class TestConcurrentAppends:
    def test_multiprocess_appends_never_tear(self, tmp_path: Path):
        ledger = tmp_path / "runs.jsonl"
        tasks = [(str(ledger), writer) for writer in range(WRITERS)]
        with ProcessPoolExecutor(max_workers=WRITERS) as pool:
            written = sum(pool.map(_hammer, tasks))
        assert written == WRITERS * RECORDS_PER_WRITER
        lines = ledger.read_text(encoding="utf-8").splitlines()
        assert len(lines) == WRITERS * RECORDS_PER_WRITER
        seen = set()
        for line in lines:
            record = json.loads(line)  # raises on any torn line
            seen.add((record["writer"], record["index"]))
        assert len(seen) == WRITERS * RECORDS_PER_WRITER

    def test_multithread_appends_never_tear(self, tmp_path: Path):
        ledger = tmp_path / "runs.jsonl"
        threads = [
            threading.Thread(target=_hammer, args=((str(ledger), w),))
            for w in range(WRITERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = ledger.read_text(encoding="utf-8").splitlines()
        assert len(lines) == WRITERS * RECORDS_PER_WRITER
        for line in lines:
            json.loads(line)

    def test_flight_records_interleave_cleanly(self, tmp_path: Path):
        ledger = tmp_path / "runs.jsonl"
        tasks = [(str(ledger), writer) for writer in range(4)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            finished = sum(pool.map(_hammer_with_flights, tasks))
        assert finished == 4
        raw_lines = ledger.read_text(encoding="utf-8").splitlines()
        for line in raw_lines:
            json.loads(line)
        records = run_ledger.read_runs(ledger)
        flights = [
            r for r in records if r["command"] == "flight-recorder"
        ]
        finishes = [
            r for r in records if r["command"].startswith("soak-")
        ]
        assert len(flights) == 4 * 10
        assert len(finishes) == 4
        for flight in flights:
            assert flight["status"] == "flight"
            assert flight["facts"]["flight_record"]["spans"]

    def test_read_runs_skips_foreign_lines_not_whole_file(
        self, tmp_path: Path
    ):
        ledger = tmp_path / "runs.jsonl"
        run_ledger.append_record(
            ledger, {"schema": run_ledger.SCHEMA_VERSION, "writer": 0}
        )
        with open(ledger, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write(json.dumps({"schema": -1}) + "\n")
        run_ledger.append_record(
            ledger, {"schema": run_ledger.SCHEMA_VERSION, "writer": 1}
        )
        records = run_ledger.read_runs(ledger)
        assert [r["writer"] for r in records] == [0, 1]


def teardown_module(module) -> None:
    tracing.ring().clear()
    if telemetry.enabled():
        telemetry.disable()
