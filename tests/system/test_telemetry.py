"""Tests for the process-local observability layer.

The contract under test: snapshots merge associatively (worker metrics can
fold into the parent in any grouping), the off-by-default path records
nothing and allocates nothing per call, spans nest into a trace tree, and
enabling telemetry never changes estimation output bits.
"""

from __future__ import annotations

import io
import json
import logging
import pickle

import numpy as np
import pytest

from repro.core.profiler import DegradationProfiler
from repro.detection.zoo import default_suite, yolo_v4_like
from repro.query import Aggregate, AggregateQuery, QueryProcessor
from repro.system import telemetry
from repro.system.telemetry import (
    HistogramStat,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    merge_snapshots,
)
from repro.video import ua_detrac


@pytest.fixture
def collecting():
    """A fresh process-global collecting registry, restored afterwards."""
    registry = telemetry.enable()
    yield registry
    telemetry.disable()


def make_snapshot(tag: str, value: float) -> MetricsSnapshot:
    registry = MetricsRegistry()
    registry.count("shared", value)
    registry.count(f"only.{tag}", 1)
    registry.gauge("gauge", value)
    registry.observe("hist", value)
    registry.observe("hist", value * 2)
    with registry.span(f"span.{tag}"):
        pass
    return registry.snapshot()


class TestSnapshotMerge:
    def test_counters_sum_and_histograms_fold(self):
        a, b = make_snapshot("a", 1.0), make_snapshot("b", 5.0)
        merged = a.merged(b)
        assert merged.counters["shared"] == 6.0
        assert merged.counters["only.a"] == 1.0
        assert merged.counters["only.b"] == 1.0
        assert merged.histograms["hist"].count == 4
        assert merged.histograms["hist"].minimum == 1.0
        assert merged.histograms["hist"].maximum == 10.0

    def test_merge_is_associative(self):
        a, b, c = (make_snapshot(t, v) for t, v in (("a", 1), ("b", 3), ("c", 7)))
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        assert left.counters == right.counters
        assert left.gauges == right.gauges
        assert left.histograms == right.histograms
        assert left.spans == right.spans

    def test_gauges_last_write_wins_in_merge_order(self):
        merged = make_snapshot("a", 1.0).merged(make_snapshot("b", 9.0))
        assert merged.gauges["gauge"] == 9.0

    def test_merge_snapshots_skips_none(self):
        merged = merge_snapshots(None, make_snapshot("a", 2.0), None)
        assert merged.counters["shared"] == 2.0
        assert merge_snapshots().counters == {}

    def test_snapshot_pickles_across_pool_boundary(self):
        snapshot = make_snapshot("w", 4.0)
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot

    def test_registry_merge_snapshot_folds_like_ledger_counts(self):
        parent = MetricsRegistry()
        parent.count("shared", 1.0)
        parent.merge_snapshot(make_snapshot("w", 2.0))
        parent.merge_snapshot(None)  # no-op, like an empty worker
        snapshot = parent.snapshot()
        assert snapshot.counters["shared"] == 3.0
        assert snapshot.histograms["hist"].count == 2

    def test_to_dict_is_json_ready(self):
        payload = make_snapshot("a", 1.5).to_dict()
        text = json.dumps(payload)
        assert json.loads(text)["counters"]["shared"] == 1.5


class TestHistogramStat:
    def test_empty_mean_is_nan(self):
        assert np.isnan(HistogramStat().mean)
        assert HistogramStat().to_dict()["min"] is None

    def test_merged_tracks_extremes(self):
        low = HistogramStat(count=1, total=1.0, minimum=1.0, maximum=1.0)
        high = HistogramStat(count=1, total=9.0, minimum=9.0, maximum=9.0)
        merged = low.merged(high)
        assert merged.count == 2
        assert merged.mean == 5.0
        assert (merged.minimum, merged.maximum) == (1.0, 9.0)


class TestSpans:
    def test_nesting_builds_a_trace_tree(self):
        registry = MetricsRegistry()
        with registry.span("outer", layer="profiler"):
            with registry.span("inner.a"):
                pass
            with registry.span("inner.b"):
                pass
        snapshot = registry.snapshot()
        assert [record.name for record in snapshot.spans] == ["outer"]
        outer = snapshot.spans[0]
        assert [child.name for child in outer.children] == ["inner.a", "inner.b"]
        assert dict(outer.attributes) == {"layer": "profiler"}
        assert outer.duration >= max(c.duration for c in outer.children)

    def test_span_durations_feed_histograms(self):
        registry = MetricsRegistry()
        with registry.span("work"):
            pass
        assert registry.snapshot().histograms["span.work"].count == 1

    def test_iter_spans_walks_depth_first(self):
        registry = MetricsRegistry()
        with registry.span("a"):
            with registry.span("b"):
                pass
        with registry.span("c"):
            pass
        names = [r.name for r in telemetry.iter_spans(registry.snapshot())]
        assert names == ["a", "b", "c"]

    def test_out_of_order_exit_does_not_crash(self):
        registry = MetricsRegistry()
        outer = registry.span("outer")
        inner = registry.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # generator abandoned mid-span
        inner.__exit__(None, None, None)
        assert {r.name for r in registry.snapshot().spans} == {"outer", "inner"}


class TestNullRegistry:
    def test_records_nothing(self):
        registry = NullRegistry()
        registry.count("a")
        registry.gauge("b", 1.0)
        registry.observe("c", 2.0)
        with registry.span("d"):
            with registry.timer("e"):
                pass
        assert registry.snapshot() is None

    def test_span_reuses_one_shared_null_object(self):
        registry = NullRegistry()
        assert registry.span("a") is registry.span("b", k=1)
        assert registry.timer("t") is registry.span("a")

    def test_module_level_delegation_is_off_by_default(self):
        assert not telemetry.enabled()
        telemetry.count("never.recorded")
        with telemetry.span("never.recorded"):
            pass
        assert telemetry.registry().snapshot() is None


class TestGlobalRegistry:
    def test_enable_collects_and_disable_restores_noop(self, collecting):
        telemetry.count("cache.hit", 3)
        with telemetry.span("profiler.sweep", resolution=304):
            telemetry.observe("lat", 0.5)
        snapshot = collecting.snapshot()
        assert snapshot.counters["cache.hit"] == 3.0
        assert snapshot.spans[0].name == "profiler.sweep"
        telemetry.disable()
        assert not telemetry.enabled()
        assert isinstance(telemetry.registry(), NullRegistry)

    def test_install_swaps_and_returns_previous(self, collecting):
        private = MetricsRegistry()
        previous = telemetry.install(private)
        assert previous is collecting
        telemetry.count("unit.metric")
        telemetry.install(previous)
        assert private.snapshot().counters == {"unit.metric": 1.0}
        assert "unit.metric" not in collecting.snapshot().counters

    def test_reset_drops_state(self, collecting):
        telemetry.count("a")
        collecting.reset()
        assert collecting.snapshot().counters == {}


class TestStructuredLogging:
    def test_get_logger_namespaces_under_repro(self):
        assert telemetry.get_logger("system.executor").name == (
            "repro.system.executor"
        )
        assert telemetry.get_logger("repro.core").name == "repro.core"

    def test_json_formatter_emits_parseable_lines(self):
        stream = io.StringIO()
        telemetry.setup_logging(level="info", fmt="json", stream=stream)
        try:
            telemetry.log_event(
                telemetry.get_logger("test.json"),
                logging.INFO,
                "cache.corrupt",
                path="/tmp/x.npz",
                bytes=12,
            )
            record = json.loads(stream.getvalue().strip())
            assert record["event"] == "cache.corrupt"
            assert record["path"] == "/tmp/x.npz"
            assert record["bytes"] == 12
            assert record["logger"] == "repro.test.json"
        finally:
            telemetry.setup_logging(level="warning", fmt="human")

    def test_human_formatter_renders_fields(self):
        formatter = telemetry.HumanFormatter()
        record = logging.LogRecord(
            "repro.x", logging.WARNING, __file__, 1, "executor.fallback",
            None, None,
        )
        record.fields = {"reason": "PicklingError"}
        assert "executor.fallback reason=PicklingError" in formatter.format(record)

    def test_setup_logging_is_idempotent(self):
        root = telemetry.setup_logging(level="warning", fmt="human")
        before = len(root.handlers)
        telemetry.setup_logging(level="warning", fmt="human")
        assert len(root.handlers) == before

    def test_setup_logging_rejects_unknown_settings(self):
        with pytest.raises(ValueError):
            telemetry.setup_logging(level="loud")
        with pytest.raises(ValueError):
            telemetry.setup_logging(fmt="xml")

    def test_log_event_skips_disabled_levels(self):
        stream = io.StringIO()
        telemetry.setup_logging(level="error", fmt="json", stream=stream)
        try:
            telemetry.log_event(
                telemetry.get_logger("test.quiet"), logging.DEBUG, "noise"
            )
            assert stream.getvalue() == ""
        finally:
            telemetry.setup_logging(level="warning", fmt="human")


class TestDeterminism:
    """Telemetry is written, never read: outputs stay bit-identical."""

    def test_sweep_outputs_identical_with_telemetry_on_and_off(self):
        corpus = ua_detrac(frame_count=600, seed=13)

        def run_profile():
            query = AggregateQuery(corpus, yolo_v4_like(), Aggregate.AVG)
            profiler = DegradationProfiler(
                QueryProcessor(default_suite()), trials=3, vectorized=True
            )
            return profiler.profile_sampling_seeded(
                query, (0.05, 0.1, 0.2), root=29
            )

        baseline = run_profile()
        registry = telemetry.enable()
        try:
            instrumented = run_profile()
            snapshot = registry.snapshot()
        finally:
            telemetry.disable()
        assert np.array_equal(
            instrumented.error_bounds(), baseline.error_bounds()
        )
        assert [p.value for p in instrumented.points] == [
            p.value for p in baseline.points
        ]
        # The run was actually observed, not silently skipped.
        assert snapshot.counters["profiler.trials_priced"] > 0
        assert any(r.name == "profiler.sweep" for r in telemetry.iter_spans(snapshot))
