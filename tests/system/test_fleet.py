"""Tests for multi-camera fleet estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import mask_rcnn_like, yolo_v4_like
from repro.errors import ConfigurationError, EstimationError
from repro.interventions import InterventionPlan
from repro.system.camera import Camera
from repro.system.fleet import CameraFleet
from repro.video import night_street, ua_detrac


@pytest.fixture(scope="module")
def fleet_parts(suite, processor):
    downtown = Camera("downtown", ua_detrac(frame_count=2000), suite)
    suburb = Camera("suburb", night_street(frame_count=1500), suite)
    for camera in (downtown, suburb):
        camera.configure(fraction=0.2)
    return downtown, suburb


def model_for(camera):
    return yolo_v4_like() if camera.name == "downtown" else mask_rcnn_like()


class TestConstruction:
    def test_rejects_empty_fleet(self, processor):
        with pytest.raises(ConfigurationError):
            CameraFleet([], processor)

    def test_rejects_duplicate_names(self, fleet_parts, processor, suite):
        downtown, _ = fleet_parts
        clone = Camera("downtown", downtown.dataset, suite)
        with pytest.raises(ConfigurationError):
            CameraFleet([downtown, clone], processor)

    def test_total_frames(self, fleet_parts, processor):
        fleet = CameraFleet(list(fleet_parts), processor)
        assert fleet.total_frames == 3500


class TestFleetEstimate:
    def test_combined_answer_and_per_camera_parts(self, fleet_parts, processor, rng):
        fleet = CameraFleet(list(fleet_parts), processor)
        result = fleet.estimate_mean(model_for, rng)
        assert set(result.per_camera) == {"downtown", "suburb"}
        assert result.combined.method == "smokescreen-fleet"
        assert result.combined.universe_size == 3500

    def test_combined_interval_is_weighted(self, fleet_parts, processor, rng):
        fleet = CameraFleet(list(fleet_parts), processor)
        result = fleet.estimate_mean(model_for, rng)
        weights = {
            camera.name: camera.dataset.frame_count / fleet.total_frames
            for camera in fleet.cameras
        }
        expected_upper = sum(
            weights[name] * estimate.extras["upper"]
            for name, estimate in result.per_camera.items()
        )
        assert result.combined.extras["upper"] == pytest.approx(expected_upper)

    def test_combined_bound_covers_fleet_truth(self, fleet_parts, processor):
        """Empirical coverage of the union-budget combination."""
        fleet = CameraFleet(list(fleet_parts), processor)
        truths = []
        for camera in fleet.cameras:
            counts = model_for(camera).run(camera.dataset).counts
            truths.append((camera.dataset.frame_count, counts.mean()))
        total = sum(weight for weight, _ in truths)
        fleet_truth = sum(weight * mean for weight, mean in truths) / total

        violations = 0
        trials = 60
        rng = np.random.default_rng(9)
        for _ in range(trials):
            result = fleet.estimate_mean(model_for, rng)
            error = abs(result.combined.value - fleet_truth) / fleet_truth
            if error > result.combined.error_bound:
                violations += 1
        assert violations / trials <= 0.05

    def test_per_camera_budget_split(self, fleet_parts, processor, rng):
        """Per-camera intervals use delta/k, so each is wider than a
        standalone delta interval would be."""
        downtown, suburb = fleet_parts
        fleet = CameraFleet([downtown, suburb], processor)
        result = fleet.estimate_mean(model_for, rng, delta=0.05)
        solo_fleet = CameraFleet([downtown], processor)
        solo = solo_fleet.estimate_mean(model_for, rng, delta=0.05)
        # Same camera, same delta, but the two-camera run budgets 0.025:
        # its per-camera bound is looser or equal on average. (Different
        # random draws, so compare the deterministic radius via repeated
        # trials would be noisy; check the budget is applied instead.)
        assert result.per_camera["downtown"].n == solo.per_camera["downtown"].n

    def test_rejects_bad_delta(self, fleet_parts, processor, rng):
        fleet = CameraFleet(list(fleet_parts), processor)
        with pytest.raises(EstimationError):
            fleet.estimate_mean(model_for, rng, delta=0.0)

    def test_configure_all(self, fleet_parts, processor):
        fleet = CameraFleet(list(fleet_parts), processor)
        plan = InterventionPlan.from_knobs(f=0.1)
        fleet.configure_all(plan)
        for camera in fleet.cameras:
            assert camera.plan is plan


class TestBernsteinSerflingRadius:
    """The [8] variance-adaptive without-replacement radius."""

    def test_tighter_than_hs_for_low_variance_data(self):
        from repro.stats.inequalities import (
            empirical_bernstein_serfling_radius,
            hoeffding_serfling_radius,
        )

        # Low variance relative to range: EBS wins at moderate n.
        ebs = empirical_bernstein_serfling_radius(
            2000, 10_000, 0.05, value_range=100.0, sample_std=2.0
        )
        hs = hoeffding_serfling_radius(2000, 10_000, 0.05, 100.0)
        assert ebs < hs

    def test_looser_than_hs_at_tiny_n(self):
        from repro.stats.inequalities import (
            empirical_bernstein_serfling_radius,
            hoeffding_serfling_radius,
        )

        ebs = empirical_bernstein_serfling_radius(
            10, 10_000, 0.05, value_range=100.0, sample_std=30.0
        )
        hs = hoeffding_serfling_radius(10, 10_000, 0.05, 100.0)
        assert ebs > hs

    def test_coverage(self):
        from repro.stats.inequalities import empirical_bernstein_serfling_radius

        rng = np.random.default_rng(13)
        population = rng.poisson(5.0, size=4000).astype(float)
        mu = population.mean()
        value_range = population.max() - population.min()
        misses = 0
        trials = 300
        for _ in range(trials):
            sample = rng.choice(population, size=400, replace=False)
            radius = empirical_bernstein_serfling_radius(
                400, population.size, 0.1, value_range, float(sample.std())
            )
            if abs(sample.mean() - mu) > radius:
                misses += 1
        assert misses / trials <= 0.1

    def test_validation(self):
        from repro.errors import ConfigurationError
        from repro.stats.inequalities import empirical_bernstein_serfling_radius

        with pytest.raises(ConfigurationError):
            empirical_bernstein_serfling_radius(0, 10, 0.05, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            empirical_bernstein_serfling_radius(5, 10, 0.05, 1.0, -1.0)
