"""Tests for multi-camera fleet estimation and resilient execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import mask_rcnn_like, yolo_v4_like
from repro.errors import ConfigurationError, EstimationError, TransmissionError
from repro.interventions import InterventionPlan
from repro.system.camera import Camera
from repro.system.faults import FaultModel
from repro.system.fleet import CameraFleet, CameraStatus, FleetQueryProcessor
from repro.system.resilience import BreakerState, RetryPolicy
from repro.video import night_street, ua_detrac


class _EmptyDataset:
    """A dataset-shaped object with no frames (misconfiguration)."""

    name = "empty"
    frame_count = 0


@pytest.fixture(scope="module")
def fleet_parts(suite, processor):
    downtown = Camera("downtown", ua_detrac(frame_count=2000), suite)
    suburb = Camera("suburb", night_street(frame_count=1500), suite)
    for camera in (downtown, suburb):
        camera.configure(fraction=0.2)
    return downtown, suburb


def model_for(camera):
    return yolo_v4_like() if camera.name == "downtown" else mask_rcnn_like()


class TestConstruction:
    def test_rejects_empty_fleet(self, processor):
        with pytest.raises(ConfigurationError):
            CameraFleet([], processor)

    def test_rejects_duplicate_names(self, fleet_parts, processor, suite):
        downtown, _ = fleet_parts
        clone = Camera("downtown", downtown.dataset, suite)
        with pytest.raises(ConfigurationError):
            CameraFleet([downtown, clone], processor)

    def test_total_frames(self, fleet_parts, processor):
        fleet = CameraFleet(list(fleet_parts), processor)
        assert fleet.total_frames == 3500

    def test_rejects_empty_dataset_camera(self, fleet_parts, processor, suite):
        downtown, _ = fleet_parts
        dead = Camera("dead", _EmptyDataset(), suite)
        with pytest.raises(ConfigurationError, match="empty dataset"):
            CameraFleet([downtown, dead], processor)
        with pytest.raises(ConfigurationError, match="empty dataset"):
            FleetQueryProcessor([downtown, dead], processor)

    def test_resilient_processor_shares_fleet_validation(self, processor):
        with pytest.raises(ConfigurationError):
            FleetQueryProcessor([], processor)


class TestFleetEstimate:
    def test_combined_answer_and_per_camera_parts(self, fleet_parts, processor, rng):
        fleet = CameraFleet(list(fleet_parts), processor)
        result = fleet.estimate_mean(model_for, rng)
        assert set(result.per_camera) == {"downtown", "suburb"}
        assert result.combined.method == "smokescreen-fleet"
        assert result.combined.universe_size == 3500

    def test_combined_interval_is_weighted(self, fleet_parts, processor, rng):
        fleet = CameraFleet(list(fleet_parts), processor)
        result = fleet.estimate_mean(model_for, rng)
        weights = {
            camera.name: camera.dataset.frame_count / fleet.total_frames
            for camera in fleet.cameras
        }
        expected_upper = sum(
            weights[name] * estimate.extras["upper"]
            for name, estimate in result.per_camera.items()
        )
        assert result.combined.extras["upper"] == pytest.approx(expected_upper)

    def test_combined_bound_covers_fleet_truth(self, fleet_parts, processor):
        """Empirical coverage of the union-budget combination."""
        fleet = CameraFleet(list(fleet_parts), processor)
        truths = []
        for camera in fleet.cameras:
            counts = model_for(camera).run(camera.dataset).counts
            truths.append((camera.dataset.frame_count, counts.mean()))
        total = sum(weight for weight, _ in truths)
        fleet_truth = sum(weight * mean for weight, mean in truths) / total

        violations = 0
        trials = 60
        rng = np.random.default_rng(9)
        for _ in range(trials):
            result = fleet.estimate_mean(model_for, rng)
            error = abs(result.combined.value - fleet_truth) / fleet_truth
            if error > result.combined.error_bound:
                violations += 1
        assert violations / trials <= 0.05

    def test_per_camera_budget_split(self, fleet_parts, processor, rng):
        """Per-camera intervals use delta/k, so each is wider than a
        standalone delta interval would be."""
        downtown, suburb = fleet_parts
        fleet = CameraFleet([downtown, suburb], processor)
        result = fleet.estimate_mean(model_for, rng, delta=0.05)
        solo_fleet = CameraFleet([downtown], processor)
        solo = solo_fleet.estimate_mean(model_for, rng, delta=0.05)
        # Same camera, same delta, but the two-camera run budgets 0.025:
        # its per-camera bound is looser or equal on average. (Different
        # random draws, so compare the deterministic radius via repeated
        # trials would be noisy; check the budget is applied instead.)
        assert result.per_camera["downtown"].n == solo.per_camera["downtown"].n

    def test_rejects_bad_delta(self, fleet_parts, processor, rng):
        fleet = CameraFleet(list(fleet_parts), processor)
        with pytest.raises(EstimationError):
            fleet.estimate_mean(model_for, rng, delta=0.0)

    def test_configure_all(self, fleet_parts, processor):
        fleet = CameraFleet(list(fleet_parts), processor)
        plan = InterventionPlan.from_knobs(f=0.1)
        fleet.configure_all(plan)
        for camera in fleet.cameras:
            assert camera.plan is plan

    def test_same_seed_is_bit_identical(self, fleet_parts, processor):
        """Fleet execution consumes only the passed generator: repeated
        runs from freshly seeded generators match bit for bit (no
        module-level RNG anywhere in repro.system)."""
        fleet = CameraFleet(list(fleet_parts), processor)
        first = fleet.estimate_mean(model_for, np.random.default_rng(42))
        second = fleet.estimate_mean(model_for, np.random.default_rng(42))
        assert first.combined.value == second.combined.value
        assert first.combined.error_bound == second.combined.error_bound
        for name in first.per_camera:
            assert first.per_camera[name] == second.per_camera[name]


@pytest.fixture(scope="module")
def chaos_cameras(suite):
    datasets = [
        ua_detrac(frame_count=1200),
        night_street(frame_count=1000),
        ua_detrac(frame_count=800),
        night_street(frame_count=1500),
    ]
    cameras = []
    for index, dataset in enumerate(datasets):
        camera = Camera(f"cam{index}", dataset, suite)
        camera.configure(fraction=0.25)
        cameras.append(camera)
    return cameras


def _surviving_truth(cameras, surviving):
    weighted = 0.0
    frames = 0
    for camera in cameras:
        if camera.name not in surviving:
            continue
        counts = model_for(camera).run(camera.dataset).counts
        weighted += counts.mean() * camera.dataset.frame_count
        frames += camera.dataset.frame_count
    return weighted / frames


class TestFleetQueryProcessor:
    def test_fault_free_execution_covers_all_cameras(
        self, chaos_cameras, processor
    ):
        fleet = FleetQueryProcessor(chaos_cameras, processor)
        report = fleet.execute(model_for, delta=0.05, seed=1)
        assert report.lost == ()
        assert report.coverage == 1.0
        assert report.share == pytest.approx(0.05 / 4)
        assert set(report.surviving) == {c.name for c in chaos_cameras}
        assert all(
            r.status is CameraStatus.OK for r in report.per_camera.values()
        )
        assert report.combined.method == "smokescreen-fleet-resilient"

    def test_rejects_bad_delta(self, chaos_cameras, processor):
        fleet = FleetQueryProcessor(chaos_cameras, processor)
        with pytest.raises(EstimationError):
            fleet.execute(model_for, delta=1.5, seed=0)

    def test_lost_camera_resplits_delta_and_reports(
        self, chaos_cameras, processor
    ):
        # Full outage of some cameras: find a fault seed losing >= 1.
        faults = FaultModel(outage_probability=0.5)
        for fault_seed in range(20):
            fleet = FleetQueryProcessor(
                chaos_cameras, processor, faults=faults, fault_seed=fault_seed
            )
            try:
                report = fleet.execute(model_for, delta=0.05, seed=2)
            except TransmissionError:
                continue
            if report.lost:
                break
        else:
            pytest.fail("no fault seed lost a camera")
        survivors = len(report.surviving)
        assert report.share == pytest.approx(0.05 / survivors)
        assert report.coverage < 1.0
        total = sum(c.dataset.frame_count for c in chaos_cameras)
        surviving_frames = sum(
            c.dataset.frame_count
            for c in chaos_cameras
            if c.name in report.surviving
        )
        assert report.coverage == pytest.approx(surviving_frames / total)
        assert report.combined.universe_size == surviving_frames
        for name in report.lost:
            lost_report = report.per_camera[name]
            assert lost_report.status is CameraStatus.LOST
            assert lost_report.estimate is None
            assert lost_report.reason

    def test_chaos_reports_are_reproducible_from_seeds(
        self, chaos_cameras, processor
    ):
        faults = FaultModel(
            outage_probability=0.3,
            transient_failure_probability=0.2,
            frame_drop_probability=0.1,
            straggler_probability=0.2,
        )
        reports = []
        for _ in range(2):
            fleet = FleetQueryProcessor(
                chaos_cameras, processor, faults=faults, fault_seed=7
            )
            reports.append(fleet.execute(model_for, delta=0.05, seed=3))
        first, second = reports
        assert first.combined == second.combined
        assert first.per_camera == second.per_camera
        assert first.lost == second.lost
        assert first.elapsed == second.elapsed

    def test_never_raises_and_bound_holds_across_200_seeded_trials(
        self, chaos_cameras, processor
    ):
        """The acceptance property: under outage up to 0.5 the processor
        answers every surviving-camera query, and the interval covers the
        exact surviving-fleet answer at the configured confidence."""
        delta = 0.05
        faults = FaultModel(
            outage_probability=0.5,
            transient_failure_probability=0.2,
            frame_drop_probability=0.15,
            frame_corruption_probability=0.05,
            straggler_probability=0.1,
        )
        answered = 0
        unavailable = 0
        violations = 0
        for trial in range(200):
            fleet = FleetQueryProcessor(
                chaos_cameras, processor, faults=faults, fault_seed=trial
            )
            try:
                report = fleet.execute(model_for, delta=delta, seed=trial)
            except TransmissionError:
                unavailable += 1  # every camera lost: nothing to answer from
                continue
            answered += 1
            truth = _surviving_truth(chaos_cameras, report.surviving)
            error = abs(report.combined.value - truth) / truth
            if error > report.combined.error_bound:
                violations += 1
        # All-lost fleets are rare even at 0.5 outage (~0.5^4 + retries).
        assert answered >= 150
        assert unavailable + answered == 200
        assert violations / answered <= delta

    def test_all_cameras_lost_raises_transmission_error(
        self, chaos_cameras, processor
    ):
        fleet = FleetQueryProcessor(
            chaos_cameras, processor,
            faults=FaultModel(outage_probability=1.0),
        )
        with pytest.raises(TransmissionError, match="no camera delivered"):
            fleet.execute(model_for, delta=0.05, seed=0)

    def test_breaker_opens_after_repeated_failures_and_skips(
        self, chaos_cameras, processor
    ):
        fleet = FleetQueryProcessor(
            chaos_cameras, processor,
            faults=FaultModel(outage_probability=1.0),
            breaker_threshold=2,
            breaker_cooldown=1000.0,
        )
        for seed in range(2):
            with pytest.raises(TransmissionError):
                fleet.execute(model_for, delta=0.05, seed=seed)
        for camera in chaos_cameras:
            assert fleet.breaker_state(camera.name) is BreakerState.OPEN
        with pytest.raises(TransmissionError):
            fleet.execute(model_for, delta=0.05, seed=99)
        for camera in chaos_cameras:
            assert fleet.ledger.health(camera.name).skipped_queries == 1
            # The skipped query made no new attempts.
            assert fleet.ledger.health(camera.name).attempts == 2

    def test_health_ledger_accumulates_across_queries(
        self, chaos_cameras, processor
    ):
        faults = FaultModel(
            transient_failure_probability=0.3, frame_drop_probability=0.2
        )
        fleet = FleetQueryProcessor(
            chaos_cameras, processor, faults=faults, fault_seed=3,
            retry_policy=RetryPolicy(max_attempts=4),
        )
        for seed in range(3):
            fleet.execute(model_for, delta=0.05, seed=seed)
        totals = fleet.ledger.summary()
        assert set(totals) == {c.name for c in chaos_cameras}
        assert sum(h.attempts for h in totals.values()) >= 3 * len(chaos_cameras)
        assert sum(h.frames_dropped for h in totals.values()) > 0
        assert fleet.clock > 0.0

    def test_unknown_camera_breaker_lookup_rejected(
        self, chaos_cameras, processor
    ):
        fleet = FleetQueryProcessor(chaos_cameras, processor)
        with pytest.raises(ConfigurationError):
            fleet.breaker_state("nope")


class TestBernsteinSerflingRadius:
    """The [8] variance-adaptive without-replacement radius."""

    def test_tighter_than_hs_for_low_variance_data(self):
        from repro.stats.inequalities import (
            empirical_bernstein_serfling_radius,
            hoeffding_serfling_radius,
        )

        # Low variance relative to range: EBS wins at moderate n.
        ebs = empirical_bernstein_serfling_radius(
            2000, 10_000, 0.05, value_range=100.0, sample_std=2.0
        )
        hs = hoeffding_serfling_radius(2000, 10_000, 0.05, 100.0)
        assert ebs < hs

    def test_looser_than_hs_at_tiny_n(self):
        from repro.stats.inequalities import (
            empirical_bernstein_serfling_radius,
            hoeffding_serfling_radius,
        )

        ebs = empirical_bernstein_serfling_radius(
            10, 10_000, 0.05, value_range=100.0, sample_std=30.0
        )
        hs = hoeffding_serfling_radius(10, 10_000, 0.05, 100.0)
        assert ebs > hs

    def test_coverage(self):
        from repro.stats.inequalities import empirical_bernstein_serfling_radius

        rng = np.random.default_rng(13)
        population = rng.poisson(5.0, size=4000).astype(float)
        mu = population.mean()
        value_range = population.max() - population.min()
        misses = 0
        trials = 300
        for _ in range(trials):
            sample = rng.choice(population, size=400, replace=False)
            radius = empirical_bernstein_serfling_radius(
                400, population.size, 0.1, value_range, float(sample.std())
            )
            if abs(sample.mean() - mu) > radius:
                misses += 1
        assert misses / trials <= 0.1

    def test_validation(self):
        from repro.errors import ConfigurationError
        from repro.stats.inequalities import empirical_bernstein_serfling_radius

        with pytest.raises(ConfigurationError):
            empirical_bernstein_serfling_radius(0, 10, 0.05, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            empirical_bernstein_serfling_radius(5, 10, 0.05, 1.0, -1.0)


class TestFleetSentinelLocalization:
    """The fleet sentinel names the camera whose profile broke."""

    @pytest.fixture(scope="class")
    def sentinel_cameras(self, suite):
        cameras = [
            Camera("plaza", ua_detrac(frame_count=2000), suite),
            Camera("bridge", night_street(frame_count=2000), suite),
            Camera("depot", ua_detrac(frame_count=2000, seed=9), suite),
        ]
        for camera in cameras:
            camera.configure(fraction=0.5)
        return cameras

    @staticmethod
    def _armed_sentinel(cameras, processor):
        from repro.estimators.base import Estimate
        from repro.query.aggregates import Aggregate
        from repro.query.query import AggregateQuery
        from repro.system.fleet import FleetSentinel

        references = {}
        for camera in cameras:
            query = AggregateQuery(camera.dataset, model_for(camera), Aggregate.AVG)
            truth = processor.true_answer(query)
            references[camera.name] = Estimate(
                value=truth,
                error_bound=0.0,
                method="exact",
                n=camera.dataset.frame_count,
                universe_size=camera.dataset.frame_count,
            )
        bounds = {name: 0.1 for name in references}
        return FleetSentinel(references, bounds, patience=2)

    def test_clean_fleet_flags_nothing(self, sentinel_cameras, processor):
        fleet = FleetQueryProcessor(
            sentinel_cameras,
            processor,
            sentinel=self._armed_sentinel(sentinel_cameras, processor),
        )
        report = fleet.execute(model_for, seed=11)
        assert report.sentinel is not None
        assert report.sentinel.flagged == ()
        assert set(report.sentinel.verdicts) == {"plaza", "bridge", "depot"}
        assert any("bounds held" in line for line in report.summary_lines())

    def test_occluded_camera_is_localized(self, sentinel_cameras, processor):
        from repro.interventions import Occlusion

        def hostile_model_for(camera):
            model = model_for(camera)
            if camera.name == "bridge":
                return Occlusion(0.7).attach(model)
            return model

        fleet = FleetQueryProcessor(
            sentinel_cameras,
            processor,
            sentinel=self._armed_sentinel(sentinel_cameras, processor),
        )
        report = fleet.execute(hostile_model_for, seed=11)
        assert report.sentinel is not None
        assert report.sentinel.flagged == ("bridge",)
        assert report.sentinel.verdicts["bridge"].tripped
        assert not report.sentinel.verdicts["plaza"].tripped
        assert not report.sentinel.verdicts["depot"].tripped
        assert any(
            "VIOLATED" in line and "bridge" in line
            for line in report.summary_lines()
        )

    def test_localization_is_deterministic(self, sentinel_cameras, processor):
        from repro.interventions import TargetedFrameCorruption

        def hostile_model_for(camera):
            model = model_for(camera)
            if camera.name == "depot":
                return TargetedFrameCorruption(0.4).attach(model)
            return model

        flagged = []
        for _ in range(2):
            fleet = FleetQueryProcessor(
                sentinel_cameras,
                processor,
                sentinel=self._armed_sentinel(sentinel_cameras, processor),
            )
            flagged.append(fleet.execute(hostile_model_for, seed=5).sentinel.flagged)
        assert flagged[0] == flagged[1] == ("depot",)

    def test_sentinel_rejects_mismatched_arming(self):
        from repro.estimators.base import Estimate
        from repro.system.fleet import FleetSentinel

        reference = Estimate(
            value=1.0, error_bound=0.0, method="exact", n=1, universe_size=1
        )
        with pytest.raises(ConfigurationError):
            FleetSentinel({"a": reference}, {"b": 0.1})


class TestFleetExecutorParity:
    """The pooled per-camera values stage changes nothing but wall time."""

    def test_results_identical_with_and_without_executor(
        self, chaos_cameras, processor
    ):
        from repro.system.executor import (
            ExecutorConfig,
            ParallelExecutor,
            shutdown_pool,
        )

        faults = FaultModel(outage_probability=0.2, frame_drop_probability=0.1)

        def one_report(executor):
            fleet = FleetQueryProcessor(
                chaos_cameras,
                processor,
                faults=faults,
                fault_seed=4,
                executor=executor,
            )
            return fleet.execute(model_for, delta=0.05, seed=21)

        serial = one_report(None)
        try:
            pooled = one_report(ParallelExecutor(ExecutorConfig(workers=2)))
        finally:
            shutdown_pool()
        assert pooled.combined.value == serial.combined.value
        assert pooled.combined.error_bound == serial.combined.error_bound
        assert pooled.surviving == serial.surviving
        assert pooled.lost == serial.lost
        for name, report in serial.per_camera.items():
            twin = pooled.per_camera[name]
            assert (twin.estimate is None) == (report.estimate is None)
            if report.estimate is not None:
                assert twin.estimate.value == report.estimate.value
                assert twin.estimate.error_bound == report.estimate.error_bound
