"""Tests for distributed trace propagation and the trace ring.

The contracts under test:

- **Context minting**: inbound ``X-Repro-Trace-Id`` values are honoured
  when well-formed and replaced when hostile; contexts chain
  parent→child through nested spans on one task.
- **Clock anchoring** (regression): spans recorded inside pool worker
  processes carry real epoch-aligned wall-clock starts that land inside
  the parent's map interval — before anchoring they deserialized with
  ``start == 0.0`` and rendered as a bogus 1970 timeline.
- **Ring semantics**: bounded capacity, id-or-prefix lookup, newest-
  first summaries.
- **Flight recorder**: dumps annotate the active run and append a
  standalone schema-valid ledger record immediately.
- **End-to-end continuity**: one trace id spans the HTTP handler, the
  coalesced micro-batch kernel span and the ``/traces`` readout.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

from repro.system import shm, telemetry
from repro.system.executor import (
    ExecutorConfig,
    ParallelExecutor,
    shutdown_pool,
)
from repro.system.observe import ledger as run_ledger
from repro.system.observe import tracing
from repro.system.serve import ServeConfig, ServeDaemon, post_json

FRAMES = 1200


def _triple(value: int) -> int:
    """Picklable unit for pool dispatch tests."""
    return value * 3


@pytest.fixture(autouse=True)
def clean_process_state():
    shutdown_pool()
    shm.release_all()
    tracing.ring().clear()
    yield
    shutdown_pool()
    shm.release_all()
    tracing.ring().clear()
    if telemetry.enabled():
        telemetry.disable()


class TestTraceContext:
    def test_mint_generates_distinct_ids(self):
        a, b = tracing.mint(), tracing.mint()
        assert a.trace_id != b.trace_id
        assert a.parent_span_id is None

    def test_mint_honours_wellformed_inbound_id(self):
        ctx = tracing.mint(trace_id="FEEDFACE00112233")
        assert ctx.trace_id == "feedface00112233"

    @pytest.mark.parametrize(
        "hostile",
        [
            "not hex at all!",
            "a" * 65,
            "",
            "   ",
            'abc"def',
            "abc\ndef",
        ],
    )
    def test_mint_discards_hostile_inbound_id(self, hostile):
        ctx = tracing.mint(trace_id=hostile)
        assert ctx.trace_id != hostile
        assert tracing.TRACE_ID_PATTERN.match(ctx.trace_id)

    def test_child_keeps_trace_and_tenant(self):
        root = tracing.mint(tenant="acme")
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.tenant == "acme"
        assert child.span_id != root.span_id

    def test_nested_spans_chain_parent_child(self):
        with tracing.use(tracing.mint()):
            with tracing.span("outer") as outer:
                with tracing.span("inner") as inner:
                    assert inner.trace_id == outer.trace_id
                    assert inner.parent_span_id == outer.span_id
        events = {e.name: e for e in tracing.ring().events()}
        assert events["inner"].parent_span_id == events["outer"].span_id

    def test_context_restored_after_span(self):
        assert tracing.current_context() is None
        with tracing.span("solo"):
            assert tracing.current_context() is not None
        assert tracing.current_context() is None

    def test_run_with_installs_context(self):
        ctx = tracing.mint(tenant="t1")
        seen = tracing.run_with(ctx, tracing.current_context)
        assert seen is ctx
        assert tracing.current_context() is None


class TestTraceRing:
    def test_capacity_bounded(self):
        ring = tracing.TraceRing(capacity=4)
        for index in range(10):
            ring.record(
                tracing.SpanEvent(
                    trace_id=f"t{index}",
                    span_id=f"s{index}",
                    parent_span_id=None,
                    name="unit",
                    tenant=None,
                    start=float(index + 1),
                    duration=0.001,
                    pid=1,
                )
            )
        assert len(ring) == 4
        assert [e.trace_id for e in ring.events()] == ["t6", "t7", "t8", "t9"]

    def test_trace_lookup_exact_and_prefix(self):
        ring = tracing.TraceRing()
        for trace_id in ("abcd1234", "abff0000"):
            ring.record(
                tracing.SpanEvent(
                    trace_id=trace_id,
                    span_id="s",
                    parent_span_id=None,
                    name="unit",
                    tenant=None,
                    start=1.0,
                    duration=0.0,
                    pid=1,
                )
            )
        assert [e.trace_id for e in ring.trace("abcd1234")] == ["abcd1234"]
        assert [e.trace_id for e in ring.trace("abff")] == ["abff0000"]
        assert ring.trace("zzz") == []

    def test_summaries_newest_first_with_roots(self):
        ring = tracing.TraceRing()
        for offset, trace_id in enumerate(("old", "new")):
            base = 100.0 + offset * 10
            ring.record(
                tracing.SpanEvent(
                    trace_id=trace_id,
                    span_id="root",
                    parent_span_id=None,
                    name="serve.request",
                    tenant="acme",
                    start=base,
                    duration=0.5,
                    pid=1,
                )
            )
            ring.record(
                tracing.SpanEvent(
                    trace_id=trace_id,
                    span_id="kid",
                    parent_span_id="root",
                    name="serve.estimate_rows",
                    tenant="acme",
                    start=base + 0.1,
                    duration=0.2,
                    pid=2,
                )
            )
        summaries = ring.traces()
        assert [s["trace_id"] for s in summaries] == ["new", "old"]
        top = summaries[0]
        assert top["root"] == "serve.request"
        assert top["spans"] == 2
        assert top["tenants"] == ["acme"]
        assert top["pids"] == [1, 2]
        assert top["duration_s"] == pytest.approx(0.5)

    def test_chrome_payload_round_trips_dict_events(self):
        with tracing.span("outer", flavour="x"):
            with tracing.span("inner"):
                pass
        dicts = [e.to_dict() for e in tracing.ring().events()]
        payload = tracing.chrome_payload(dicts)
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in slices} == {"outer", "inner"}
        inner = next(e for e in slices if e["name"] == "inner")
        outer = next(e for e in slices if e["name"] == "outer")
        assert inner["ts"] >= outer["ts"]
        assert inner["args"]["trace_id"] == outer["args"]["trace_id"]
        assert outer["args"]["flavour"] == "x"
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metadata and metadata[0]["args"]["name"].startswith("repro pid")


class TestWorkerSpanAnchoring:
    """Worker spans must sit on the parent's wall-clock timeline."""

    def test_worker_unit_spans_epoch_aligned(self):
        registry = telemetry.enable()
        before = time.time()
        results = ParallelExecutor(ExecutorConfig(workers=2)).map(
            _triple, list(range(8))
        )
        after = time.time()
        assert results == [value * 3 for value in range(8)]
        units = [
            record
            for record in telemetry.iter_spans(registry.snapshot())
            if record.name == "executor.unit"
        ]
        # The first unit is the in-process probe; the rest cross the pool.
        assert len(units) == 7
        for record in units:
            # Pre-anchoring these deserialized with start == 0.0 and the
            # Chrome exporter drew worker spans at the 1970 epoch.
            assert before - 1.0 <= record.start <= after + 1.0

    def test_worker_spans_ingested_into_ring_with_worker_pids(self):
        telemetry.enable()
        ParallelExecutor(ExecutorConfig(workers=2)).map(
            _triple, list(range(8))
        )
        events = tracing.ring().events()
        unit_events = [e for e in events if e.name == "executor.unit"]
        map_events = [e for e in events if e.name == "executor.map"]
        assert len(unit_events) == 7
        assert len(map_events) == 1
        map_event = map_events[0]
        for event in unit_events:
            assert event.trace_id == map_event.trace_id
            assert event.parent_span_id is not None
            assert event.pid != 0
        assert any(e.pid != os.getpid() for e in unit_events)

    def test_ingest_skips_untagged_spans(self):
        registry = telemetry.MetricsRegistry()
        previous = telemetry.install(registry)
        try:
            with telemetry.span("plain.kernel"):
                pass
            with telemetry.span(
                "tagged", trace_id="cafe", span_id="01", pid=42
            ):
                pass
        finally:
            telemetry.install(previous)
        count = tracing.ingest_snapshot_spans(registry.snapshot())
        assert count == 1
        events = tracing.ring().events()
        assert [e.name for e in events] == ["tagged"]
        assert events[0].pid == 42


class TestFlightRecorder:
    def test_dump_appends_standalone_ledger_record(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        with tracing.span("serve.request", endpoint="estimate"):
            pass
        run_ledger.begin_run("serve", {}, str(ledger))
        try:
            record = tracing.dump_flight_record(
                "unhandled_error", error="boom"
            )
        finally:
            run_ledger.finish_run(status="ok", exit_code=0)
        assert record["reason"] == "unhandled_error"
        assert record["error"] == "boom"
        assert [s["name"] for s in record["spans"]] == ["serve.request"]
        records = run_ledger.read_runs(ledger)
        flights = [r for r in records if r["command"] == "flight-recorder"]
        assert len(flights) == 1
        flight = flights[0]["facts"]["flight_record"]
        assert flight["reason"] == "unhandled_error"
        assert flight["spans"][0]["name"] == "serve.request"
        # The ordinary finish_run record carries the annotation too.
        finished = [r for r in records if r["command"] == "serve"]
        assert finished[0]["facts"]["flight_record"]["spans"] == 1

    def test_dump_without_active_run_still_returns_record(self):
        with tracing.span("lonely"):
            pass
        record = tracing.dump_flight_record("sigquit")
        assert record["reason"] == "sigquit"
        assert record["error"] is None
        assert len(record["spans"]) == 1


class TestServeTraceContinuity:
    """One trace id spans HTTP handler → batcher → kernel span."""

    def _run(self, coro_factory):
        async def wrapped():
            daemon = ServeDaemon(
                ServeConfig(
                    port=0,
                    datasets=("ua-detrac",),
                    frames=FRAMES,
                    tick_seconds=0.002,
                )
            )
            port = await daemon.start()
            try:
                return await coro_factory(daemon, port)
            finally:
                await daemon.stop()

        return asyncio.run(wrapped())

    def test_inbound_header_threads_through_kernel(self):
        inbound = "feedface00112233"

        async def scenario(daemon, port):
            status, body = await post_json(
                "127.0.0.1",
                port,
                "/estimate",
                {"dataset": "ua-detrac", "fraction": 0.25, "seed": 3,
                 "tenant": "acme"},
                headers={"X-Repro-Trace-Id": inbound},
            )
            assert status == 200, body
            status, listing = await post_json("127.0.0.1", port, "/traces")
            assert status == 200
            ids = [t["trace_id"] for t in listing["traces"]]
            assert inbound in ids
            status, detail = await post_json(
                "127.0.0.1", port, f"/traces/{inbound}"
            )
            assert status == 200
            names = [span["name"] for span in detail["spans"]]
            assert "serve.request" in names
            assert "serve.estimate_rows" in names
            request_span = next(
                s for s in detail["spans"] if s["name"] == "serve.request"
            )
            kernel_span = next(
                s
                for s in detail["spans"]
                if s["name"] == "serve.estimate_rows"
            )
            assert request_span["tenant"] == "acme"
            assert request_span["attributes"]["endpoint"] == "estimate"
            assert kernel_span["trace_id"] == inbound
            # Prefix lookup works over the wire too.
            status, by_prefix = await post_json(
                "127.0.0.1", port, f"/traces/{inbound[:8]}"
            )
            assert status == 200
            assert by_prefix["trace_id"] == inbound
            return True

        assert self._run(scenario)

    def test_coalesced_batch_links_all_requests(self):
        async def scenario(daemon, port):
            payload = {"dataset": "ua-detrac", "fraction": 0.25}
            results = await asyncio.gather(
                *(
                    post_json(
                        "127.0.0.1",
                        port,
                        "/estimate",
                        {**payload, "seed": seed},
                        headers={
                            "X-Repro-Trace-Id": f"aaaa000000000{seed:03d}"
                        },
                    )
                    for seed in range(6)
                )
            )
            assert all(status == 200 for status, _ in results)
            kernel_events = [
                e
                for e in tracing.ring().events()
                if e.name == "serve.estimate_rows"
            ]
            assert kernel_events
            linked = set()
            for event in kernel_events:
                attrs = dict(event.attributes)
                linked.update(attrs.get("link_trace_ids", ()))
            assert linked == {f"aaaa000000000{seed:03d}" for seed in range(6)}
            return True

        assert self._run(scenario)

    def test_scrape_endpoints_do_not_pollute_the_ring(self):
        async def scenario(daemon, port):
            for _ in range(3):
                status, _ = await post_json("127.0.0.1", port, "/stats")
                assert status == 200
                status, _ = await post_json("127.0.0.1", port, "/healthz")
                assert status == 200
            assert all(
                e.name != "serve.request" for e in tracing.ring().events()
            )
            return True

        assert self._run(scenario)

    def test_stats_exposes_slo_window(self):
        async def scenario(daemon, port):
            for seed in range(4):
                status, _ = await post_json(
                    "127.0.0.1",
                    port,
                    "/estimate",
                    {"dataset": "ua-detrac", "fraction": 0.25, "seed": seed},
                )
                assert status == 200
            status, stats = await post_json("127.0.0.1", port, "/stats")
            assert status == 200
            slo = stats["slo"]
            assert "estimate" in slo
            window = slo["estimate"]
            assert window["count"] == 4
            assert 0 < window["p50_seconds"] <= window["p99_seconds"]
            return True

        assert self._run(scenario)
