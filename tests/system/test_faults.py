"""Tests for fault injection, retry/backoff, and the circuit breaker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    CameraOutageError,
    ConfigurationError,
    FaultInjectionError,
    TransmissionError,
)
from repro.system.camera import Camera
from repro.system.faults import (
    ChannelDelivery,
    FaultInjector,
    FaultModel,
    FaultyChannel,
    transmit_with_retry,
)
from repro.system.resilience import (
    BreakerState,
    CircuitBreaker,
    HealthLedger,
    RetryPolicy,
)
from repro.video import ua_detrac


@pytest.fixture(scope="module")
def camera(suite):
    cam = Camera("chaos-cam", ua_detrac(frame_count=1200), suite)
    cam.configure(fraction=0.2)
    return cam


class TestFaultModel:
    def test_null_by_default(self):
        assert FaultModel().is_null

    @pytest.mark.parametrize("field", [
        "outage_probability",
        "transient_failure_probability",
        "frame_drop_probability",
        "frame_corruption_probability",
        "straggler_probability",
    ])
    def test_rejects_bad_probability(self, field):
        with pytest.raises(FaultInjectionError):
            FaultModel(**{field: 1.5})
        with pytest.raises(FaultInjectionError):
            FaultModel(**{field: -0.1})

    def test_rejects_negative_latency(self):
        with pytest.raises(FaultInjectionError):
            FaultModel(straggler_latency=-1.0)
        with pytest.raises(FaultInjectionError):
            FaultModel(nominal_latency=-0.1)

    def test_injector_rejects_non_model(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector({"outage_probability": 0.5}, seed=0)


class TestFaultInjectorDeterminism:
    def test_fault_stream_reproducible_from_seed(self):
        model = FaultModel(outage_probability=0.4)
        first = FaultInjector(model, seed=9)
        second = FaultInjector(model, seed=9)
        for name in ("cam0", "cam1", "weird name"):
            a = first.fault_rng(name, query_seed=3)
            b = second.fault_rng(name, query_seed=3)
            assert np.array_equal(a.random(16), b.random(16))

    def test_streams_differ_across_cameras_and_queries(self):
        injector = FaultInjector(FaultModel(), seed=9)
        base = injector.fault_rng("cam0", 3).random(8)
        assert not np.array_equal(base, injector.fault_rng("cam1", 3).random(8))
        assert not np.array_equal(base, injector.fault_rng("cam0", 4).random(8))

    def test_outage_draw_is_query_scoped(self, camera):
        injector = FaultInjector(FaultModel(outage_probability=1.0), seed=0)
        channel = injector.channel(camera, query_seed=0)
        assert channel.is_out
        rng = np.random.default_rng(0)
        with pytest.raises(CameraOutageError):
            channel.transmit(rng)
        with pytest.raises(CameraOutageError):
            channel.transmit(rng)  # persists across retries


class TestFaultyChannel:
    def test_clean_delivery_when_null(self, camera):
        channel = FaultInjector(FaultModel(), seed=0).channel(camera, 0)
        delivery = channel.transmit(np.random.default_rng(1))
        assert isinstance(delivery, ChannelDelivery)
        assert delivery.delivered == delivery.requested == delivery.sample.size
        assert delivery.dropped == delivery.corrupted == 0
        assert not delivery.lossy

    def test_transient_failure_raises_transmission_error(self, camera):
        model = FaultModel(transient_failure_probability=1.0)
        channel = FaultInjector(model, seed=0).channel(camera, 0)
        with pytest.raises(TransmissionError):
            channel.transmit(np.random.default_rng(1))

    def test_frame_drops_shrink_the_sample_not_the_universe(self, camera):
        model = FaultModel(frame_drop_probability=0.3)
        channel = FaultInjector(model, seed=5).channel(camera, 0)
        delivery = channel.transmit(np.random.default_rng(1))
        assert 0 < delivery.dropped < delivery.requested
        assert delivery.delivered == delivery.requested - delivery.dropped
        assert delivery.sample.size == delivery.delivered
        clean = camera.plan.draw(camera.dataset, np.random.default_rng(1))
        assert delivery.sample.universe_size == clean.universe_size
        # Survivors are a subset of what the camera put on the wire.
        assert set(delivery.sample.frame_indices) <= set(clean.frame_indices)

    def test_corrupted_frames_are_discarded_not_ingested(self, camera):
        model = FaultModel(frame_corruption_probability=1.0)
        channel = FaultInjector(model, seed=5).channel(camera, 0)
        with pytest.raises(TransmissionError):
            # Everything corrupted -> nothing trustworthy to deliver.
            channel.transmit(np.random.default_rng(1))

    def test_straggler_adds_latency(self, camera):
        model = FaultModel(straggler_probability=1.0, straggler_latency=9.0)
        channel = FaultInjector(model, seed=0).channel(camera, 0)
        delivery = channel.transmit(np.random.default_rng(1))
        assert delivery.straggler
        assert delivery.latency == pytest.approx(9.0 + model.nominal_latency)

    def test_fault_sequence_reproducible(self, camera):
        model = FaultModel(
            frame_drop_probability=0.2, frame_corruption_probability=0.1
        )
        injector = FaultInjector(model, seed=21)
        first = injector.channel(camera, 7).transmit(np.random.default_rng(3))
        second = injector.channel(camera, 7).transmit(np.random.default_rng(3))
        assert np.array_equal(
            first.sample.frame_indices, second.sample.frame_indices
        )
        assert (first.dropped, first.corrupted) == (
            second.dropped, second.corrupted
        )


class _ScriptedChannel:
    """A channel stub failing a scripted number of times, then delivering."""

    name = "scripted"

    def __init__(self, failures: int, delivery=None, outage: bool = False):
        self._failures = failures
        self._delivery = delivery
        self._outage = outage
        self.calls = 0

    def transmit(self, rng):
        self.calls += 1
        if self._outage:
            raise CameraOutageError("scripted outage")
        if self.calls <= self._failures:
            raise TransmissionError(f"scripted failure {self.calls}")
        return self._delivery


class TestTransmitWithRetry:
    def _delivery(self, camera):
        sample = camera.plan.draw(camera.dataset, np.random.default_rng(0))
        return ChannelDelivery(
            sample=sample, requested=sample.size, delivered=sample.size,
            dropped=0, corrupted=0, latency=0.05, straggler=False,
        )

    def test_success_after_transient_failures(self, camera):
        channel = _ScriptedChannel(2, self._delivery(camera))
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        outcome = transmit_with_retry(
            channel, np.random.default_rng(0), policy, np.random.default_rng(1)
        )
        assert outcome.attempts == 3
        assert outcome.retries == 2
        # Exponential backoff: 0.1 + 0.2 with no jitter.
        assert outcome.backoff == pytest.approx(0.3)

    def test_exhausted_retries_escalate_to_transmission_error(self):
        channel = _ScriptedChannel(99)
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(TransmissionError) as info:
            transmit_with_retry(
                channel, np.random.default_rng(0), policy,
                np.random.default_rng(1),
            )
        assert "3 transmit attempts exhausted" in str(info.value)
        assert info.value.attempts == 3
        assert info.value.retries == 2
        assert channel.calls == 3

    def test_outage_fails_fast_without_retries(self):
        channel = _ScriptedChannel(0, outage=True)
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(CameraOutageError):
            transmit_with_retry(
                channel, np.random.default_rng(0), policy,
                np.random.default_rng(1),
            )
        assert channel.calls == 1


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff_delay(k, rng) for k in range(4)]
        assert delays == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_seeded(self):
        policy = RetryPolicy(jitter=0.5)
        a = policy.backoff_delay(1, np.random.default_rng(3))
        b = policy.backoff_delay(1, np.random.default_rng(3))
        assert a == b
        assert a >= policy.base_delay * policy.multiplier


class TestCircuitBreaker:
    def test_opens_after_threshold_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state(0.0) is BreakerState.CLOSED
        breaker.record_failure(0.0)
        assert breaker.state(0.0) is BreakerState.OPEN
        assert not breaker.allow(5.0)

    def test_half_opens_after_cooldown_and_closes_on_probe_success(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.state(9.9) is BreakerState.OPEN
        assert breaker.state(10.0) is BreakerState.HALF_OPEN
        assert breaker.allow(10.0)
        breaker.record_success(10.5)
        assert breaker.state(10.5) is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)  # half-open probe admitted
        breaker.record_failure(10.0)
        assert breaker.state(15.0) is BreakerState.OPEN
        assert breaker.state(20.0) is BreakerState.HALF_OPEN

    def test_success_resets_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) is BreakerState.CLOSED

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown=-1.0)


class TestHealthLedger:
    def test_auto_creates_and_accumulates(self):
        ledger = HealthLedger()
        health = ledger.health("cam0")
        health.attempts += 2
        health.frames_dropped += 5
        assert ledger.health("cam0").attempts == 2
        assert ledger.summary()["cam0"].frames_dropped == 5
