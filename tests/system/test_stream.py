"""Tests for the live-feed replay harness (``repro stream``).

The end-to-end contract: replaying a clean corpus keeps the sentinel
quiet; splicing a zoo scenario into the feed mid-stream trips it after
the onset and triggers exactly one Algorithm 3 repair, all of it recorded
as ``facts.stream.*`` and per-window ledger events.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.system.observe import ledger as run_ledger
from repro.system.stream import (
    ESTIMATOR_KINDS,
    StreamConfig,
    StreamReport,
    replay_stream,
)

FRAMES = 2000


@pytest.fixture(autouse=True)
def clean_ledger_state():
    yield
    if run_ledger.active_run() is not None:
        run_ledger.finish_run("ok", 0)


class TestStreamConfig:
    def test_defaults_are_valid(self):
        config = StreamConfig()
        assert config.estimator in ESTIMATOR_KINDS

    @pytest.mark.parametrize(
        "overrides",
        [
            {"estimator": "psychic"},
            {"scenario": "not-a-scenario"},
            {"onset": 1.0},
            {"onset": -0.1},
            {"window": 0},
            {"fraction": 0.0},
            {"fraction": 1.5},
            {"fps": -1.0},
        ],
    )
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ConfigurationError):
            StreamConfig(**overrides)


class TestCleanReplay:
    def test_clean_feed_stays_quiet(self):
        report = replay_stream(StreamConfig(frames=FRAMES))
        assert isinstance(report, StreamReport)
        assert not report.verdict.tripped
        assert report.violations == 0
        assert report.repairs == 0
        assert len(report.windows) == FRAMES // report.config.window + (
            1 if FRAMES % report.config.window else 0
        )
        assert report.frames_per_sec > 0.0

    def test_payload_shape(self):
        payload = replay_stream(StreamConfig(frames=FRAMES)).as_payload()
        for key in (
            "dataset", "scenario", "severity", "estimator", "window",
            "frames", "onset_index", "windows", "violations", "repairs",
            "tripped", "first_breach_count", "profiled_bound",
            "repaired_bound", "wall_seconds", "ingest_seconds",
            "frames_per_sec",
        ):
            assert key in payload, key
        assert payload["tripped"] is False
        assert payload["repaired_bound"] is None


class TestHostileReplay:
    @pytest.fixture(scope="class")
    def replayed(self):
        run_ledger.begin_run("stream-test", {}, None)
        report = replay_stream(
            StreamConfig(frames=FRAMES, scenario="weather", severity=0.95)
        )
        record = run_ledger.finish_run("ok", 0)
        return report, record

    @pytest.fixture
    def report(self, replayed):
        return replayed[0]

    def test_sentinel_trips_after_onset(self, report):
        assert report.verdict.tripped
        assert report.verdict.first_breach_count > report.onset_index
        assert report.violations >= report.config.patience
        assert report.repairs == 1
        assert report.verdict.repair.error_bound > 0.0

    def test_windows_trace_the_takeover(self, report):
        pre = [w for w in report.windows if w.end <= report.onset_index]
        assert pre and not any(w.breached for w in pre)
        assert any(w.breached for w in report.windows)
        assert report.windows[-1].tripped

    def test_facts_and_events_reach_the_ledger(self, replayed):
        report, record = replayed
        facts = record["facts"]["stream"]
        assert facts["tripped"] is True
        assert facts["repairs"] == 1
        assert facts["scenario"] == "weather"
        assert facts["severity"] == 0.95
        kinds = [event["event"] for event in record["events"]]
        assert kinds.count("stream.window") == len(report.windows)
        assert "sentinel.violation" in kinds
        assert "sentinel.repair" in kinds

    def test_severity_defaults_to_harshest(self):
        config = replay_stream(
            StreamConfig(
                frames=FRAMES, scenario="targeted-corruption", window=480
            )
        ).config
        assert config.severity is not None


class TestEstimatorVariants:
    def test_decayed_estimator_trips_on_occlusion(self):
        report = replay_stream(
            StreamConfig(
                frames=FRAMES,
                scenario="occlusion",
                severity=0.7,
                estimator="decayed",
            )
        )
        assert report.verdict.tripped
        assert report.repairs == 1

    def test_cumulative_estimator_is_diluted(self):
        """The failure mode motivating the windowed default: the all-time
        mean absorbs the drift and the sentinel stays silent."""
        report = replay_stream(
            StreamConfig(
                frames=FRAMES,
                scenario="weather",
                severity=0.95,
                estimator="cumulative",
            )
        )
        assert not report.verdict.tripped


class TestPacedReplay:
    def test_fps_throttle_slows_wall_clock_not_ingest(self):
        # 2000 frames at 100k fps = at least 20ms of pacing sleep. The
        # sleep lands in wall_seconds only: ingest_seconds (and hence the
        # gated frames_per_sec) measures processing capability, not the
        # configured throttle.
        report = replay_stream(StreamConfig(frames=FRAMES, fps=100_000.0))
        assert report.wall_seconds >= 0.018
        assert report.ingest_seconds < report.wall_seconds
        assert report.frames_per_sec > 100_000.0
