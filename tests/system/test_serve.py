"""Tests for the serving daemon: micro-batching, admission, lifecycle.

The contracts under test:

- **Determinism**: answers served through a coalesced multi-row kernel
  call are bit-identical to the same queries issued serially, and the
  served values agree with the scalar :func:`estimate_query` path to the
  repo's 1e-9 numerical-equivalence policy.
- **Admission control**: over-budget tenants get HTTP 429 plus a
  ``serve.rejected`` run-ledger event; everyone else is unaffected.
- **Concurrency**: a 10-client soak leaves no queued requests, no
  errors, and exact per-tenant accounting.
- **Lifecycle**: a daemon subprocess killed with SIGTERM drains, flushes
  its ledger record, exits 0, and leaves ``/dev/shm`` empty.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.estimators.dispatch import estimate_query, estimate_rows
from repro.experiments.workloads import load_dataset, model_for, shared_suite
from repro.interventions.plan import InterventionPlan
from repro.query.aggregates import Aggregate
from repro.query.processor import QueryProcessor
from repro.query.query import AggregateQuery
from repro.system import shm, telemetry
from repro.system.executor import shutdown_pool
from repro.system.observe import ledger as run_ledger
from repro.system.serve import (
    AdmissionError,
    QueryRequest,
    RequestError,
    ServeConfig,
    ServeDaemon,
    ServeSession,
    TokenBucket,
    post_json,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
DEV_SHM = Path("/dev/shm")

#: Reduced corpus for the in-process daemons; small enough that warmup
#: stays fast, large enough that fraction sampling is non-trivial.
FRAMES = 1200


def run_with_daemon(coro_factory, **config_overrides):
    """Run ``await coro_factory(daemon, port)`` against a live daemon."""
    settings = {
        "port": 0,
        "datasets": ("ua-detrac",),
        "frames": FRAMES,
        "tick_seconds": 0.002,
    }
    settings.update(config_overrides)

    async def wrapped():
        daemon = ServeDaemon(ServeConfig(**settings))
        port = await daemon.start()
        try:
            return await coro_factory(daemon, port)
        finally:
            await daemon.stop()

    return asyncio.run(wrapped())


@pytest.fixture(autouse=True)
def clean_process_state():
    shutdown_pool()
    shm.release_all()
    yield
    shutdown_pool()
    shm.release_all()
    if telemetry.enabled():
        telemetry.disable()


class TestQueryRequest:
    CONFIG = ServeConfig(datasets=("ua-detrac",))

    def test_payload_round_trip(self):
        request = QueryRequest.from_payload(
            "estimate",
            {
                "dataset": "ua-detrac",
                "aggregate": "count",
                "fraction": 0.5,
                "resolution": 416,
                "remove": "person",
                "seed": 9,
                "tenant": "alice",
            },
            self.CONFIG,
        )
        assert request.aggregate == "count"
        assert request.fraction == 0.5
        assert request.resolution == 416
        assert request.remove == ("person",)
        assert request.tenant == "alice"

    def test_batch_key_ignores_seed_and_tenant(self):
        base = {"dataset": "ua-detrac", "fraction": 0.25}
        one = QueryRequest.from_payload(
            "estimate", {**base, "seed": 1, "tenant": "a"}, self.CONFIG
        )
        two = QueryRequest.from_payload(
            "bound", {**base, "seed": 2, "tenant": "b"}, self.CONFIG
        )
        assert one.batch_key() == two.batch_key()

    def test_batch_key_splits_on_plan(self):
        one = QueryRequest.from_payload(
            "estimate", {"fraction": 0.25}, self.CONFIG
        )
        two = QueryRequest.from_payload(
            "estimate", {"fraction": 0.5}, self.CONFIG
        )
        assert one.batch_key() != two.batch_key()

    @pytest.mark.parametrize(
        "payload",
        [
            {"dataset": "nope"},
            {"aggregate": "median"},
            {"fraction": 0.0},
            {"fraction": 1.5},
            {"delta": 1.0},
            {"remove": "unicorn"},
            {"axis": "diagonal"},
            {"fraction": "not-a-number"},
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(RequestError):
            QueryRequest.from_payload("estimate", payload, self.CONFIG)

    def test_choose_requires_budget(self):
        with pytest.raises(RequestError):
            QueryRequest.from_payload("choose", {}, self.CONFIG)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        now = 100.0
        assert bucket.try_acquire(now)
        assert bucket.try_acquire(now)
        assert not bucket.try_acquire(now)
        # 0.15s at 10/s refills ~1.5 tokens: one acquire succeeds, the
        # immediate next finds only the 0.5 remainder and fails.
        assert bucket.try_acquire(now + 0.15)
        assert not bucket.try_acquire(now + 0.15)

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(1e9)


class TestEstimateRows:
    """The batch entry point the micro-batcher rests on."""

    @pytest.fixture(scope="class")
    def query(self):
        return AggregateQuery(
            load_dataset("ua-detrac", FRAMES),
            model_for("ua-detrac"),
            Aggregate.AVG,
        )

    def test_rows_bit_identical_to_single_row_calls(self, query):
        rng = np.random.default_rng(11)
        matrix = rng.uniform(0.0, 4.0, size=(5, 200))
        batched = estimate_rows(query, matrix, 900, FRAMES)
        for row_index, estimate in enumerate(batched):
            alone = estimate_rows(
                query, matrix[row_index : row_index + 1], 900, FRAMES
            )[0]
            assert estimate.value == alone.value
            assert estimate.error_bound == alone.error_bound
            assert estimate.n == alone.n

    def test_matches_scalar_path_within_policy(self, query):
        processor = QueryProcessor(shared_suite())
        plan = InterventionPlan.from_knobs(f=0.25, suite=shared_suite())
        rng = np.random.default_rng(3)
        execution = processor.execute(query, plan, rng)
        scalar = estimate_query(query, execution)
        [rowwise] = estimate_rows(
            query,
            execution.values[None, :],
            execution.universe_size,
            execution.population_size,
        )
        assert rowwise.value == pytest.approx(scalar.value, abs=1e-9)
        assert rowwise.error_bound == pytest.approx(
            scalar.error_bound, abs=1e-9
        )
        assert rowwise.n == scalar.n

    def test_rejects_malformed_matrices(self, query):
        with pytest.raises(ConfigurationError):
            estimate_rows(query, np.zeros(5), 900, FRAMES)
        with pytest.raises(ConfigurationError):
            estimate_rows(query, np.zeros((2, 0)), 900, FRAMES)


class TestSessionBatching:
    """Session-level coalescing without the HTTP layer."""

    def test_group_bit_identical_to_singles(self):
        config = ServeConfig(datasets=("ua-detrac",), frames=FRAMES)
        session = ServeSession(config)
        session.warmup()
        try:
            requests = [
                QueryRequest.from_payload(
                    "estimate",
                    {"dataset": "ua-detrac", "fraction": 0.25, "seed": seed},
                    config,
                )
                for seed in range(6)
            ]
            grouped = session.estimate_group(requests)
            singles = [
                session.estimate_group([request])[0] for request in requests
            ]
            for merged, alone in zip(grouped, singles):
                assert merged["value"] == alone["value"]
                assert merged["error_bound"] == alone["error_bound"]
                assert merged["n"] == alone["n"]
            assert grouped[0]["batch_size"] == 6
            assert session.stats["batched_kernel_calls"] == 1
            assert session.stats["kernel_calls"] == 7
        finally:
            session.shutdown()

    def test_incompatible_requests_refused(self):
        config = ServeConfig(datasets=("ua-detrac",), frames=FRAMES)
        session = ServeSession(config)
        try:
            one = QueryRequest.from_payload(
                "estimate", {"fraction": 0.25}, config
            )
            two = QueryRequest.from_payload(
                "estimate", {"fraction": 0.5}, config
            )
            with pytest.raises(RequestError):
                session.estimate_group([one, two])
        finally:
            session.shutdown()


class TestDaemonHTTP:
    def test_concurrent_answers_bit_identical_to_serial(self):
        async def scenario(daemon, port):
            payload = {"dataset": "ua-detrac", "fraction": 0.25}
            serial = {}
            for seed in range(8):
                status, body = await post_json(
                    "127.0.0.1", port, "/estimate", {**payload, "seed": seed}
                )
                assert status == 200, body
                assert body["batch_size"] == 1
                serial[seed] = body
            calls_before = daemon.session.stats["kernel_calls"]
            results = await asyncio.gather(
                *(
                    post_json(
                        "127.0.0.1",
                        port,
                        "/estimate",
                        {**payload, "seed": seed, "tenant": f"t{seed % 3}"},
                    )
                    for seed in range(8)
                )
            )
            concurrent_calls = (
                daemon.session.stats["kernel_calls"] - calls_before
            )
            for seed, (status, body) in enumerate(results):
                assert status == 200, body
                assert body["value"] == serial[seed]["value"]
                assert body["error_bound"] == serial[seed]["error_bound"]
            # 8 concurrent compatible requests -> fewer kernel calls than
            # the 8 the serial pass paid.
            assert concurrent_calls < 8
            assert daemon.session.stats["batched_kernel_calls"] >= 1
            return True

        assert run_with_daemon(scenario)

    def test_bound_omits_value(self):
        async def scenario(daemon, port):
            status, body = await post_json(
                "127.0.0.1", port, "/bound",
                {"dataset": "ua-detrac", "fraction": 0.5},
            )
            assert status == 200
            assert "value" not in body
            assert body["error_bound"] > 0
            return True

        assert run_with_daemon(scenario)

    def test_soak_ten_clients(self):
        async def scenario(daemon, port):
            async def client(index: int) -> list[dict]:
                bodies = []
                for round_index in range(5):
                    status, body = await post_json(
                        "127.0.0.1",
                        port,
                        "/bound",
                        {
                            "dataset": "ua-detrac",
                            "fraction": 0.25,
                            "seed": index * 100 + round_index,
                            "tenant": f"tenant-{index}",
                        },
                    )
                    assert status == 200, body
                    bodies.append(body)
                return bodies

            all_bodies = await asyncio.gather(*(client(i) for i in range(10)))
            assert sum(len(bodies) for bodies in all_bodies) == 50
            assert daemon.batcher.depth == 0
            stats = daemon.session.snapshot_stats()
            assert stats["counters"]["errors"] == 0
            assert stats["counters"]["requests"] == 50
            assert len(stats["tenants"]) == 10
            for record in stats["tenants"].values():
                assert record["requests"] == 5
                assert record["served"] == 5
                assert record["rejected"] == 0
            return True

        assert run_with_daemon(scenario)

    def test_over_budget_tenant_gets_429_and_ledger_event(self):
        run_ledger.begin_run("serve-test", {}, None)

        async def scenario(daemon, port):
            payload = {
                "dataset": "ua-detrac",
                "fraction": 0.25,
                "tenant": "greedy",
            }
            statuses = []
            for seed in range(3):
                status, body = await post_json(
                    "127.0.0.1", port, "/bound", {**payload, "seed": seed}
                )
                statuses.append(status)
            # Another tenant is not affected by greedy's exhaustion.
            other_status, _ = await post_json(
                "127.0.0.1", port, "/bound",
                {**payload, "tenant": "frugal"},
            )
            rejected = daemon.session.tenants["greedy"]["rejected"]
            return statuses, other_status, rejected

        try:
            statuses, other_status, rejected = run_with_daemon(
                scenario, tenant_rate=0.0, tenant_burst=1
            )
        finally:
            record = run_ledger.finish_run("ok", 0)
        assert statuses[0] == 200
        assert statuses[1:] == [429, 429]
        assert other_status == 200
        assert rejected == 2
        events = [
            event
            for event in record["events"]
            if event["event"] == "serve.rejected"
        ]
        assert len(events) == 2
        assert all(event["tenant"] == "greedy" for event in events)
        assert all(
            event["reason"] == "tenant_over_budget" for event in events
        )

    def test_queue_full_rejects(self):
        config = ServeConfig(datasets=("ua-detrac",), max_queue=1)
        daemon = ServeDaemon(config)
        daemon.batcher._depth = 1  # simulate a full queue
        daemon.batcher._accepting = True
        with pytest.raises(AdmissionError):
            daemon.batcher.admit("anyone")
        assert daemon.session.stats["rejected"] == 1

    def test_multiworker_daemon_prewarms_the_pool(self):
        """A multi-worker daemon forks its pool during startup, while
        the process is quiet — forking lazily under live traffic can
        deadlock the children (fork-with-threads). The pool must be warm
        before the listener accepts, and a parallel /profile must reuse
        it rather than respawn."""
        from repro.system.executor import pool_diagnostics, pool_generation

        async def scenario(daemon, port):
            assert pool_diagnostics() is not None
            generation = pool_generation()
            status, body = await post_json(
                "127.0.0.1",
                port,
                "/profile",
                {"dataset": "ua-detrac", "trials": 2,
                 "fraction_step": 0.5, "resolution_count": 2},
                timeout=600,
            )
            assert status == 200, body
            assert pool_generation() == generation
            return True

        assert run_with_daemon(scenario, workers=2)

    def test_metrics_and_introspection_endpoints(self):
        async def scenario(daemon, port):
            status, _ = await post_json(
                "127.0.0.1", port, "/bound",
                {"dataset": "ua-detrac", "fraction": 0.5},
            )
            assert status == 200
            status, body = await post_json("127.0.0.1", port, "/healthz")
            assert status == 200 and body["status"] == "ok"
            status, text = await post_json("127.0.0.1", port, "/metrics")
            assert status == 200
            assert "repro_serve_requests_total" in text
            assert "repro_serve_kernel_calls_total" in text
            status, stats = await post_json("127.0.0.1", port, "/stats")
            assert status == 200
            assert stats["counters"]["requests"] == 1
            assert stats["datasets"] == ["ua-detrac"]
            assert "pool_generation" in stats
            status, body = await post_json(
                "127.0.0.1", port, "/nowhere", {}
            )
            assert status == 404
            status, body = await post_json(
                "127.0.0.1", port, "/estimate", {"dataset": "nope"}
            )
            assert status == 400
            return True

        assert run_with_daemon(scenario)

    def test_profile_is_cached_and_choose_rides_it(self):
        async def scenario(daemon, port):
            payload = {
                "dataset": "ua-detrac",
                "trials": 1,
                "fraction_step": 0.5,
                "resolution_count": 2,
            }
            status, first = await post_json(
                "127.0.0.1", port, "/profile", payload, timeout=600
            )
            assert status == 200 and first["cached"] is False
            status, second = await post_json(
                "127.0.0.1", port, "/profile", payload, timeout=600
            )
            assert status == 200 and second["cached"] is True
            assert second["slices"] == first["slices"]
            status, choice = await post_json(
                "127.0.0.1", port, "/choose",
                {**payload, "max_error": 0.9}, timeout=600,
            )
            assert status == 200
            assert choice["cached"] is True
            assert choice["error_bound"] <= 0.9
            return True

        assert run_with_daemon(scenario)

    def test_shutdown_endpoint_stops_the_daemon(self):
        async def scenario():
            daemon = ServeDaemon(
                ServeConfig(port=0, datasets=("ua-detrac",), frames=FRAMES)
            )
            port = await daemon.start()
            status, body = await post_json(
                "127.0.0.1", port, "/shutdown", {}
            )
            assert status == 200
            await asyncio.wait_for(daemon.wait_stopped(), timeout=30)
            return True

        assert asyncio.run(scenario())


class TestSubprocessLifecycle:
    """SIGTERM against a real daemon subprocess: drain, flush, unlink."""

    def _spawn(self, tmp_path: Path, extra: list[str] | None = None):
        env = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--frames", "800",
                "--run-ledger", str(tmp_path / "serve_runs.jsonl"),
                *(extra or []),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )

    def _await_port(self, proc) -> int:
        deadline = time.time() + 120
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
            if match:
                return int(match.group(1))
        raise AssertionError("daemon never printed its bound address")

    def test_sigterm_drains_flushes_and_unlinks(self, tmp_path):
        proc = self._spawn(tmp_path)
        try:
            port = self._await_port(proc)

            async def one_request():
                return await post_json(
                    "127.0.0.1", port, "/estimate",
                    {"dataset": "ua-detrac", "fraction": 0.25, "seed": 4},
                )

            status, body = asyncio.run(one_request())
            assert status == 200, body
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0, output
        assert "drained and stopped" in output
        # The PR-7 leak-check contract, extended to the daemon: no
        # published segment of this pid survives the graceful exit.
        if DEV_SHM.is_dir():
            prefix = f"{shm.SEGMENT_PREFIX}_{proc.pid}_"
            leaks = sorted(DEV_SHM.glob(f"{prefix}*"))
            assert leaks == [], leaks
        # The ledger record was flushed on the signal path, with the
        # session's accounting annotated.
        records = [
            json.loads(line)
            for line in (tmp_path / "serve_runs.jsonl").read_text().splitlines()
        ]
        assert len(records) == 1
        record = records[0]
        assert record["command"] == "serve"
        assert record["status"] == "ok"
        assert record["facts"]["serve"]["requests"] == 1
        assert record["facts"]["serve"]["kernel_calls"] == 1


class TestBudgetValidation:
    """Regression: malformed tenant budgets must be rejected, not coerced.

    ``TokenBucket`` used to silently clamp ``burst`` up to 1.0 (hiding a
    misconfigured fractional burst behind a working-looking bucket) and
    accepted a NaN ``rate`` (every refill computed ``nan`` tokens, so the
    bucket admitted the burst and then starved every tenant forever).
    """

    def test_token_bucket_rejects_fractional_burst(self):
        with pytest.raises(RequestError):
            TokenBucket(rate=10.0, burst=0.5)

    def test_token_bucket_rejects_nan_rate(self):
        with pytest.raises(RequestError):
            TokenBucket(rate=float("nan"), burst=10)

    @pytest.mark.parametrize(
        "rate, burst",
        [(float("inf"), 10), (-1.0, 10), (10.0, float("nan")), (10.0, 0)],
    )
    def test_token_bucket_rejects_other_degenerates(self, rate, burst):
        with pytest.raises(RequestError):
            TokenBucket(rate=rate, burst=burst)

    def test_token_bucket_accepts_burst_only_budget(self):
        TokenBucket(rate=0.0, burst=1)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"tenant_burst": 0.5},
            {"tenant_rate": float("nan")},
            {"tenant_rate": -1.0},
            {"tenant_burst": float("inf")},
        ],
    )
    def test_serve_config_rejects_bad_budgets(self, overrides):
        with pytest.raises(RequestError):
            ServeConfig(datasets=("ua-detrac",), **overrides)


class TestHotStreams:
    """Session-level /stream semantics without the HTTP layer."""

    @pytest.fixture(scope="class")
    def session(self):
        config = ServeConfig(datasets=("ua-detrac",), frames=FRAMES)
        session = ServeSession(config)
        session.warmup()
        yield session
        session.shutdown()

    def test_open_returns_fresh_readout(self, session):
        body = session.stream_open({"tenant": "cam-7"})
        assert body["id"].startswith("s")
        assert body["tenant"] == "cam-7"
        assert body["count"] == 0
        assert body["ingests"] == 0
        assert body["profiled_bound"] > 0.0
        assert body["verdict"]["tripped"] is False

    def test_open_rejects_unloaded_dataset(self, session):
        with pytest.raises(RequestError):
            session.stream_open({"dataset": "night-street"})

    def test_open_rejects_oversized_window(self, session):
        with pytest.raises(RequestError):
            session.stream_open({"window": FRAMES + 1})

    def test_ingest_unknown_stream_rejected(self, session):
        with pytest.raises(RequestError, match="unknown stream"):
            session.stream_ingest({"id": "s9999", "values": [1.0]})

    @pytest.mark.parametrize(
        "values",
        [None, [], "not-a-list", [1.0, float("nan")], [1.0, "x"]],
    )
    def test_ingest_rejects_malformed_values(self, session, values):
        stream_id = session.stream_open({})["id"]
        with pytest.raises(RequestError):
            session.stream_ingest({"id": stream_id, "values": values})

    def test_ingest_rejects_oversized_batch(self, session):
        stream_id = session.stream_open({})["id"]
        with pytest.raises(RequestError, match="at most"):
            session.stream_ingest(
                {"id": stream_id, "values": [1.0] * 10_001}
            )

    def test_hostile_feed_trips_and_repairs(self, session):
        opened = session.stream_open(
            {
                "tenant": "cam-drift",
                "window": 100,
                "profiled_bound": 0.05,
                "min_count": 30,
                "patience": 2,
            }
        )
        stream_id = opened["id"]
        violations_before = session.stats["stream_violations"]
        # An all-zero feed is total drift (the clean reference mean is
        # positive): first breach at the first post-warm-up check, the
        # second confirms it past patience.
        first = session.stream_ingest(
            {"id": stream_id, "values": [0.0] * 50}
        )
        assert first["check"]["breached"]
        assert not first["verdict"]["tripped"]
        second = session.stream_ingest(
            {"id": stream_id, "values": [0.0] * 50}
        )
        assert second["newly_tripped"]
        assert second["verdict"]["tripped"]
        assert second["repaired_bound"] > 0.0
        assert session.stats["stream_violations"] >= violations_before + 2
        readout = session.stream_readout(stream_id)
        assert readout["verdict"]["tripped"]
        assert readout["count"] == 100
        assert readout["ingests"] == 2


class TestStreamHTTP:
    """The /stream endpoints over the wire."""

    def test_open_ingest_readout_round_trip(self):
        async def scenario(daemon, port):
            status, opened = await post_json(
                "127.0.0.1", port, "/stream",
                {"tenant": "cam-http", "window": 100,
                 "profiled_bound": 0.05},
            )
            assert status == 200, opened
            stream_id = opened["id"]
            status, ingested = await post_json(
                "127.0.0.1", port, "/stream",
                {"id": stream_id, "values": [0.0] * 50,
                 "tenant": "cam-http"},
            )
            assert status == 200, ingested
            assert ingested["ingested"] == 50
            status, readout = await post_json(
                "127.0.0.1", port, f"/stream/{stream_id}"
            )
            assert status == 200, readout
            assert readout["count"] == 50
            status, missing = await post_json(
                "127.0.0.1", port, "/stream/s9999"
            )
            assert status == 400, missing
            status, stats = await post_json("127.0.0.1", port, "/stats")
            assert stats["streams"] == 1
            assert stats["counters"]["stream_requests"] == 2
            assert stats["counters"]["stream_opens"] == 1
            return True

        assert run_with_daemon(scenario)
