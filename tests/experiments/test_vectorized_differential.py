"""Differential runs of the seeded experiment drivers: kernels vs loops.

The acceptance contract for the batch-trial kernels: every seeded driver
produces the same series with ``vectorized=True`` and ``vectorized=False``
within 1e-9 — same samples drawn, same decisions, only the arithmetic
pipeline differs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig4_bound_comparison import run_fig4
from repro.experiments.fig6_profile_repair import run_fig6
from repro.experiments.timing import run_timing
from repro.query.aggregates import Aggregate
from repro.system.costs import InvocationLedger

FRAMES = 2500
RTOL = 1e-9
ATOL = 1e-12


def assert_series_close(vec, loop):
    assert set(vec.series) == set(loop.series)
    for name, values in vec.series.items():
        np.testing.assert_allclose(
            np.asarray(values, dtype=float),
            np.asarray(loop.series[name], dtype=float),
            rtol=RTOL, atol=ATOL, err_msg=name,
        )


class TestFig4Differential:
    @pytest.mark.parametrize("aggregate", [Aggregate.AVG, Aggregate.MAX])
    def test_panel_matches_loop(self, aggregate):
        common = dict(
            trials=6, frame_count=FRAMES, grid_points=3, seed=7
        )
        vec = run_fig4("ua-detrac", aggregate, vectorized=True, **common)
        loop = run_fig4("ua-detrac", aggregate, vectorized=False, **common)
        assert vec.knobs == loop.knobs
        assert_series_close(vec, loop)


class TestFig6Differential:
    @pytest.mark.parametrize("axis", ["sampling", "resolution"])
    def test_row_matches_loop(self, axis):
        common = dict(trials=6, frame_count=FRAMES, seed=3)
        vec = run_fig6("ua-detrac", Aggregate.AVG, axis, vectorized=True, **common)
        loop = run_fig6("ua-detrac", Aggregate.AVG, axis, vectorized=False, **common)
        assert vec.knobs == loop.knobs
        assert_series_close(vec, loop)


class TestTimingDifferential:
    def test_sweep_matches_loop_and_ledger(self):
        ledger_vec = InvocationLedger()
        ledger_loop = InvocationLedger()
        vec = run_timing(
            frame_count=FRAMES, trials=3, vectorized=True, ledger=ledger_vec
        )
        loop = run_timing(
            frame_count=FRAMES, trials=3, vectorized=False, ledger=ledger_loop
        )
        assert vec.knobs == loop.knobs
        assert_series_close(vec, loop)
        # Identical samples drawn: the invocation accounting folds equal.
        assert ledger_vec.by_resolution() == ledger_loop.by_resolution()
        assert ledger_vec.total == ledger_loop.total
