"""Reduced-scale tests for the extension experiments (paper §7)."""

from __future__ import annotations

import numpy as np

from repro.experiments.ablations import run_ablation_stratified
from repro.experiments.extension_temporal import run_extension_temporal
from repro.experiments.extension_var import run_extension_var

FRAMES = 4000


class TestExtensionVar:
    def test_smokescreen_var_valid(self):
        result = run_extension_var(
            trials=30, frame_count=FRAMES, fractions=(0.1, 0.5, 0.9)
        )
        assert max(result.series["smokescreen_violation_pct"]) <= 10.0

    def test_bound_informative_at_large_fractions(self):
        result = run_extension_var(
            trials=30, frame_count=FRAMES, fractions=(0.1, 0.9)
        )
        bounds = result.series["smokescreen_bound"]
        assert bounds[-1] < bounds[0]
        assert bounds[-1] < 1.0

    def test_clt_tighter_where_informative(self):
        result = run_extension_var(
            trials=30, frame_count=FRAMES, fractions=(0.5, 0.9)
        )
        assert result.series["clt_bound"][-1] < result.series["smokescreen_bound"][-1]


class TestExtensionTemporal:
    def test_naive_treatment_violates(self):
        result = run_extension_temporal(
            trials=50, frame_count=FRAMES, fractions=(0.05, 0.1)
        )
        assert max(result.series["naive_violation_pct"]) > 20.0

    def test_window_repair_restores_coverage(self):
        result = run_extension_temporal(
            trials=50, frame_count=FRAMES, fractions=(0.05, 0.1)
        )
        naive = np.array(result.series["naive_violation_pct"])
        window = np.array(result.series["window_violation_pct"])
        assert np.all(window <= naive)
        assert window.max() <= 15.0

    def test_bias_shrinks_with_fraction(self):
        """Denser samples mean smaller gaps, so the motion bias fades."""
        result = run_extension_temporal(
            trials=50, frame_count=FRAMES, fractions=(0.05, 0.4)
        )
        errors = result.series["true_error"]
        assert errors[-1] < errors[0]


class TestStratifiedAblation:
    def test_stratified_wins_at_moderate_budgets(self):
        """At tiny n the gain drowns in Poisson noise; from ~2% of frames
        the temporal waves are resolved and stratification clearly wins."""
        result = run_ablation_stratified(
            trials=120, frame_count=FRAMES, fractions=(0.02, 0.05)
        )
        ratios = np.array(result.series["rmse_ratio"])
        assert np.all(ratios < 0.95)

    def test_gain_grows_with_budget(self):
        """More strata resolve the traffic waves better."""
        result = run_ablation_stratified(
            trials=80, frame_count=FRAMES, fractions=(0.005, 0.05)
        )
        ratios = result.series["rmse_ratio"]
        assert ratios[-1] <= ratios[0] + 0.1

    def test_bound_remains_empirically_valid(self):
        result = run_ablation_stratified(
            trials=80, frame_count=FRAMES, fractions=(0.01, 0.05)
        )
        assert max(result.series["stratified_violation_pct"]) <= 5.0
