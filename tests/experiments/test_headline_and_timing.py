"""Reduced-scale tests for the headline metrics and timing accounting."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.headline import (
    run_headline_tightness,
    run_headline_tradeoff,
)
from repro.experiments.timing import run_timing

FRAMES = 3000


class TestHeadlineTightness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_headline_tightness(trials=10, frame_count=FRAMES, grid_points=4)

    def test_covers_all_guaranteed_baselines(self, result):
        assert set(result.knobs) == {
            "ebgs",
            "hoeffding",
            "hoeffding-serfling",
            "stein",
        }

    def test_mean_family_improvements_positive(self, result):
        maxima = dict(zip(result.knobs, result.series["max_improvement_pct"]))
        assert maxima["ebgs"] > 0
        assert maxima["hoeffding"] > 0
        assert maxima["hoeffding-serfling"] > 0

    def test_max_at_least_mean(self, result):
        for maximum, mean in zip(
            result.series["max_improvement_pct"],
            result.series["mean_improvement_pct"],
        ):
            if not (math.isnan(maximum) or math.isnan(mean)):
                assert maximum >= mean


class TestHeadlineTradeoff:
    @pytest.fixture(scope="class")
    def result(self):
        return run_headline_tradeoff(trials=10, frame_count=FRAMES)

    def test_oracle_never_larger_than_choices(self, result):
        for oracle, ours, ebgs in zip(
            result.series["oracle_fraction"],
            result.series["smokescreen_fraction"],
            result.series["ebgs_fraction"],
        ):
            if not math.isnan(oracle):
                assert oracle <= ours + 1e-12
                assert oracle <= ebgs + 1e-12

    def test_smokescreen_never_more_conservative_than_ebgs(self, result):
        for ours, ebgs in zip(
            result.series["smokescreen_fraction"], result.series["ebgs_fraction"]
        ):
            assert ours <= ebgs + 1e-12

    def test_regret_reduction_in_unit_range(self, result):
        for value in result.series["regret_reduction_pct"]:
            if not math.isnan(value):
                assert 0.0 <= value <= 100.0


class TestTiming:
    def test_invocation_accounting(self):
        result = run_timing(frame_count=FRAMES, max_fraction=0.02, resolution_count=4)
        per_resolution = result.series["invocations"]
        expected = round(FRAMES * 0.02)
        assert all(value == expected for value in per_resolution)

    def test_model_seconds_grow_with_resolution(self):
        result = run_timing(frame_count=FRAMES, max_fraction=0.02, resolution_count=4)
        seconds = result.series["model_seconds"]
        assert seconds == sorted(seconds)

    def test_notes_report_totals(self):
        result = run_timing(frame_count=FRAMES, max_fraction=0.02, resolution_count=4)
        joined = " ".join(result.notes)
        assert "total model invocations" in joined
        assert "estimation" in joined
