"""Tests for workload definitions, reporting, and metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.metrics import (
    tightness_improvement,
    true_error,
    violation_rate,
)
from repro.experiments.reporting import ExperimentResult
from repro.experiments.workloads import (
    FIGURE4_END_FRACTIONS,
    Workload,
    load_dataset,
    model_for,
    paper_workloads,
    shared_suite,
)
from repro.query.aggregates import Aggregate


class TestWorkloads:
    def test_paper_workloads_eight_panels(self):
        workloads = paper_workloads()
        assert len(workloads) == 8
        assert {w.dataset_name for w in workloads} == {"night-street", "ua-detrac"}

    def test_dataset_cache_returns_same_object(self):
        a = load_dataset("ua-detrac", 500)
        b = load_dataset("ua-detrac", 500)
        assert a is b

    def test_model_pairing_matches_paper(self):
        assert model_for("night-street").name == "mask-rcnn-like"
        assert model_for("ua-detrac").name == "yolo-v4-like"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            load_dataset("city-walk")
        with pytest.raises(ConfigurationError):
            model_for("city-walk")

    def test_workload_query_materialisation(self):
        workload = Workload("ua-detrac", Aggregate.MAX, frame_count=500)
        query = workload.query()
        assert query.aggregate == Aggregate.MAX
        assert query.dataset.frame_count == 500
        assert workload.name == "ua-detrac/MAX"

    def test_every_panel_has_end_fraction(self):
        for workload in paper_workloads():
            if workload.aggregate in (
                Aggregate.AVG,
                Aggregate.SUM,
                Aggregate.COUNT,
                Aggregate.MAX,
            ):
                key = (workload.dataset_name, workload.aggregate)
                assert key in FIGURE4_END_FRACTIONS

    def test_shared_suite_is_singleton(self):
        assert shared_suite() is shared_suite()


class TestExperimentResult:
    def make_result(self) -> ExperimentResult:
        return ExperimentResult(
            title="demo",
            knob_label="fraction",
            knobs=[0.1, 0.2],
            series={"a": [1.0, 2.0], "b": [3.0, float("nan")]},
            notes=("hello",),
        )

    def test_rows_contain_header_and_values(self):
        rows = self.make_result().rows()
        assert rows[0] == "demo"
        assert any("fraction" in row and "a" in row for row in rows)
        assert any("0.1" in row for row in rows)
        assert rows[-1] == "note: hello"

    def test_nan_rendered(self):
        rows = self.make_result().rows()
        assert any("nan" in row for row in rows)

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            ExperimentResult(
                title="bad",
                knob_label="x",
                knobs=[1.0],
                series={"a": [1.0, 2.0]},
            )

    def test_string_knobs_supported(self):
        result = ExperimentResult(
            title="t", knob_label="strategy", knobs=["reuse"], series={"v": [1.0]}
        )
        assert any("reuse" in row for row in result.rows())


class TestMetrics:
    def test_true_error_mean_family(self, processor, detrac_dataset, yolo_car):
        from repro.query import AggregateQuery

        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.AVG)
        truth = processor.true_answer(query)
        assert true_error(processor, query, truth) == 0.0
        assert true_error(processor, query, truth * 1.1) == pytest.approx(0.1)

    def test_true_error_rank_based_for_max(self, processor, detrac_dataset, yolo_car):
        from repro.query import AggregateQuery

        query = AggregateQuery(detrac_dataset, yolo_car, Aggregate.MAX)
        truth = processor.true_answer(query)
        assert true_error(processor, query, truth) == 0.0

    def test_violation_rate(self):
        bounds = np.array([0.5, 0.1, 0.3])
        errors = np.array([0.4, 0.2, 0.3])
        assert violation_rate(bounds, errors) == pytest.approx(1 / 3)

    def test_violation_rate_rejects_empty(self):
        with pytest.raises(ValueError):
            violation_rate(np.array([]), np.array([]))

    def test_tightness_improvement(self):
        assert tightness_improvement(2.0, 1.0) == 1.0
        assert tightness_improvement(1.0, 1.0) == 0.0
        assert math.isinf(tightness_improvement(1.0, 0.0))
        assert tightness_improvement(0.0, 0.0) == 0.0


class TestAsciiChart:
    def make_result(self) -> ExperimentResult:
        return ExperimentResult(
            title="chart demo",
            knob_label="fraction",
            knobs=[0.1, 0.2, 0.4],
            series={"down": [0.9, 0.5, 0.1], "flat": [0.3, 0.3, 0.3]},
        )

    def test_chart_structure(self):
        lines = self.make_result().ascii_chart(height=6, width=30)
        assert lines[0] == "chart demo"
        assert lines[-1].startswith("legend:")
        assert "o=down" in lines[-1]
        assert "x=flat" in lines[-1]
        # Six canvas rows between the title and the axis line.
        assert sum(1 for line in lines if line.endswith("|") is False and "|" in line) >= 6

    def test_extremes_labelled(self):
        lines = self.make_result().ascii_chart(height=6, width=30)
        assert any(line.lstrip().startswith("0.9") for line in lines)
        assert any(line.lstrip().startswith("0.1") for line in lines)

    def test_monotone_series_renders_monotone(self):
        lines = self.make_result().ascii_chart(height=8, width=31)
        canvas = [line[13:] for line in lines[1:9]]
        columns = {}
        for row_index, row in enumerate(canvas):
            for col_index, glyph in enumerate(row):
                if glyph == "o":
                    columns[col_index] = row_index
        ordered = [columns[c] for c in sorted(columns)]
        assert ordered == sorted(ordered)  # decreasing values = rows go down

    def test_non_finite_values_skipped(self):
        result = ExperimentResult(
            title="inf demo",
            knob_label="x",
            knobs=[1.0, 2.0],
            series={"a": [float("inf"), 1.0]},
        )
        lines = result.ascii_chart(height=4, width=10)
        assert lines[-1].startswith("legend:")

    def test_all_non_finite_degrades_gracefully(self):
        result = ExperimentResult(
            title="empty", knob_label="x", knobs=[1.0], series={"a": [float("nan")]}
        )
        assert result.ascii_chart() == ["empty", "(no finite values to chart)"]

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            self.make_result().ascii_chart(height=1, width=1)
