"""Tests for the one-command reproduction report."""

from __future__ import annotations

import pytest

from repro.experiments.registry import ExperimentRequest
from repro.experiments.report import generate_report


class TestGenerateReport:
    def test_writes_markdown_with_all_requested_tables(self, tmp_path):
        path = tmp_path / "report.md"
        entries = generate_report(
            path,
            ExperimentRequest(frames=2000, trials=3),
            names=("fig3", "fig8"),
        )
        assert [entry.name for entry in entries] == ["fig3", "fig8"]
        assert all(entry.succeeded for entry in entries)
        text = path.read_text()
        assert "# Smokescreen reproduction report" in text
        assert "## fig3 [ok" in text
        assert "Figure 8" in text

    def test_failures_recorded_not_raised(self, tmp_path):
        path = tmp_path / "report.md"
        entries = generate_report(
            path,
            # fig6 with a VAR aggregate is rejected by the runner.
            ExperimentRequest(frames=2000, trials=2, aggregate=__import__(
                "repro.query.aggregates", fromlist=["Aggregate"]
            ).Aggregate.VAR),
            names=("fig6", "fig8"),
        )
        by_name = {entry.name: entry for entry in entries}
        assert not by_name["fig6"].succeeded
        assert by_name["fig8"].succeeded
        text = path.read_text()
        assert "## fig6 [FAILED" in text

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli_report.md"
        code = main([
            "report", "--output", str(path), "--frames", "2000",
            "--trials", "3", "--only", "fig8,ablation-reuse",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 experiments" in out
        assert path.exists()

    def test_cli_report_failure_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli_report.md"
        code = main([
            "report", "--output", str(path), "--frames", "2000",
            "--trials", "2", "--only", "no-such-experiment",
        ])
        assert code == 1
        assert "failed" in capsys.readouterr().out
