"""Reduced-scale runs of every figure experiment: shapes and invariants.

The benchmarks run these at the paper's full scale; here each runner is
exercised at a few thousand frames and a handful of trials to keep the
suite fast while still checking the qualitative claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.zoo import YOLO_ANOMALY_SIDE
from repro.experiments.ablations import (
    run_ablation_anomaly,
    run_ablation_radius,
    run_ablation_replacement,
    run_ablation_reuse,
)
from repro.experiments.fig3_tradeoff_curves import run_fig3
from repro.experiments.fig4_bound_comparison import run_fig4
from repro.experiments.fig5_clt_violations import run_fig5
from repro.experiments.fig6_profile_repair import run_fig6
from repro.experiments.fig7_resolution_anomaly import run_fig7
from repro.experiments.fig8_count_distribution import (
    distribution_distance,
    run_fig8,
)
from repro.experiments.fig9_correction_size import run_fig9
from repro.experiments.fig10_profile_similarity import (
    run_fig10_resolution,
    run_fig10_sampling,
)
from repro.experiments.timing import run_timing
from repro.query.aggregates import Aggregate

FRAMES = 4000


class TestFig3:
    def test_curves_differ_by_dataset(self):
        result = run_fig3(frame_count=FRAMES, resolution_count=6)
        night = np.array(result.series["night-street"])
        detrac = np.array(result.series["ua-detrac"])
        assert night.shape == detrac.shape
        assert not np.allclose(night, detrac, atol=0.02)

    def test_error_vanishes_at_native(self):
        result = run_fig3(frame_count=FRAMES, resolution_count=6)
        assert result.series["ua-detrac"][-1] < 0.05


class TestFig4:
    def test_avg_panel_orderings(self):
        result = run_fig4(
            "ua-detrac", Aggregate.AVG, trials=10, frame_count=FRAMES, grid_points=4
        )
        ours = np.array(result.series["smokescreen_bound"])
        ebgs = np.array(result.series["ebgs_bound"])
        assert np.all(ours <= ebgs + 1e-9)
        assert ours[-1] < ours[0]

    def test_max_panel_has_stein(self):
        result = run_fig4(
            "ua-detrac", Aggregate.MAX, trials=10, frame_count=FRAMES, grid_points=4
        )
        assert "stein_bound" in result.series
        assert "ebgs_bound" not in result.series

    def test_custom_fractions_respected(self):
        fractions = (0.01, 0.05)
        result = run_fig4(
            "ua-detrac",
            Aggregate.AVG,
            trials=5,
            frame_count=FRAMES,
            fractions=fractions,
        )
        assert tuple(result.knobs) == fractions


class TestFig5:
    def test_smokescreen_within_budget(self):
        result = run_fig5(trials=60, frame_count=FRAMES, fractions=(0.002, 0.01))
        assert max(result.series["smokescreen_violation_pct"]) <= 10.0

    def test_clt_worse_than_smokescreen_somewhere(self):
        result = run_fig5(trials=60, frame_count=FRAMES, fractions=(0.002, 0.01))
        clt = result.series["clt_violation_pct"]
        ours = result.series["smokescreen_violation_pct"]
        assert max(clt) >= max(ours)


class TestFig6:
    def test_resolution_row_red_circle(self):
        """The uncorrected bound under-covers at low resolution; the
        corrected bound does not."""
        result = run_fig6(
            "ua-detrac", Aggregate.AVG, "resolution", trials=10, frame_count=FRAMES
        )
        errors = np.array(result.series["true_error"])
        uncorrected = np.array(result.series["bound_no_correction"])
        corrected = np.array(result.series["bound_with_correction"])
        assert uncorrected[0] < errors[0]
        assert np.all(corrected >= errors - 0.05)

    def test_sampling_row_min_rule(self):
        """On the random axis the corrected bound is never looser."""
        result = run_fig6(
            "ua-detrac", Aggregate.AVG, "sampling", trials=10, frame_count=FRAMES
        )
        corrected = np.array(result.series["bound_with_correction"])
        uncorrected = np.array(result.series["bound_no_correction"])
        assert np.all(corrected <= uncorrected + 1e-9)

    def test_rejects_sum_aggregate(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_fig6("ua-detrac", Aggregate.SUM, "sampling", trials=2)

    def test_rejects_unknown_axis(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_fig6("ua-detrac", Aggregate.AVG, "brightness", trials=2)


class TestFig7And8:
    def test_anomaly_spike(self):
        result = run_fig7(trials=10, frame_count=FRAMES)
        knobs = list(result.knobs)
        errors = result.series["true_error"]
        at = knobs.index(float(YOLO_ANOMALY_SIDE))
        assert errors[at] > errors[at + 1]

    def test_distribution_deviation(self):
        result = run_fig8(frame_count=FRAMES)
        assert distribution_distance(result, YOLO_ANOMALY_SIDE, 608) > (
            distribution_distance(result, 320, 608)
        )

    def test_histograms_cover_all_frames(self):
        result = run_fig8(frame_count=FRAMES)
        for name, histogram in result.series.items():
            assert sum(histogram) == FRAMES, name


class TestFig9:
    def test_bounds_shrink_with_correction_size(self):
        result = run_fig9(
            trials=20, frame_count=FRAMES, fractions=(0.01, 0.04, 0.08)
        )
        own = result.series["own_bound"]
        assert own[-1] < own[0]

    def test_rejects_count_aggregate(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_fig9(aggregate=Aggregate.COUNT, trials=2, frame_count=FRAMES)


class TestFig10:
    def test_limited_profile_zero_below_cap(self):
        result = run_fig10_sampling(trials=5, sizes=(10, 30, 60, 90))
        knobs = np.array(result.knobs)
        limited = np.array(result.series["limited_A_diff"])
        assert np.all(limited[knobs <= 50] == 0.0)
        assert np.any(limited[knobs > 50] > 0.0)

    def test_similar_video_closer_than_limited_on_resolution(self):
        result = run_fig10_resolution(trials=5, sides=(128, 320, 608))
        similar = np.array(result.series["similar_B_diff"])
        limited = np.array(result.series["limited_A_diff"])
        assert similar.mean() < limited.mean()

    def test_rejects_cap_above_target(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_fig10_sampling(access_limit=600, target_frames=500)


class TestTimingAndAblations:
    def test_timing_invocations_scale_with_corpus(self):
        result = run_timing(frame_count=FRAMES)
        total = sum(result.series["invocations"])
        resolutions = len(result.knobs)
        assert total == pytest.approx(0.04 * FRAMES * resolutions, rel=0.05)

    def test_ablation_radius_ordering(self):
        result = run_ablation_radius(
            trials=20, frame_count=FRAMES, fractions=(0.005, 0.05)
        )
        hs = result.series["hoeffding_serfling"]
        hoeffding = result.series["hoeffding"]
        assert all(a <= b + 1e-9 for a, b in zip(hs, hoeffding))

    def test_ablation_replacement_ordering(self):
        result = run_ablation_replacement(
            trials=20, frame_count=FRAMES, fractions=(0.01, 0.2)
        )
        without = result.series["without_replacement"]
        with_repl = result.series["with_replacement"]
        assert all(a <= b + 1e-12 for a, b in zip(without, with_repl))

    def test_ablation_reuse_saves(self):
        result = run_ablation_reuse(frame_count=FRAMES)
        reuse, naive = result.series["invocations"]
        assert reuse < naive

    def test_ablation_anomaly_isolates_artifact(self):
        result = run_ablation_anomaly(frame_count=FRAMES)
        knobs = list(result.knobs)
        at = knobs.index(float(YOLO_ANOMALY_SIDE))
        with_anomaly = result.series["with_anomaly"]
        without = result.series["without_anomaly"]
        assert with_anomaly[at] > without[at]
