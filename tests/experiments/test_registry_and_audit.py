"""Tests for the experiment registry and the coverage audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.coverage_audit import (
    GUARANTEED_ROWS,
    NOMINAL_ROWS,
    run_coverage_audit,
)
from repro.experiments.registry import (
    ExperimentRequest,
    experiment_names,
    run_experiment,
)
from repro.query.aggregates import Aggregate


class TestRegistry:
    def test_names_include_all_paper_figures(self):
        names = experiment_names()
        for figure in range(3, 10):
            assert f"fig{figure}" in names
        assert "fig10-sampling" in names and "fig10-resolution" in names

    def test_names_include_extensions_and_audit(self):
        names = experiment_names()
        for extra in ("var", "temporal", "coverage-audit", "timing"):
            assert extra in names

    def test_run_by_name(self):
        request = ExperimentRequest(frames=1500)
        result = run_experiment("fig8", request)
        assert "Figure 8" in result.title

    def test_request_knobs_forwarded(self):
        request = ExperimentRequest(
            dataset="ua-detrac", aggregate=Aggregate.MAX, frames=1500, trials=3
        )
        result = run_experiment("fig4", request)
        assert "MAX" in result.title
        assert "3 trials" in result.title

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99", ExperimentRequest())


class TestCoverageAudit:
    @pytest.fixture(scope="class")
    def result(self):
        return run_coverage_audit(
            trials=40, frame_count=4000, fractions=(0.01, 0.05)
        )

    def test_one_row_per_method_aggregate_pair(self, result):
        assert len(result.knobs) == len(GUARANTEED_ROWS) + len(NOMINAL_ROWS)

    def test_guaranteed_rows_within_budget(self, result):
        worst = np.array(result.series["worst_violation_pct"])
        guaranteed = np.array(result.series["guaranteed"]) == 1.0
        # 40 trials/cell: allow binomial headroom over the 5% budget.
        assert worst[guaranteed].max() <= 12.5

    def test_every_aggregate_covered_for_smokescreen(self, result):
        smokescreen_rows = [
            str(knob) for knob in result.knobs if str(knob).startswith("smokescreen/")
        ]
        covered = {row.split("/")[1] for row in smokescreen_rows}
        assert covered == {"AVG", "SUM", "COUNT", "MAX", "MIN", "VAR"}

    def test_count_row_uses_known_indicator_range(self):
        """The regression this audit caught: near-constant indicator
        samples must not produce falsely certain COUNT bounds. At a tiny
        fraction of the busy corpus, the COUNT row stays within budget."""
        result = run_coverage_audit(
            trials=60, frame_count=4000, fractions=(0.005,)
        )
        knobs = [str(k) for k in result.knobs]
        count_row = knobs.index("smokescreen/COUNT")
        assert result.series["worst_violation_pct"][count_row] <= 10.0
