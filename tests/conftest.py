"""Shared fixtures: small calibrated corpora and detectors.

Datasets are scaled-down versions of the paper presets (a few thousand
frames instead of ~15k-19k) so the suite stays fast while preserving the
statistical structure the algorithms depend on. Session scope: corpora and
detector caches are immutable, so sharing them across tests is safe and
saves most of the suite's runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection import (
    DetectorSuite,
    default_suite,
    mask_rcnn_like,
    mtcnn_like,
    yolo_v4_like,
)
from repro.query import QueryProcessor
from repro.video import night_street, ua_detrac


@pytest.fixture(scope="session")
def night_dataset():
    """A small night-street corpus (sparse traffic, native 640)."""
    return night_street(frame_count=4000)


@pytest.fixture(scope="session")
def detrac_dataset():
    """A small UA-DETRAC corpus (busy traffic, native 608)."""
    return ua_detrac(frame_count=4000)


@pytest.fixture(scope="session")
def suite() -> DetectorSuite:
    """The default restricted-class detector suite (shared caches)."""
    return default_suite()


@pytest.fixture(scope="session")
def yolo_car():
    """A YOLOv4-like car detector (shared output cache)."""
    return yolo_v4_like()


@pytest.fixture(scope="session")
def mask_rcnn_car():
    """A Mask R-CNN-like car detector (shared output cache)."""
    return mask_rcnn_like()


@pytest.fixture(scope="session")
def mtcnn_face():
    """An MTCNN-like face detector."""
    return mtcnn_like()


@pytest.fixture(scope="session")
def processor(suite) -> QueryProcessor:
    """A query processor wired to the default suite."""
    return QueryProcessor(suite)


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic randomness per test."""
    return np.random.default_rng(12345)
