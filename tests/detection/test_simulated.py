"""Tests for the deterministic simulated detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.response import ResolutionResponse
from repro.detection.simulated import SimulatedDetector
from repro.detection.zoo import yolo_v4_like
from repro.errors import ConfigurationError
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


def plain_detector(threshold: float = 0.7) -> SimulatedDetector:
    return SimulatedDetector(
        name="plain",
        target_class=ObjectClass.CAR,
        response=ResolutionResponse(midpoint_size=14.0, slope=0.25),
        threshold=threshold,
    )


class TestDeterminism:
    def test_repeated_runs_identical(self, detrac_dataset):
        detector = plain_detector()
        first = detector.run(detrac_dataset, Resolution(256)).counts
        second = detector.run(detrac_dataset, Resolution(256)).counts
        assert np.array_equal(first, second)

    def test_fresh_instance_identical(self, detrac_dataset):
        """Outputs depend only on configuration, not instance identity."""
        first = plain_detector().run(detrac_dataset, Resolution(256)).counts
        second = plain_detector().run(detrac_dataset, Resolution(256)).counts
        assert np.array_equal(first, second)

    def test_cache_returns_same_array(self, detrac_dataset):
        detector = plain_detector()
        first = detector.run(detrac_dataset, Resolution(320)).counts
        second = detector.run(detrac_dataset, Resolution(320)).counts
        assert first is second

    def test_cached_outputs_read_only(self, detrac_dataset):
        detector = plain_detector()
        counts = detector.run(detrac_dataset, Resolution(320)).counts
        with pytest.raises(ValueError):
            counts[0] = 99

    def test_clear_cache(self, detrac_dataset):
        detector = plain_detector()
        first = detector.run(detrac_dataset).counts
        detector.clear_cache()
        second = detector.run(detrac_dataset).counts
        assert first is not second
        assert np.array_equal(first, second)


class TestResolutionBehaviour:
    def test_recall_monotone_in_resolution(self, detrac_dataset):
        """Without anomaly terms, lower resolution never detects more."""
        detector = plain_detector()
        sides = [128, 192, 256, 320, 448, 608]
        totals = [
            detector.run(detrac_dataset, Resolution(side)).counts.sum()
            for side in sides
        ]
        assert totals == sorted(totals)

    def test_per_frame_monotone(self, detrac_dataset):
        """Per-object determinism makes monotonicity hold frame-wise."""
        detector = plain_detector()
        low = detector.run(detrac_dataset, Resolution(128)).counts
        high = detector.run(detrac_dataset, Resolution(608)).counts
        assert np.all(low <= high)

    def test_native_default_resolution(self, detrac_dataset):
        detector = plain_detector()
        outputs = detector.run(detrac_dataset)
        assert outputs.resolution == detrac_dataset.native_resolution

    def test_rejects_upscaling(self, detrac_dataset):
        detector = plain_detector()
        with pytest.raises(ConfigurationError):
            detector.run(detrac_dataset, Resolution(1024))

    def test_quality_degrades_recall(self, detrac_dataset):
        detector = plain_detector()
        full = detector.run(detrac_dataset, quality=1.0).counts.sum()
        noisy = detector.run(detrac_dataset, quality=0.5).counts.sum()
        assert noisy < full

    def test_rejects_bad_quality(self, detrac_dataset):
        detector = plain_detector()
        with pytest.raises(ConfigurationError):
            detector.run(detrac_dataset, quality=0.0)
        with pytest.raises(ConfigurationError):
            detector.run(detrac_dataset, quality=1.5)

    def test_lower_threshold_detects_more(self, detrac_dataset):
        strict = plain_detector(threshold=0.9).run(detrac_dataset).counts.sum()
        lenient = plain_detector(threshold=0.5).run(detrac_dataset).counts.sum()
        assert lenient >= strict

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            plain_detector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            plain_detector(threshold=1.0)


class TestAnomaly:
    def test_yolo_anomaly_breaks_monotonicity(self, detrac_dataset):
        """The 384x384 duplicate anomaly (Figure 7): mean counts at 384
        exceed both neighbours."""
        detector = yolo_v4_like()
        mean_384 = detector.run(detrac_dataset, Resolution(384)).counts.mean()
        mean_320 = detector.run(detrac_dataset, Resolution(320)).counts.mean()
        mean_448 = detector.run(detrac_dataset, Resolution(448)).counts.mean()
        assert mean_384 > mean_448 > mean_320

    def test_anomaly_can_be_disabled(self, detrac_dataset):
        from repro.detection.zoo import yolo_v4_like as make

        detector = make(with_anomaly=False)
        mean_384 = detector.run(detrac_dataset, Resolution(384)).counts.mean()
        mean_448 = detector.run(detrac_dataset, Resolution(448)).counts.mean()
        assert mean_384 <= mean_448


class TestOutputs:
    def test_presence_flags(self, detrac_dataset):
        detector = plain_detector()
        outputs = detector.run(detrac_dataset)
        assert np.array_equal(outputs.presence, outputs.counts > 0)

    def test_counts_nonnegative_integers(self, detrac_dataset):
        counts = plain_detector().run(detrac_dataset, Resolution(192)).counts
        assert counts.dtype == np.int64
        assert counts.min() >= 0

    def test_empty_class_detector_sees_nothing(self, detrac_dataset):
        """No face objects exist for a detector with zero false positives
        when faces are absent? Faces exist in DETRAC, so use an unused
        threshold check instead: the detector only counts its own class."""
        car_total = plain_detector().run(detrac_dataset).counts.sum()
        face_detector = SimulatedDetector(
            name="face-only",
            target_class=ObjectClass.FACE,
            response=ResolutionResponse(midpoint_size=6.0, slope=0.6),
            threshold=0.8,
        )
        face_total = face_detector.run(detrac_dataset).counts.sum()
        assert face_total < car_total
