"""Tests for the detector presets and the restricted-class suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.zoo import (
    DetectorSuite,
    default_suite,
    mask_rcnn_like,
    mtcnn_like,
    yolo_v4_like,
)
from repro.errors import ConfigurationError
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


class TestPresets:
    def test_paper_thresholds(self):
        assert yolo_v4_like().threshold == 0.7
        assert mask_rcnn_like().threshold == 0.7
        assert mtcnn_like().threshold == 0.8

    def test_target_classes(self):
        assert yolo_v4_like().target_class == ObjectClass.CAR
        assert yolo_v4_like(target_class=ObjectClass.PERSON).target_class == (
            ObjectClass.PERSON
        )
        assert mtcnn_like().target_class == ObjectClass.FACE

    def test_names_stable(self):
        assert yolo_v4_like().name == "yolo-v4-like"
        assert yolo_v4_like(with_anomaly=False).name == "yolo-v4-like-no-anomaly"
        assert mask_rcnn_like().name == "mask-rcnn-like"
        assert mtcnn_like().name == "mtcnn-like"

    def test_detects_most_objects_at_native(self, detrac_dataset):
        """The paper's ground-truth definition needs near-complete recall
        at native resolution."""
        detector = yolo_v4_like()
        detected = detector.run(detrac_dataset).counts.sum()
        truth = detrac_dataset.true_counts(ObjectClass.CAR).sum()
        assert detected / truth > 0.8

    def test_faces_vanish_at_low_resolution(self, detrac_dataset):
        """Resolution reduction as face privacy: MTCNN-like recall collapses."""
        detector = mtcnn_like()
        native = detector.run(detrac_dataset).counts.sum()
        degraded = detector.run(detrac_dataset, Resolution(128)).counts.sum()
        assert native > 0
        assert degraded < 0.05 * native


class TestDetectorSuite:
    def test_default_suite_composition(self):
        suite = default_suite()
        assert suite.person_detector.target_class == ObjectClass.PERSON
        assert suite.face_detector.target_class == ObjectClass.FACE

    def test_detector_for_routes_classes(self):
        suite = default_suite()
        assert suite.detector_for(ObjectClass.PERSON) is suite.person_detector
        assert suite.detector_for(ObjectClass.FACE) is suite.face_detector

    def test_detector_for_rejects_car(self):
        with pytest.raises(ConfigurationError):
            default_suite().detector_for(ObjectClass.CAR)

    def test_presence_prevalence_matches_paper(self):
        """Full-size corpora reproduce §5.1's containment statistics."""
        from repro.video import night_street, ua_detrac

        suite = default_suite()
        night = night_street()
        detrac = ua_detrac()
        night_person = suite.presence(night, ObjectClass.PERSON).mean()
        night_face = suite.presence(night, ObjectClass.FACE).mean()
        detrac_person = suite.presence(detrac, ObjectClass.PERSON).mean()
        detrac_face = suite.presence(detrac, ObjectClass.FACE).mean()
        assert night_person == pytest.approx(0.1418, abs=0.02)
        assert night_face == pytest.approx(0.0402, abs=0.015)
        assert detrac_person == pytest.approx(0.6586, abs=0.04)
        assert detrac_face == pytest.approx(0.0248, abs=0.015)

    def test_presence_boolean(self, detrac_dataset, suite):
        flags = suite.presence(detrac_dataset, ObjectClass.PERSON)
        assert flags.dtype == bool
        assert flags.size == detrac_dataset.frame_count

    def test_person_presence_correlates_with_cars(self, detrac_dataset, suite, yolo_car):
        """The §5.2.2 mechanism: person frames have more cars on average."""
        persons = suite.presence(detrac_dataset, ObjectClass.PERSON)
        cars = yolo_car.run(detrac_dataset).counts
        assert cars[persons].mean() > cars[~persons].mean()
