"""Tests for the persistent detector-output cache."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.detection import diskcache
from repro.detection.diskcache import DetectorDiskCache
from repro.detection.response import ResolutionResponse
from repro.detection.simulated import SimulatedDetector
from repro.errors import ConfigurationError
from repro.system import telemetry
from repro.video import ua_detrac
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution

KEY = ("ua-detrac", 900, "abcd" * 6)


def make_cache(tmp_path, byte_limit=None) -> DetectorDiskCache:
    return DetectorDiskCache(tmp_path / "cache", byte_limit=byte_limit)


class TestDigest:
    def test_stable(self):
        assert DetectorDiskCache.digest("yolo", KEY, 608, 1.0) == (
            DetectorDiskCache.digest("yolo", KEY, 608, 1.0)
        )

    @pytest.mark.parametrize(
        "other",
        [
            ("mtcnn", KEY, 608, 1.0),
            ("yolo", ("ua-detrac", 900, "ffff" * 6), 608, 1.0),
            ("yolo", KEY, 304, 1.0),
            ("yolo", KEY, 608, 0.8),
        ],
    )
    def test_every_field_distinguishes(self, other):
        assert DetectorDiskCache.digest("yolo", KEY, 608, 1.0) != (
            DetectorDiskCache.digest(*other)
        )


class TestStoreLoad:
    def test_roundtrip_preserves_values_and_dtype(self, tmp_path):
        cache = make_cache(tmp_path)
        counts = np.arange(50, dtype=float) * 0.5
        digest = DetectorDiskCache.digest("yolo", KEY, 608, 1.0)
        cache.store(digest, counts)
        assert cache.contains(digest)
        loaded = cache.load(digest)
        assert loaded.dtype == counts.dtype
        assert np.array_equal(loaded, counts)

    def test_missing_entry_is_none(self, tmp_path):
        assert make_cache(tmp_path).load("0" * 32) is None

    def test_corrupt_entry_behaves_like_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        digest = DetectorDiskCache.digest("yolo", KEY, 608, 1.0)
        cache.store(digest, np.ones(10))
        (cache.root / f"{digest}.npz").write_bytes(b"not a zipfile")
        assert cache.load(digest) is None

    def test_truncated_npz_is_a_miss_and_is_removed(self, tmp_path):
        """A truncated entry keeps the PK zip magic, so ``np.load`` raises
        ``zipfile.BadZipFile`` rather than ``ValueError`` — it must still
        behave like a miss and the poisoned file must be deleted."""
        cache = make_cache(tmp_path)
        digest = DetectorDiskCache.digest("yolo", KEY, 608, 1.0)
        cache.store(digest, np.arange(500, dtype=float))
        path = cache.root / f"{digest}.npz"
        payload = path.read_bytes()
        assert payload[:2] == b"PK"
        path.write_bytes(payload[: len(payload) // 2])
        assert cache.load(digest) is None
        assert not path.exists()  # cannot fail every future load

    def test_corrupt_load_counts_telemetry_and_store_heals(self, tmp_path):
        cache = make_cache(tmp_path)
        digest = DetectorDiskCache.digest("yolo", KEY, 304, 1.0)
        cache.store(digest, np.ones(20))
        payload = (cache.root / f"{digest}.npz").read_bytes()
        (cache.root / f"{digest}.npz").write_bytes(payload[:40])
        registry = telemetry.enable()
        try:
            assert cache.load(digest) is None
            counters = registry.snapshot().counters
            assert counters["cache.corrupt"] == 1.0
            assert counters["cache.miss"] == 1.0
            assert "cache.hit" not in counters
            # A re-store after the discard serves loads again.
            cache.store(digest, np.ones(20))
            assert np.array_equal(cache.load(digest), np.ones(20))
            assert registry.snapshot().counters["cache.hit"] == 1.0
        finally:
            telemetry.disable()

    def test_no_temporaries_left_behind(self, tmp_path):
        cache = make_cache(tmp_path)
        for i in range(5):
            cache.store(f"{i:032x}", np.ones(100))
        assert not list(cache.root.glob("*.tmp"))
        assert len(cache.entries()) == 5

    def test_clear_empties_and_counts(self, tmp_path):
        cache = make_cache(tmp_path)
        for i in range(3):
            cache.store(f"{i:032x}", np.ones(10))
        assert cache.clear() == 3
        assert cache.entries() == []
        assert cache.total_bytes() == 0


class TestEviction:
    def test_lru_evicts_oldest_first(self, tmp_path):
        # Each compressed entry is a few hundred bytes; a 2.5-entry budget
        # keeps the two most recently used.
        cache = make_cache(tmp_path)
        entry_bytes = 0
        for i in range(4):
            cache.store(f"{i:032x}", np.full(200, float(i)))
            if not entry_bytes:
                entry_bytes = cache.total_bytes()
        # Give the entries strictly increasing mtimes (filesystem stamps
        # can collide within one tick), then shrink the budget.
        for i in range(4):
            path = cache.root / f"{i:032x}.npz"
            os.utime(path, (1000 + i, 1000 + i))
        bounded = DetectorDiskCache(cache.root, byte_limit=int(entry_bytes * 2.5))
        bounded.store("f" * 32, np.full(200, 9.0))
        survivors = {path.stem for path in bounded.entries()}
        assert "f" * 32 in survivors  # newest always kept
        assert f"{0:032x}" not in survivors  # oldest evicted
        assert bounded.total_bytes() <= bounded.byte_limit

    def test_load_refreshes_recency(self, tmp_path):
        cache = make_cache(tmp_path)
        for i in range(3):
            cache.store(f"{i:032x}", np.full(200, float(i)))
            os.utime(cache.root / f"{i:032x}.npz", (1000 + i, 1000 + i))
        entry_bytes = cache.total_bytes() // 3
        cache.load(f"{0:032x}")  # touch the oldest
        bounded = DetectorDiskCache(cache.root, byte_limit=int(entry_bytes * 2.5))
        bounded.store("f" * 32, np.full(200, 9.0))
        survivors = {path.stem for path in bounded.entries()}
        assert f"{0:032x}" in survivors  # refreshed, so no longer LRU
        assert f"{1:032x}" not in survivors

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ConfigurationError):
            make_cache(tmp_path, byte_limit=0)

    def test_oversized_entry_survives_its_own_store(self, tmp_path):
        """A single entry above the budget must not evict itself: the
        store would otherwise silently turn every later load into a miss."""
        cache = make_cache(tmp_path, byte_limit=64)
        digest = "a" * 32
        counts = np.arange(2000, dtype=float)
        cache.store(digest, counts)
        assert cache.contains(digest)
        assert np.array_equal(cache.load(digest), counts)

    def test_oversized_store_still_evicts_older_entries(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("b" * 32, np.full(200, 1.0))
        os.utime(cache.root / ("b" * 32 + ".npz"), (1000, 1000))
        bounded = DetectorDiskCache(cache.root, byte_limit=64)
        bounded.store("a" * 32, np.arange(2000, dtype=float))
        survivors = {path.stem for path in bounded.entries()}
        assert survivors == {"a" * 32}  # old entry went, new one stayed

    def test_eviction_counts_evicted_bytes(self, tmp_path):
        cache = make_cache(tmp_path)
        for i in range(3):
            cache.store(f"{i:032x}", np.full(200, float(i)))
            os.utime(cache.root / f"{i:032x}.npz", (1000 + i, 1000 + i))
        entry_bytes = cache.total_bytes() // 3
        registry = telemetry.enable()
        try:
            bounded = DetectorDiskCache(
                cache.root, byte_limit=int(entry_bytes * 2.5)
            )
            bounded.store("f" * 32, np.full(200, 9.0))
            counters = registry.snapshot().counters
            assert counters["cache.evicted"] >= 1.0
            assert counters["cache.evicted_bytes"] > 0.0
            assert counters["cache.store"] == 1.0
        finally:
            telemetry.disable()


class TestActivation:
    def test_activate_deactivate_roundtrip(self, tmp_path):
        assert diskcache.active_cache() is None
        cache = diskcache.activate(tmp_path / "cache", byte_limit=10_000)
        try:
            assert diskcache.active_cache() is cache
            assert cache.byte_limit == 10_000
        finally:
            diskcache.deactivate()
        assert diskcache.active_cache() is None

    def test_detector_serves_outputs_across_instances(self, tmp_path):
        """A second detector instance (fresh memory cache) must read the
        first instance's outputs from disk, bit-for-bit."""

        def make_detector():
            return SimulatedDetector(
                name="disk-probe",
                target_class=ObjectClass.CAR,
                response=ResolutionResponse(midpoint_size=14.0, slope=0.25),
                threshold=0.7,
            )

        corpus = ua_detrac(frame_count=400, seed=21)
        diskcache.activate(tmp_path / "cache")
        try:
            first = make_detector().run(corpus, Resolution(304)).counts
            second_detector = make_detector()
            second = second_detector.run(corpus, Resolution(304)).counts
            assert np.array_equal(first, second)
            assert second_detector.output_was_precomputed(
                corpus, Resolution(304), 1.0
            )
        finally:
            diskcache.deactivate()
