"""Differential tests for scenario detector-response models.

Every scenario must (a) be an exact identity at zero severity, (b) be
deterministic, (c) actually move detector outputs at non-zero severity, and
(d) keep a distinct persistent-cache identity from the clean detector — so
hostile outputs can never poison clean cache entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.scenario import (
    CompressionAttackResponse,
    MisalignmentResponse,
    OcclusionResponse,
    ScenarioDetector,
    TargetedCorruptionResponse,
    WeatherExposureResponse,
)
from repro.detection.zoo import mask_rcnn_like, yolo_v4_like
from repro.errors import ConfigurationError
from repro.video.geometry import Resolution

SCENARIO_TYPES = [
    OcclusionResponse,
    MisalignmentResponse,
    WeatherExposureResponse,
    TargetedCorruptionResponse,
    CompressionAttackResponse,
]


@pytest.fixture(scope="module")
def base_detector():
    return yolo_v4_like()


class TestZeroSeverityIdentity:
    @pytest.mark.parametrize("scenario_type", SCENARIO_TYPES)
    def test_zero_severity_matches_base(
        self, scenario_type, base_detector, detrac_dataset
    ):
        wrapped = ScenarioDetector(base_detector, scenario_type(0.0))
        for resolution in (None, Resolution(384), Resolution(256)):
            clean = base_detector.run(detrac_dataset, resolution).counts
            perturbed = wrapped.run(detrac_dataset, resolution).counts
            assert np.array_equal(clean, perturbed)


class TestPerturbation:
    @pytest.mark.parametrize("scenario_type", SCENARIO_TYPES)
    def test_full_severity_changes_outputs(
        self, scenario_type, base_detector, detrac_dataset
    ):
        wrapped = ScenarioDetector(base_detector, scenario_type(0.9))
        clean = base_detector.run(detrac_dataset).counts
        perturbed = wrapped.run(detrac_dataset).counts
        assert not np.array_equal(clean, perturbed)

    @pytest.mark.parametrize("scenario_type", SCENARIO_TYPES)
    def test_deterministic(self, scenario_type, base_detector, detrac_dataset):
        first = ScenarioDetector(base_detector, scenario_type(0.5))
        second = ScenarioDetector(base_detector, scenario_type(0.5))
        assert np.array_equal(
            first.run(detrac_dataset).counts, second.run(detrac_dataset).counts
        )

    def test_occlusion_monotone_in_coverage(self, base_detector, detrac_dataset):
        totals = [
            ScenarioDetector(base_detector, OcclusionResponse(coverage))
            .run(detrac_dataset)
            .counts.sum()
            for coverage in (0.0, 0.3, 0.6, 0.9)
        ]
        assert totals == sorted(totals, reverse=True)
        assert totals[0] > totals[-1]

    def test_misalignment_loses_out_of_view_objects(
        self, base_detector, detrac_dataset
    ):
        mild = ScenarioDetector(base_detector, MisalignmentResponse(0.2))
        severe = ScenarioDetector(base_detector, MisalignmentResponse(0.8))
        clean_total = base_detector.run(detrac_dataset).counts.sum()
        assert mild.run(detrac_dataset).counts.sum() < clean_total
        assert severe.run(detrac_dataset).counts.sum() < (
            mild.run(detrac_dataset).counts.sum()
        )

    def test_weather_adds_phantoms_on_calm_frames(
        self, base_detector, detrac_dataset
    ):
        """Weather phantoms fire where clutter is *high*, a region the base
        false-positive model (clutter *low*) never touches."""
        scenario = WeatherExposureResponse(severity=1.0, phantom_rate=0.2)
        phantoms = scenario.extra_phantoms(detrac_dataset, Resolution(736))
        assert phantoms is not None
        fired = phantoms.astype(bool)
        assert fired.any()
        assert (detrac_dataset.clutter[fired] >= 0.8).all()

    def test_targeted_corruption_hits_highest_value_frames(
        self, base_detector, detrac_dataset
    ):
        budget = 0.1
        wrapped = ScenarioDetector(base_detector, TargetedCorruptionResponse(budget))
        clean = base_detector.run(detrac_dataset).counts
        attacked = wrapped.run(detrac_dataset).counts
        corrupted = int(np.ceil(budget * clean.size))
        zeroed = np.flatnonzero((attacked == 0) & (clean > 0))
        assert zeroed.size >= 1
        # Every surviving frame's count is <= the smallest corrupted count.
        threshold = np.sort(clean)[-corrupted]
        assert (attacked[clean < threshold] == clean[clean < threshold]).all()

    def test_compression_attack_only_drops_borderline(
        self, base_detector, detrac_dataset
    ):
        wrapped = ScenarioDetector(base_detector, CompressionAttackResponse(0.1))
        clean = base_detector.run(detrac_dataset).counts
        attacked = wrapped.run(detrac_dataset).counts
        assert (attacked <= clean).all()
        assert attacked.sum() < clean.sum()


class TestIdentityAndValidation:
    def test_cache_identity_distinct_from_base(self, base_detector):
        wrapped = ScenarioDetector(base_detector, OcclusionResponse(0.5))
        assert wrapped._cache_identity != base_detector._cache_identity

    def test_cache_identity_distinct_across_severities(self, base_detector):
        low = ScenarioDetector(base_detector, OcclusionResponse(0.2))
        high = ScenarioDetector(base_detector, OcclusionResponse(0.8))
        assert low._cache_identity != high._cache_identity

    def test_wrapper_inherits_base_configuration(self):
        base = mask_rcnn_like()
        wrapped = ScenarioDetector(base, WeatherExposureResponse(0.5))
        assert wrapped.target_class is base.target_class
        assert wrapped.threshold == base.threshold
        assert wrapped.response == base.response
        assert wrapped.name == f"{base.name}+weather-0.5"

    @pytest.mark.parametrize("scenario_type", SCENARIO_TYPES)
    def test_rejects_out_of_range_severity(self, scenario_type):
        with pytest.raises(ConfigurationError):
            scenario_type(-0.1)
        with pytest.raises(ConfigurationError):
            scenario_type(1.5)
