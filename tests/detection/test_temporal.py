"""Tests for the sequence-model extension (paper §7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.temporal import MotionEventDetector, TemporalDifferenceDetector
from repro.errors import ConfigurationError


@pytest.fixture
def flow(yolo_car):
    return TemporalDifferenceDetector(yolo_car)


@pytest.fixture
def motion(yolo_car):
    return MotionEventDetector(yolo_car, threshold_change=2)


class TestTemporalDifference:
    def test_requires_sequence_flag(self, flow):
        assert flow.requires_sequence

    def test_name_wraps_base(self, flow, yolo_car):
        assert flow.name == f"flow({yolo_car.name})"
        assert flow.target_class == yolo_car.target_class
        assert flow.threshold == yolo_car.threshold

    def test_flow_formula(self):
        counts = np.array([0, 3, 1, 4, 4])
        flow = TemporalDifferenceDetector.flow_for_order(
            counts, np.arange(5)
        )
        assert flow.tolist() == [0, 3, 0, 3, 0]

    def test_output_depends_on_sampling_pattern(self, flow, detrac_dataset):
        """The defining sequence-model property: the same frame's output
        changes with its sampled predecessor."""
        dense = flow.run_on_sample(detrac_dataset, np.arange(0, 200))
        sparse = flow.run_on_sample(detrac_dataset, np.arange(0, 200, 50))
        # Dense differences are small (smooth traffic); sparse ones larger.
        assert sparse.mean() != pytest.approx(dense.mean(), rel=0.01)

    def test_run_matches_consecutive_sample(self, flow, detrac_dataset):
        full = flow.run(detrac_dataset).counts
        sampled = flow.run_on_sample(
            detrac_dataset, np.arange(detrac_dataset.frame_count)
        )
        assert np.array_equal(full, sampled)

    def test_sample_order_is_temporal(self, flow, detrac_dataset):
        shuffled = np.array([50, 10, 30])
        ordered = np.array([10, 30, 50])
        assert np.array_equal(
            flow.run_on_sample(detrac_dataset, shuffled),
            flow.run_on_sample(detrac_dataset, ordered),
        )

    def test_rejects_empty_sample(self, flow, detrac_dataset):
        with pytest.raises(ConfigurationError):
            flow.run_on_sample(detrac_dataset, np.array([], dtype=int))


class TestMotionEvents:
    def test_outputs_are_indicators(self, motion, detrac_dataset):
        outputs = motion.run(detrac_dataset).counts
        assert set(np.unique(outputs)) <= {0, 1}

    def test_first_frame_never_motion(self, motion, detrac_dataset):
        outputs = motion.run(detrac_dataset).counts
        assert outputs[0] == 0

    def test_sparse_sampling_inflates_motion_share(self, motion, detrac_dataset):
        """The §7 bias: gaps decorrelate counts, so 'motion' inflates."""
        consecutive = motion.run(detrac_dataset).counts.mean()
        sparse = motion.run_on_sample(
            detrac_dataset, np.arange(0, detrac_dataset.frame_count, 40)
        ).mean()
        assert sparse > consecutive

    def test_threshold_validation(self, yolo_car):
        with pytest.raises(ConfigurationError):
            MotionEventDetector(yolo_car, threshold_change=0)

    def test_profiler_never_classifies_sampling_as_random(
        self, processor, detrac_dataset, motion
    ):
        from repro.core.profiler import DegradationProfiler
        from repro.interventions import InterventionPlan
        from repro.query import Aggregate, AggregateQuery

        query = AggregateQuery(detrac_dataset, motion, Aggregate.AVG)
        plan = InterventionPlan.from_knobs(f=0.1)
        assert plan.is_random_for(detrac_dataset)  # for frame-level models
        assert not DegradationProfiler._plan_is_random(query, plan)
