"""Tests for detector output-cache identity semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.response import ResolutionResponse
from repro.detection.simulated import SimulatedDetector
from repro.video import build_dataset, ua_detrac
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution
from repro.video.presets import ua_detrac_scene
from repro.video.scene import SceneModel


def make_detector() -> SimulatedDetector:
    return SimulatedDetector(
        name="cache-probe",
        target_class=ObjectClass.CAR,
        response=ResolutionResponse(midpoint_size=14.0, slope=0.25),
        threshold=0.7,
    )


class TestCacheKeys:
    def test_distinct_resolutions_distinct_entries(self, detrac_dataset):
        detector = make_detector()
        low = detector.run(detrac_dataset, Resolution(128)).counts
        high = detector.run(detrac_dataset, Resolution(512)).counts
        assert not np.array_equal(low, high)

    def test_distinct_quality_distinct_entries(self, detrac_dataset):
        detector = make_detector()
        clean = detector.run(detrac_dataset, quality=1.0).counts
        noisy = detector.run(detrac_dataset, quality=0.6).counts
        assert not np.array_equal(clean, noisy)

    def test_same_name_different_scene_never_collides(self):
        """The calibration-loop regression: identical (name, size, seed)
        with different scene parameters must produce different outputs."""
        import dataclasses

        scene_a = ua_detrac_scene()
        scene_b = dataclasses.replace(scene_a, car_intensity=1.0)
        corpus_a = build_dataset(
            scene_a, frame_count=800, seed=5, native_resolution=Resolution(608)
        )
        corpus_b = build_dataset(
            scene_b, frame_count=800, seed=5, native_resolution=Resolution(608)
        )
        assert corpus_a.name == corpus_b.name
        assert corpus_a.cache_key != corpus_b.cache_key
        detector = make_detector()
        counts_a = detector.run(corpus_a).counts
        counts_b = detector.run(corpus_b).counts
        assert counts_a.mean() > counts_b.mean()

    def test_slice_and_parent_never_collide(self):
        stream = ua_detrac(frame_count=600, seed=8)
        window = stream.slice(0, 600)  # same frames, same length
        # Identical content: identical fingerprint is correct here —
        # the cache may be shared because the outputs ARE equal.
        detector = make_detector()
        assert np.array_equal(
            detector.run(stream).counts, detector.run(window).counts
        )

    def test_same_name_different_class_never_shares_disk_entries(self, tmp_path):
        """The default suite runs ``yolo-v4-like`` for both cars and
        persons; with a persistent cache active, the person run must not
        satisfy (and so poison) the car run's lookup."""
        from repro.detection import diskcache
        from repro.detection.zoo import yolo_v4_like

        corpus = ua_detrac(frame_count=600, seed=11)
        expected = yolo_v4_like().run(corpus).counts  # no disk cache
        diskcache.activate(tmp_path / "cache")
        try:
            person = yolo_v4_like(target_class=ObjectClass.PERSON)
            person_counts = person.run(corpus).counts  # stores its entry
            car_counts = yolo_v4_like().run(corpus).counts
        finally:
            diskcache.deactivate()
        assert not np.array_equal(car_counts, person_counts)
        assert np.array_equal(car_counts, expected)

    def test_regenerated_corpus_reuses_cache(self):
        """Same (scene, size, seed) regenerated from scratch hits the
        same cache entry (deterministic generation, stable fingerprint)."""
        detector = make_detector()
        first = detector.run(ua_detrac(frame_count=500, seed=3)).counts
        second = detector.run(ua_detrac(frame_count=500, seed=3)).counts
        assert first is second  # identity: served from cache


class TestSceneValidationExtras:
    def test_negative_intensity_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SceneModel(name="bad", car_intensity=-1.0)

    def test_intensity_zero_allowed(self):
        scene = SceneModel(name="empty-road", car_intensity=0.0)
        rng = np.random.default_rng(0)
        intensity = scene.simulate_intensity(100, rng)
        assert np.all(intensity == 0.0)
