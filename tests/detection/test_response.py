"""Tests for resolution-response curves, anomaly and false-positive terms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.response import (
    AnomalyTerm,
    FalsePositiveModel,
    ResolutionResponse,
)
from repro.errors import ConfigurationError


class TestResolutionResponse:
    def test_confidence_monotone_in_size(self):
        response = ResolutionResponse(midpoint_size=14.0, slope=0.25)
        sizes = np.array([2.0, 10.0, 14.0, 40.0, 100.0])
        confidence = response.base_confidence(sizes)
        assert np.all(np.diff(confidence) > 0)

    def test_midpoint_gives_half_confidence(self):
        response = ResolutionResponse(midpoint_size=14.0, slope=0.25)
        assert response.base_confidence(np.array([14.0]))[0] == pytest.approx(0.5)

    def test_difficulty_lowers_confidence(self):
        response = ResolutionResponse(midpoint_size=10.0, slope=0.3, confidence_spread=0.3)
        easy = response.confidence(np.array([50.0]), np.array([0.0]))[0]
        hard = response.confidence(np.array([50.0]), np.array([0.99]))[0]
        assert hard < easy

    def test_large_objects_confidently_detected(self):
        response = ResolutionResponse(midpoint_size=14.0, slope=0.25)
        assert response.base_confidence(np.array([200.0]))[0] > 0.99

    @given(
        size=st.floats(min_value=0.1, max_value=500.0),
        difficulty=st.floats(min_value=0.0, max_value=0.999),
    )
    @settings(max_examples=50)
    def test_confidence_in_unit_interval(self, size, difficulty):
        response = ResolutionResponse(midpoint_size=14.0, slope=0.25, confidence_spread=0.25)
        confidence = response.confidence(np.array([size]), np.array([difficulty]))[0]
        assert 0.0 <= confidence <= 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ResolutionResponse(midpoint_size=0.0, slope=0.25)
        with pytest.raises(ConfigurationError):
            ResolutionResponse(midpoint_size=10.0, slope=-1.0)
        with pytest.raises(ConfigurationError):
            ResolutionResponse(midpoint_size=10.0, slope=0.2, confidence_spread=1.0)


class TestAnomalyTerm:
    def make_term(self) -> AnomalyTerm:
        return AnomalyTerm(
            resolution_side=384,
            duplicate_probability=0.5,
            band_low=25.0,
            band_high=200.0,
        )

    def test_inactive_at_other_resolutions(self):
        term = self.make_term()
        detected = np.array([True, True])
        sizes = np.array([50.0, 60.0])
        latents = np.array([0.1, 0.2])
        assert not term.duplicates(detected, sizes, latents, 320).any()

    def test_active_only_in_band_and_below_probability(self):
        term = self.make_term()
        detected = np.array([True, True, True, False])
        sizes = np.array([50.0, 300.0, 50.0, 50.0])
        latents = np.array([0.1, 0.1, 0.9, 0.1])
        duplicated = term.duplicates(detected, sizes, latents, 384)
        assert duplicated.tolist() == [True, False, False, False]

    def test_deterministic(self):
        term = self.make_term()
        detected = np.array([True] * 5)
        sizes = np.linspace(30, 150, 5)
        latents = np.linspace(0.0, 1.0, 5, endpoint=False)
        first = term.duplicates(detected, sizes, latents, 384)
        second = term.duplicates(detected, sizes, latents, 384)
        assert np.array_equal(first, second)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            AnomalyTerm(resolution_side=0, duplicate_probability=0.5)
        with pytest.raises(ConfigurationError):
            AnomalyTerm(resolution_side=384, duplicate_probability=1.5)
        with pytest.raises(ConfigurationError):
            AnomalyTerm(
                resolution_side=384, duplicate_probability=0.5, band_low=10, band_high=5
            )


class TestFalsePositiveModel:
    def test_rate_grows_as_resolution_shrinks(self):
        model = FalsePositiveModel(base_rate=0.01, gain=2.0)
        assert model.rate(128, 608) > model.rate(512, 608) >= model.rate(608, 608)

    def test_rate_at_native_equals_base(self):
        model = FalsePositiveModel(base_rate=0.01, gain=2.0)
        assert model.rate(608, 608) == pytest.approx(0.01)

    def test_counts_deterministic_threshold(self):
        model = FalsePositiveModel(base_rate=0.5, gain=0.0)
        clutter = np.array([0.1, 0.49, 0.51, 0.9])
        assert model.counts(clutter, 608, 608).tolist() == [1, 1, 0, 0]

    def test_zero_base_rate_never_fires(self):
        model = FalsePositiveModel(base_rate=0.0)
        clutter = np.random.default_rng(0).random(100)
        assert model.counts(clutter, 64, 608).sum() == 0

    def test_rate_capped_at_one(self):
        model = FalsePositiveModel(base_rate=0.9, gain=10.0)
        assert model.rate(64, 608) == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            FalsePositiveModel(base_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FalsePositiveModel(base_rate=0.1, gain=-1.0)
