"""Tests for the individual intervention operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.interventions import (
    Compression,
    FrameSampling,
    ImageRemoval,
    NoiseAddition,
    ResolutionReduction,
)
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


class TestFrameSampling:
    def test_is_random(self):
        assert FrameSampling(0.1).is_random

    def test_label(self):
        assert FrameSampling(0.1).label == "sampling f=0.1"

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_rejects_bad_fraction(self, fraction):
        with pytest.raises(ConfigurationError):
            FrameSampling(fraction)

    def test_full_sampling_allowed(self):
        assert FrameSampling(1.0).fraction == 1.0


class TestResolutionReduction:
    def test_is_non_random(self):
        assert not ResolutionReduction(Resolution(256)).is_random

    def test_label(self):
        assert ResolutionReduction(Resolution(256)).label == "resolution 256x256"


class TestImageRemoval:
    def test_is_non_random(self):
        assert not ImageRemoval((ObjectClass.PERSON,)).is_random

    def test_label_joins_classes(self):
        removal = ImageRemoval((ObjectClass.PERSON, ObjectClass.FACE))
        assert removal.label == "remove person+face"

    def test_rejects_empty_classes(self):
        with pytest.raises(ConfigurationError):
            ImageRemoval(())

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            ImageRemoval((ObjectClass.PERSON, ObjectClass.PERSON))

    def test_eligible_mask_excludes_flagged_frames(self, detrac_dataset, suite):
        removal = ImageRemoval((ObjectClass.PERSON,))
        mask = removal.eligible_mask(detrac_dataset, suite)
        flagged = suite.presence(detrac_dataset, ObjectClass.PERSON)
        assert np.array_equal(mask, ~flagged)

    def test_multi_class_mask_is_intersection(self, detrac_dataset, suite):
        both = ImageRemoval((ObjectClass.PERSON, ObjectClass.FACE))
        mask = both.eligible_mask(detrac_dataset, suite)
        persons = suite.presence(detrac_dataset, ObjectClass.PERSON)
        faces = suite.presence(detrac_dataset, ObjectClass.FACE)
        assert np.array_equal(mask, ~(persons | faces))


class TestQualityInterventions:
    def test_noise_quality_factor(self):
        assert NoiseAddition(0.3).quality_factor == pytest.approx(0.7)
        assert not NoiseAddition(0.3).is_random

    def test_noise_rejects_bad_strength(self):
        with pytest.raises(ConfigurationError):
            NoiseAddition(1.0)
        with pytest.raises(ConfigurationError):
            NoiseAddition(-0.1)

    def test_compression_quality_factor_range(self):
        assert Compression(1.0).quality_factor == 1.0
        assert Compression(0.5).quality_factor == pytest.approx(0.75)
        assert not Compression(0.5).is_random

    def test_compression_rejects_bad_quality(self):
        with pytest.raises(ConfigurationError):
            Compression(0.0)
        with pytest.raises(ConfigurationError):
            Compression(1.5)
