"""Tests for composite intervention plans and degraded sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InterventionError
from repro.interventions import (
    Compression,
    FrameSampling,
    InterventionPlan,
    NoiseAddition,
)
from repro.video.frame import ObjectClass
from repro.video.geometry import Resolution


class TestFromKnobs:
    def test_empty_plan_is_loose(self):
        plan = InterventionPlan.from_knobs()
        assert plan.is_random
        assert plan.fraction == 1.0
        assert plan.label() == "no degradation"

    def test_full_triple(self):
        plan = InterventionPlan.from_knobs(f=0.1, p=256, c=(ObjectClass.PERSON,))
        assert plan.fraction == 0.1
        assert plan.resolution.resolution == Resolution(256)
        assert plan.removal.classes == (ObjectClass.PERSON,)
        assert not plan.is_random

    def test_resolution_object_accepted(self):
        plan = InterventionPlan.from_knobs(p=Resolution(320))
        assert plan.resolution.resolution.side == 320

    def test_label_composes(self):
        plan = InterventionPlan.from_knobs(f=0.5, p=128)
        assert plan.label() == "sampling f=0.5, resolution 128x128"

    def test_removal_with_explicit_missing_suite_fails_eagerly(self):
        """Regression: removal without a DetectorSuite used to surface only
        at draw time, deep inside eligible_indices; an explicit
        ``suite=None`` now fails at construction with a clear message."""
        with pytest.raises(InterventionError, match="DetectorSuite"):
            InterventionPlan.from_knobs(c=(ObjectClass.PERSON,), suite=None)

    def test_removal_with_suite_builds(self, suite):
        plan = InterventionPlan.from_knobs(c=(ObjectClass.PERSON,), suite=suite)
        assert plan.removal is not None

    def test_explicit_none_suite_fine_without_removal(self):
        plan = InterventionPlan.from_knobs(f=0.2, suite=None)
        assert plan.removal is None

    def test_omitted_suite_keeps_late_check(self, detrac_dataset):
        plan = InterventionPlan.from_knobs(c=(ObjectClass.PERSON,))
        with pytest.raises(InterventionError, match="DetectorSuite"):
            plan.eligible_indices(detrac_dataset, None)

    def test_camera_configure_fails_eagerly_without_suite(self, detrac_dataset):
        from repro.system.camera import Camera

        camera = Camera("edge", detrac_dataset, suite=None)
        with pytest.raises(InterventionError, match="DetectorSuite"):
            camera.configure(fraction=0.5, removed_classes=(ObjectClass.FACE,))


class TestRandomness:
    def test_sampling_only_is_random(self):
        assert InterventionPlan.from_knobs(f=0.05).is_random

    def test_resolution_makes_non_random(self):
        assert not InterventionPlan.from_knobs(f=0.5, p=256).is_random

    def test_removal_makes_non_random(self):
        assert not InterventionPlan.from_knobs(c=(ObjectClass.FACE,)).is_random

    def test_extras_make_non_random(self):
        plan = InterventionPlan(
            sampling=FrameSampling(0.5), extras=(NoiseAddition(0.2),)
        )
        assert not plan.is_random

    def test_native_resolution_is_random_for_dataset(self, detrac_dataset):
        plan = InterventionPlan.from_knobs(f=0.5, p=608)
        assert not plan.is_random
        assert plan.is_random_for(detrac_dataset)

    def test_reduced_resolution_not_random_for_dataset(self, detrac_dataset):
        plan = InterventionPlan.from_knobs(f=0.5, p=512)
        assert not plan.is_random_for(detrac_dataset)

    def test_removal_never_random_for_dataset(self, detrac_dataset):
        plan = InterventionPlan.from_knobs(c=(ObjectClass.FACE,))
        assert not plan.is_random_for(detrac_dataset)


class TestQuality:
    def test_quality_multiplies_extras(self):
        plan = InterventionPlan(
            extras=(NoiseAddition(0.2), Compression(0.5))
        )
        assert plan.quality == pytest.approx(0.8 * 0.75)

    def test_quality_default_one(self):
        assert InterventionPlan().quality == 1.0


class TestEffectiveResolution:
    def test_defaults_to_native(self, detrac_dataset):
        plan = InterventionPlan.from_knobs(f=0.5)
        assert plan.effective_resolution(detrac_dataset) == Resolution(608)

    def test_reduced(self, detrac_dataset):
        plan = InterventionPlan.from_knobs(p=192)
        assert plan.effective_resolution(detrac_dataset) == Resolution(192)

    def test_rejects_above_native(self, detrac_dataset):
        plan = InterventionPlan.from_knobs(p=1024)
        with pytest.raises(InterventionError):
            plan.effective_resolution(detrac_dataset)


class TestEligibleAndDraw:
    def test_no_removal_keeps_all_frames(self, detrac_dataset, suite):
        plan = InterventionPlan.from_knobs(f=0.5)
        eligible = plan.eligible_indices(detrac_dataset, suite)
        assert eligible.size == detrac_dataset.frame_count

    def test_removal_shrinks_universe(self, detrac_dataset, suite):
        plan = InterventionPlan.from_knobs(c=(ObjectClass.PERSON,))
        eligible = plan.eligible_indices(detrac_dataset, suite)
        assert 0 < eligible.size < detrac_dataset.frame_count

    def test_removal_requires_suite(self, detrac_dataset):
        plan = InterventionPlan.from_knobs(c=(ObjectClass.PERSON,))
        with pytest.raises(InterventionError):
            plan.eligible_indices(detrac_dataset, None)

    def test_draw_respects_fraction(self, detrac_dataset, suite, rng):
        plan = InterventionPlan.from_knobs(f=0.1)
        sample = plan.draw(detrac_dataset, rng, suite)
        assert sample.size == round(detrac_dataset.frame_count * 0.1)
        assert sample.universe_size == detrac_dataset.frame_count
        assert sample.population_size == detrac_dataset.frame_count

    def test_draw_fraction_applies_to_eligible_universe(
        self, detrac_dataset, suite, rng
    ):
        plan = InterventionPlan.from_knobs(f=0.1, c=(ObjectClass.PERSON,))
        sample = plan.draw(detrac_dataset, rng, suite)
        assert sample.universe_size < detrac_dataset.frame_count
        assert sample.size == round(sample.universe_size * 0.1)

    def test_drawn_frames_all_eligible(self, detrac_dataset, suite, rng):
        plan = InterventionPlan.from_knobs(f=0.2, c=(ObjectClass.PERSON,))
        eligible = set(plan.eligible_indices(detrac_dataset, suite).tolist())
        sample = plan.draw(detrac_dataset, rng, suite)
        assert set(sample.frame_indices.tolist()) <= eligible

    def test_draw_distinct_frames(self, detrac_dataset, suite, rng):
        plan = InterventionPlan.from_knobs(f=0.3)
        sample = plan.draw(detrac_dataset, rng, suite)
        assert len(set(sample.frame_indices.tolist())) == sample.size

    def test_sample_carries_resolution_and_quality(self, detrac_dataset, suite, rng):
        plan = InterventionPlan(
            sampling=FrameSampling(0.1),
            extras=(NoiseAddition(0.5),),
        )
        sample = plan.draw(detrac_dataset, rng, suite)
        assert sample.resolution == detrac_dataset.native_resolution
        assert sample.quality == pytest.approx(0.5)
