"""Tests for the adversarial and physical intervention families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.scenario import ScenarioDetector
from repro.detection.zoo import yolo_v4_like
from repro.errors import ConfigurationError
from repro.interventions import (
    AdversarialCompression,
    CameraMisalignment,
    Intervention,
    Occlusion,
    TargetedFrameCorruption,
    WeatherExposure,
)

FAMILIES = [
    TargetedFrameCorruption,
    AdversarialCompression,
    Occlusion,
    CameraMisalignment,
    WeatherExposure,
]


class TestInterventionContract:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_is_proper_non_random_intervention(self, family):
        intervention = family(0.4)
        assert isinstance(intervention, Intervention)
        assert intervention.is_random is False
        assert "0.4" in intervention.label

    @pytest.mark.parametrize("family", FAMILIES)
    def test_rejects_out_of_range_severity(self, family):
        with pytest.raises(ConfigurationError):
            family(-0.01)
        with pytest.raises(ConfigurationError):
            family(1.01)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_attach_wraps_and_perturbs(self, family, detrac_dataset):
        base = yolo_v4_like()
        wrapped = family(0.9).attach(base)
        assert isinstance(wrapped, ScenarioDetector)
        assert wrapped.scenario == family(0.9).response()
        clean = base.run(detrac_dataset).counts
        hostile = wrapped.run(detrac_dataset).counts
        assert not np.array_equal(clean, hostile)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_zero_severity_attach_is_identity(self, family, detrac_dataset):
        base = yolo_v4_like()
        wrapped = family(0.0).attach(base)
        assert np.array_equal(
            base.run(detrac_dataset).counts, wrapped.run(detrac_dataset).counts
        )
