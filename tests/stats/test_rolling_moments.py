"""Streaming moment engines vs their batch / from-scratch references.

Three contracts, one per engine:

- :class:`RollingPrefixMoments` must be **bit-identical** to rebuilding a
  :class:`PrefixMoments` over the same prefix — not merely close: the live
  feed and the profiler's vectorized sweep must never disagree.
- :class:`SlidingWindowMoments` must track a from-scratch recomputation of
  the retained window within the repo's 1e-9 policy, with **exact** extrema.
- :class:`DecayedMoments` must satisfy the closed-form weight identities
  and match a directly evaluated weighted mean/variance.

Plus the large-offset regression: shifted cumulants must survive a ~1e8
common offset that catastrophically cancels the raw ``E[x²] − E[x]²`` form.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, EstimationError
from repro.stats.prefix_moments import (
    DecayedMoments,
    PrefixMoments,
    RollingPrefixMoments,
    SlidingWindowMoments,
)

RTOL = 1e-9
ATOL = 1e-12

finite_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(finite_values, min_size=1, max_size=120)


def batch_on_prefix(rolling: RollingPrefixMoments) -> PrefixMoments:
    """The batch engine rebuilt on exactly the appended prefix."""
    return PrefixMoments(rolling._matrix.copy())


def assert_bit_identical(
    rolling: RollingPrefixMoments, batch: PrefixMoments, n: int
) -> None:
    np.testing.assert_array_equal(rolling.mean(n), batch.mean(n))
    np.testing.assert_array_equal(rolling.variance(n), batch.variance(n))
    np.testing.assert_array_equal(
        rolling.second_moment(n), batch.second_moment(n)
    )
    np.testing.assert_array_equal(rolling.minimum(n), batch.minimum(n))
    np.testing.assert_array_equal(rolling.maximum(n), batch.maximum(n))
    np.testing.assert_array_equal(rolling.value_range(n), batch.value_range(n))
    np.testing.assert_array_equal(
        rolling.prefix_mean_matrix(n), batch.prefix_mean_matrix(n)
    )
    np.testing.assert_array_equal(
        rolling.prefix_variance_matrix(n), batch.prefix_variance_matrix(n)
    )


class TestRollingPrefixMoments:
    def test_rejects_bad_shape_params(self):
        with pytest.raises(ConfigurationError):
            RollingPrefixMoments(trials=0)
        with pytest.raises(ConfigurationError):
            RollingPrefixMoments(capacity=0)

    def test_empty_engine_rejects_queries(self):
        rolling = RollingPrefixMoments()
        with pytest.raises(ConfigurationError):
            rolling.mean(1)

    def test_append_rejects_non_finite(self):
        rolling = RollingPrefixMoments()
        rolling.append(1.0)
        with pytest.raises(EstimationError):
            rolling.append(math.nan)
        assert rolling.size == 1

    def test_append_rejects_wrong_arity(self):
        rolling = RollingPrefixMoments(trials=3)
        with pytest.raises(ConfigurationError):
            rolling.append([1.0, 2.0])

    def test_bit_identical_to_batch_across_growth(self):
        rng = np.random.default_rng(7)
        matrix = rng.gamma(2.0, 3.0, size=(9, 80))
        rolling = RollingPrefixMoments(trials=9, capacity=4)
        for j in range(matrix.shape[1]):
            rolling.append(matrix[:, j])
            if j + 1 in (1, 2, 5, 33, 80):
                batch = PrefixMoments(matrix[:, : j + 1])
                for n in range(1, j + 2):
                    if n in (1, j // 2 + 1, j + 1):
                        assert_bit_identical(rolling, batch, n)
        assert rolling.size == 80
        assert rolling.max_size == 80

    def test_extend_equals_repeated_append(self):
        rng = np.random.default_rng(11)
        block = rng.normal(5.0, 2.0, size=(3, 40))
        via_extend = RollingPrefixMoments(trials=3, capacity=8)
        via_extend.extend(block)
        via_append = RollingPrefixMoments(trials=3, capacity=8)
        for j in range(block.shape[1]):
            via_append.append(block[:, j])
        np.testing.assert_array_equal(
            via_extend.prefix_mean_matrix(40), via_append.prefix_mean_matrix(40)
        )
        np.testing.assert_array_equal(
            via_extend.prefix_variance_matrix(40),
            via_append.prefix_variance_matrix(40),
        )

    def test_extend_is_atomic_on_non_finite(self):
        rolling = RollingPrefixMoments()
        rolling.extend([1.0, 2.0, 3.0])
        before = rolling._matrix.copy()
        with pytest.raises(EstimationError):
            rolling.extend([4.0, math.inf, 5.0])
        assert rolling.size == 3
        np.testing.assert_array_equal(rolling._matrix, before)

    def test_one_dimensional_extend_for_single_feed(self):
        rolling = RollingPrefixMoments()
        rolling.extend([2.0, 4.0, 6.0])
        batch = PrefixMoments(np.array([[2.0, 4.0, 6.0]]))
        assert_bit_identical(rolling, batch, 3)

    @settings(max_examples=60, deadline=None)
    @given(values=value_lists)
    def test_property_rolling_equals_batch(self, values):
        rolling = RollingPrefixMoments(capacity=2)
        for value in values:
            rolling.append(value)
        batch = PrefixMoments(np.array([values]))
        n = len(values)
        assert_bit_identical(rolling, batch, n)
        assert_bit_identical(rolling, batch, (n + 1) // 2)


class TestSlidingWindowMoments:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowMoments(0)

    def test_empty_window_rejects_queries(self):
        window = SlidingWindowMoments(4)
        with pytest.raises(EstimationError):
            window.mean()

    def test_append_rejects_non_finite(self):
        window = SlidingWindowMoments(4)
        with pytest.raises(EstimationError):
            window.append(math.inf)

    def test_extend_is_atomic_on_non_finite(self):
        window = SlidingWindowMoments(4)
        window.extend([1.0, 2.0])
        with pytest.raises(EstimationError):
            window.extend([3.0, math.nan])
        assert window.count == 2
        np.testing.assert_array_equal(window.values(), [1.0, 2.0])

    def test_matches_scratch_recompute_with_offset(self):
        rng = np.random.default_rng(3)
        values = rng.gamma(2.0, 3.0, size=500) + 1e6
        window = SlidingWindowMoments(32)
        for i, value in enumerate(values):
            window.append(value)
            retained = values[max(0, i + 1 - 32) : i + 1]
            assert window.count == retained.size
            assert window.total_appended == i + 1
            np.testing.assert_allclose(
                window.mean(), retained.mean(), rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                window.variance(), retained.var(), rtol=1e-6, atol=1e-6
            )
            assert window.minimum() == retained.min()
            assert window.maximum() == retained.max()
            assert window.value_range() == retained.max() - retained.min()
        assert window.is_full

    def test_ddof_variance(self):
        window = SlidingWindowMoments(8)
        window.extend([1.0, 2.0, 4.0, 8.0])
        expected = np.array([1.0, 2.0, 4.0, 8.0]).var(ddof=1)
        np.testing.assert_allclose(
            window.variance(ddof=1), expected, rtol=RTOL, atol=ATOL
        )
        with pytest.raises(ConfigurationError):
            window.variance(ddof=4)

    @settings(max_examples=60, deadline=None)
    @given(
        values=value_lists,
        capacity=st.integers(min_value=1, max_value=16),
    )
    def test_property_window_equals_scratch(self, values, capacity):
        window = SlidingWindowMoments(capacity)
        array = np.array(values)
        for i, value in enumerate(values):
            window.append(value)
            retained = array[max(0, i + 1 - capacity) : i + 1]
            np.testing.assert_allclose(
                window.mean(), retained.mean(), rtol=1e-9, atol=1e-6
            )
            assert window.minimum() == retained.min()
            assert window.maximum() == retained.max()


class TestDecayedMoments:
    @pytest.mark.parametrize("decay", [0.0, 1.0, -0.5, math.nan, math.inf])
    def test_rejects_bad_decay(self, decay):
        with pytest.raises(ConfigurationError):
            DecayedMoments(decay)

    def test_empty_rejects_queries(self):
        decayed = DecayedMoments(0.9)
        with pytest.raises(EstimationError):
            decayed.mean()
        with pytest.raises(EstimationError):
            decayed.effective_size()

    def test_append_rejects_non_finite(self):
        decayed = DecayedMoments(0.9)
        with pytest.raises(EstimationError):
            decayed.append(math.nan)

    def test_extend_is_atomic_on_non_finite(self):
        decayed = DecayedMoments(0.9)
        decayed.extend([1.0, 2.0])
        weight = decayed.weight
        with pytest.raises(EstimationError):
            decayed.extend([3.0, math.inf])
        assert decayed.count == 2
        assert decayed.weight == weight

    def test_weight_identity_and_saturation(self):
        decay = 0.97
        decayed = DecayedMoments(decay)
        for n in range(1, 400):
            decayed.append(float(n % 7))
            expected = (1.0 - decay**n) / (1.0 - decay)
            np.testing.assert_allclose(
                decayed.weight, expected, rtol=RTOL, atol=ATOL
            )
        ceiling = (1.0 + decay) / (1.0 - decay)
        assert decayed.effective_size() <= ceiling + 1e-9

    def test_matches_direct_weighted_moments(self):
        rng = np.random.default_rng(5)
        values = rng.gamma(2.0, 3.0, size=200)
        decay = 0.9
        decayed = DecayedMoments(decay)
        decayed.extend(values)
        weights = decay ** np.arange(len(values) - 1, -1, -1, dtype=float)
        expected_mean = np.average(values, weights=weights)
        expected_var = np.average(
            (values - expected_mean) ** 2, weights=weights
        )
        np.testing.assert_allclose(
            decayed.mean(), expected_mean, rtol=RTOL, atol=ATOL
        )
        np.testing.assert_allclose(
            decayed.variance(), expected_var, rtol=1e-7, atol=1e-9
        )
        assert decayed.minimum() == values.min()
        assert decayed.maximum() == values.max()

    @settings(max_examples=60, deadline=None)
    @given(
        values=value_lists,
        decay=st.floats(min_value=0.05, max_value=0.995),
    )
    def test_property_weight_and_mean(self, values, decay):
        decayed = DecayedMoments(decay)
        decayed.extend(values)
        n = len(values)
        expected_weight = (1.0 - decay**n) / (1.0 - decay)
        np.testing.assert_allclose(
            decayed.weight, expected_weight, rtol=1e-9, atol=1e-9
        )
        weights = decay ** np.arange(n - 1, -1, -1, dtype=float)
        expected_mean = np.average(np.array(values), weights=weights)
        np.testing.assert_allclose(
            decayed.mean(), expected_mean, rtol=1e-9, atol=1e-6
        )
        assert 0.0 < decayed.effective_size() <= n + 1e-9


class TestLargeOffsetRegression:
    """Shifted cumulants must survive a large common offset.

    The raw ``E[x²] − E[x]²`` form loses every significant bit of a
    unit-scale spread once values sit near 1e8 (float64 keeps ~16 digits;
    the squares eat all of them). The shifted form keeps the spread.
    """

    def test_batch_variance_at_1e8_offset(self):
        rng = np.random.default_rng(13)
        matrix = rng.normal(0.0, 1.0, size=(4, 200)) + 1e8
        moments = PrefixMoments(matrix)
        for n in (2, 50, 200):
            np.testing.assert_allclose(
                moments.variance(n),
                matrix[:, :n].var(axis=1),
                rtol=1e-6,
            )
        # Unit-scale spread must survive: the cancelling form collapses
        # these to 0.0 (or negative-clipped garbage) at this offset.
        assert np.all(moments.variance(200) > 0.5)
        np.testing.assert_allclose(
            moments.prefix_variance_matrix(200)[:, 1:],
            np.stack(
                [matrix[:, :n].var(axis=1) for n in range(2, 201)], axis=1
            ),
            rtol=1e-5,
        )

    def test_rolling_variance_at_1e8_offset(self):
        rng = np.random.default_rng(17)
        values = rng.normal(0.0, 1.0, size=300) + 1e8
        rolling = RollingPrefixMoments()
        rolling.extend(values)
        np.testing.assert_allclose(
            rolling.variance(300), values.var(), rtol=1e-6
        )
        batch = PrefixMoments(values.reshape(1, -1))
        np.testing.assert_array_equal(
            rolling.variance(300), batch.variance(300)
        )

    def test_second_moment_reconstruction_at_offset(self):
        rng = np.random.default_rng(19)
        matrix = rng.normal(0.0, 1.0, size=(3, 64)) + 1e8
        moments = PrefixMoments(matrix)
        np.testing.assert_allclose(
            moments.second_moment(64),
            (matrix**2).mean(axis=1),
            rtol=1e-9,
        )
