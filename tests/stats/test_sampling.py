"""Tests for sampling designs and the progressive (nested) sampler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.sampling import (
    ProgressiveSampler,
    SampleDesign,
    sample_without_replacement,
)


class TestSampleDesign:
    def test_size_rounds_fraction(self):
        assert SampleDesign(1000, 0.1).size == 100
        assert SampleDesign(1000, 0.0015).size == 2

    def test_size_at_least_one(self):
        assert SampleDesign(1000, 0.0001).size == 1

    def test_size_capped_at_population(self):
        assert SampleDesign(10, 1.0).size == 10

    def test_draw_produces_distinct_indices(self):
        rng = np.random.default_rng(0)
        drawn = SampleDesign(100, 0.5).draw(rng)
        assert len(set(drawn.tolist())) == drawn.size == 50
        assert drawn.min() >= 0 and drawn.max() < 100

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.1])
    def test_rejects_bad_fraction(self, fraction):
        with pytest.raises(ConfigurationError):
            SampleDesign(100, fraction)

    def test_rejects_bad_population(self):
        with pytest.raises(ConfigurationError):
            SampleDesign(0, 0.5)


class TestSampleWithoutReplacement:
    def test_distinct_and_in_range(self):
        rng = np.random.default_rng(1)
        drawn = sample_without_replacement(50, 20, rng)
        assert len(set(drawn.tolist())) == 20
        assert drawn.min() >= 0 and drawn.max() < 50

    def test_full_draw_is_permutation(self):
        rng = np.random.default_rng(2)
        drawn = sample_without_replacement(30, 30, rng)
        assert sorted(drawn.tolist()) == list(range(30))

    def test_rejects_oversized_draw(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ConfigurationError):
            sample_without_replacement(10, 11, rng)

    def test_zero_draw_allowed(self):
        rng = np.random.default_rng(4)
        assert sample_without_replacement(10, 0, rng).size == 0


class TestProgressiveSampler:
    def test_prefixes_are_nested(self):
        """The reuse property: every smaller sample is a prefix of larger."""
        sampler = ProgressiveSampler(200, np.random.default_rng(5))
        small = sampler.prefix(20)
        large = sampler.prefix(100)
        assert np.array_equal(large[:20], small)

    def test_prefix_is_without_replacement(self):
        sampler = ProgressiveSampler(100, np.random.default_rng(6))
        drawn = sampler.prefix(60)
        assert len(set(drawn.tolist())) == 60

    def test_prefix_for_fraction_matches_design(self):
        sampler = ProgressiveSampler(1000, np.random.default_rng(7))
        assert sampler.prefix_for_fraction(0.05).size == SampleDesign(1000, 0.05).size

    def test_prefix_returns_copy(self):
        sampler = ProgressiveSampler(50, np.random.default_rng(8))
        first = sampler.prefix(10)
        first[0] = -1
        assert sampler.prefix(10)[0] != -1

    def test_prefix_distribution_is_uniform(self):
        """Any prefix of a uniform permutation is a uniform sample: each
        index appears in a size-k prefix with probability k/N."""
        population, k, trials = 20, 5, 4000
        hits = np.zeros(population)
        rng = np.random.default_rng(9)
        for _ in range(trials):
            sampler = ProgressiveSampler(population, rng)
            hits[sampler.prefix(k)] += 1
        expected = trials * k / population
        assert np.all(np.abs(hits - expected) < 5 * np.sqrt(expected))

    @given(size=st.integers(min_value=0, max_value=100))
    @settings(max_examples=25)
    def test_any_prefix_size_valid(self, size):
        sampler = ProgressiveSampler(100, np.random.default_rng(10))
        assert sampler.prefix(size).size == size

    def test_rejects_prefix_beyond_population(self):
        sampler = ProgressiveSampler(10, np.random.default_rng(11))
        with pytest.raises(ConfigurationError):
            sampler.prefix(11)

    def test_rejects_empty_population(self):
        with pytest.raises(ConfigurationError):
            ProgressiveSampler(0, np.random.default_rng(12))


class TestStratifiedTimeSample:
    def test_one_index_per_stratum(self):
        from repro.stats.sampling import stratified_time_sample

        rng = np.random.default_rng(20)
        sample = stratified_time_sample(1000, 10, rng)
        assert sample.size == 10
        # Each index falls inside its own tenth of the timeline.
        for position, index in enumerate(sample):
            assert 100 * position <= index < 100 * (position + 1)

    def test_indices_distinct_and_sorted(self):
        from repro.stats.sampling import stratified_time_sample

        rng = np.random.default_rng(21)
        sample = stratified_time_sample(500, 50, rng)
        assert len(set(sample.tolist())) == 50
        assert np.all(np.diff(sample) > 0)

    def test_full_census(self):
        from repro.stats.sampling import stratified_time_sample

        rng = np.random.default_rng(22)
        sample = stratified_time_sample(20, 20, rng)
        assert sorted(sample.tolist()) == list(range(20))

    def test_unbiased_inclusion(self):
        """Every frame has inclusion probability ~ n/N."""
        from repro.stats.sampling import stratified_time_sample

        rng = np.random.default_rng(23)
        population, size, trials = 40, 8, 4000
        hits = np.zeros(population)
        for _ in range(trials):
            hits[stratified_time_sample(population, size, rng)] += 1
        expected = trials * size / population
        assert np.all(np.abs(hits - expected) < 6 * np.sqrt(expected))

    def test_variance_reduction_on_correlated_series(self):
        """The point of the design: lower mean-variance than SRS on a
        smooth (positively autocorrelated) series."""
        from repro.stats.sampling import stratified_time_sample

        rng = np.random.default_rng(24)
        timeline = np.sin(np.linspace(0, 6 * np.pi, 3000)) * 5 + 10
        n, trials = 30, 400
        srs_means = np.empty(trials)
        stratified_means = np.empty(trials)
        for t in range(trials):
            srs_means[t] = timeline[
                rng.choice(timeline.size, size=n, replace=False)
            ].mean()
            stratified_means[t] = timeline[
                stratified_time_sample(timeline.size, n, rng)
            ].mean()
        assert stratified_means.var() < 0.5 * srs_means.var()

    def test_rejects_bad_arguments(self):
        from repro.errors import ConfigurationError
        from repro.stats.sampling import stratified_time_sample

        rng = np.random.default_rng(25)
        with pytest.raises(ConfigurationError):
            stratified_time_sample(0, 1, rng)
        with pytest.raises(ConfigurationError):
            stratified_time_sample(10, 11, rng)
        with pytest.raises(ConfigurationError):
            stratified_time_sample(10, 0, rng)
