"""Tests for the prefix-cumulative moment engine.

The engine's contract: every per-fraction statistic it serves in O(1) must
equal the statistic numpy computes directly on the sliced prefix (within
the repo's 1e-9 numerical-equivalence policy — cumulative sums accumulate
in a different order than numpy's pairwise reductions).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.stats.prefix_moments import PrefixMoments

RTOL = 1e-9
ATOL = 1e-12


@pytest.fixture
def matrix() -> np.ndarray:
    return np.random.default_rng(7).gamma(2.0, 3.0, size=(9, 80))


@pytest.fixture
def moments(matrix) -> PrefixMoments:
    return PrefixMoments(matrix)


class TestConstruction:
    def test_shape_properties(self, moments):
        assert moments.trials == 9
        assert moments.max_size == 80

    def test_rejects_one_dimensional(self):
        with pytest.raises(ConfigurationError):
            PrefixMoments(np.arange(5.0))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            PrefixMoments(np.empty((0, 4)))

    def test_rejects_non_finite(self):
        bad = np.ones((2, 3))
        bad[1, 2] = np.nan
        with pytest.raises(EstimationError):
            PrefixMoments(bad)

    def test_row_returns_original_values(self, moments, matrix):
        np.testing.assert_array_equal(moments.row(4), matrix[4])


class TestMomentsMatchDirect:
    @pytest.mark.parametrize("n", [1, 2, 37, 80])
    def test_mean(self, moments, matrix, n):
        np.testing.assert_allclose(
            moments.mean(n), matrix[:, :n].mean(axis=1), rtol=RTOL, atol=ATOL
        )

    @pytest.mark.parametrize("n", [1, 2, 37, 80])
    def test_population_variance(self, moments, matrix, n):
        np.testing.assert_allclose(
            moments.variance(n), matrix[:, :n].var(axis=1), rtol=RTOL, atol=ATOL
        )

    @pytest.mark.parametrize("n", [2, 37, 80])
    def test_sample_std(self, moments, matrix, n):
        np.testing.assert_allclose(
            moments.std(n, ddof=1),
            matrix[:, :n].std(axis=1, ddof=1),
            rtol=RTOL,
            atol=ATOL,
        )

    @pytest.mark.parametrize("n", [1, 37, 80])
    def test_range(self, moments, matrix, n):
        prefix = matrix[:, :n]
        np.testing.assert_array_equal(moments.minimum(n), prefix.min(axis=1))
        np.testing.assert_array_equal(moments.maximum(n), prefix.max(axis=1))
        np.testing.assert_array_equal(
            moments.value_range(n), prefix.max(axis=1) - prefix.min(axis=1)
        )

    def test_prefix_matrices_match_per_step(self, moments, matrix):
        n = 23
        means = moments.prefix_mean_matrix(n)
        variances = moments.prefix_variance_matrix(n)
        for t in range(1, n + 1):
            np.testing.assert_allclose(
                means[:, t - 1], matrix[:, :t].mean(axis=1), rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                variances[:, t - 1],
                matrix[:, :t].var(axis=1),
                rtol=RTOL,
                atol=ATOL,
            )

    def test_constant_rows_have_zero_variance(self):
        moments = PrefixMoments(np.full((3, 10), 4.2))
        np.testing.assert_array_equal(moments.variance(10), np.zeros(3))
        np.testing.assert_array_equal(moments.value_range(10), np.zeros(3))


class TestSizeValidation:
    @pytest.mark.parametrize("n", [0, -1, 81])
    def test_rejects_out_of_range_prefix(self, moments, n):
        with pytest.raises(ConfigurationError):
            moments.mean(n)

    def test_rejects_ddof_at_least_n(self, moments):
        with pytest.raises(ConfigurationError):
            moments.variance(1, ddof=1)
