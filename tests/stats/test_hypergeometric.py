"""Tests for hypergeometric moments and the normal-approximation radius."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.hypergeometric import (
    hypergeometric_mean,
    hypergeometric_variance,
    normal_approximation_interval,
    z_score,
)


class TestMoments:
    def test_mean_formula(self):
        assert hypergeometric_mean(100, 30, 10) == pytest.approx(3.0)

    def test_variance_formula(self):
        variance = hypergeometric_variance(100, 30, 10)
        expected = 10 * 0.3 * 0.7 * (90 / 99)
        assert variance == pytest.approx(expected)

    def test_variance_zero_when_sample_is_population(self):
        assert hypergeometric_variance(50, 20, 50) == 0.0

    def test_variance_zero_for_unit_population(self):
        assert hypergeometric_variance(1, 1, 1) == 0.0

    def test_matches_empirical_moments(self):
        rng = np.random.default_rng(3)
        population, successes, n = 200, 60, 40
        draws = rng.hypergeometric(successes, population - successes, n, size=20_000)
        assert draws.mean() == pytest.approx(
            hypergeometric_mean(population, successes, n), rel=0.02
        )
        assert draws.var() == pytest.approx(
            hypergeometric_variance(population, successes, n), rel=0.05
        )

    def test_rejects_successes_beyond_population(self):
        with pytest.raises(ConfigurationError):
            hypergeometric_mean(10, 11, 5)

    def test_rejects_sample_beyond_population(self):
        with pytest.raises(ConfigurationError):
            hypergeometric_variance(10, 5, 11)


class TestZScore:
    def test_95_percent(self):
        assert z_score(0.05) == pytest.approx(1.959964, rel=1e-5)

    def test_99_percent(self):
        assert z_score(0.01) == pytest.approx(2.575829, rel=1e-5)

    def test_monotone_in_confidence(self):
        assert z_score(0.01) > z_score(0.05) > z_score(0.2)

    @pytest.mark.parametrize("delta", [0.0, 1.0, 2.0])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ConfigurationError):
            z_score(delta)


class TestNormalApproximationInterval:
    def test_zero_when_sample_is_population(self):
        assert normal_approximation_interval(100, 100, 0.5, 0.05) == 0.0

    def test_fraction_clipped_to_unit_interval(self):
        inside = normal_approximation_interval(100, 10, 1.0, 0.05)
        outside = normal_approximation_interval(100, 10, 1.7, 0.05)
        assert inside == outside == 0.0

    def test_radius_covers_sampled_cumulative_frequency(self):
        """Empirical coverage of the Theorem 3.2 deviation radius."""
        rng = np.random.default_rng(11)
        population = rng.poisson(5.0, size=1000).astype(float)
        r = 0.9
        cut = np.quantile(population, r)
        true_fraction = np.mean(population <= cut)
        n, delta = 120, 0.1
        radius = normal_approximation_interval(population.size, n, r, delta)
        misses = 0
        trials = 500
        for _ in range(trials):
            sample = rng.choice(population, size=n, replace=False)
            sampled_fraction = np.mean(sample <= cut)
            if abs(sampled_fraction - true_fraction) > radius:
                misses += 1
        # Allow some slack: the radius uses r(1-r), slightly off from the
        # exact variance at the empirical cut.
        assert misses / trials <= delta + 0.05

    @given(
        n=st.integers(min_value=1, max_value=400),
        extra=st.integers(min_value=0, max_value=400),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_radius_non_negative(self, n, extra, fraction):
        radius = normal_approximation_interval(n + extra, n, fraction, 0.05)
        assert radius >= 0.0

    def test_rejects_zero_sample(self):
        with pytest.raises(ConfigurationError):
            normal_approximation_interval(10, 0, 0.5, 0.05)
