"""Tests for rank/quantile utilities and the distinct-value table."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.quantiles import (
    DistinctValueTable,
    empirical_quantile,
    quantile_rank_index,
    rank_of_value,
    relative_rank_error,
)


class TestQuantileRankIndex:
    def test_matches_algorithm_two_indexing(self):
        assert quantile_rank_index(100, 0.99) == 99
        assert quantile_rank_index(10, 0.5) == 5

    def test_r_one_clamps_to_last(self):
        assert quantile_rank_index(10, 1.0) == 9

    def test_r_zero_selects_first(self):
        assert quantile_rank_index(10, 0.0) == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            quantile_rank_index(0, 0.5)
        with pytest.raises(ConfigurationError):
            quantile_rank_index(10, 1.5)


class TestEmpiricalQuantile:
    def test_selects_sorted_element(self):
        values = np.array([5, 1, 3, 2, 4], dtype=float)
        assert empirical_quantile(values, 0.5) == 3.0

    def test_extreme_quantiles(self):
        values = np.arange(100, dtype=float)
        assert empirical_quantile(values, 0.99) == 99.0
        assert empirical_quantile(values, 0.01) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            empirical_quantile(np.array([]), 0.5)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=100),
        r=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_result_is_a_sample_value(self, values, r):
        array = np.array(values, dtype=float)
        assert empirical_quantile(array, r) in array


class TestRanks:
    def test_rank_counts_at_or_below(self):
        values = np.array([1, 2, 2, 3, 5], dtype=float)
        assert rank_of_value(values, 2) == 3
        assert rank_of_value(values, 0) == 0
        assert rank_of_value(values, 10) == 5

    def test_relative_rank_error_zero_for_same_value(self):
        values = np.arange(10, dtype=float)
        assert relative_rank_error(values, 5.0, 5.0) == 0.0

    def test_relative_rank_error_formula(self):
        values = np.arange(100, dtype=float)
        # rank(89)=90, rank(99)=100 -> |90-100|/100
        assert relative_rank_error(values, 89.0, 99.0) == pytest.approx(0.1)

    def test_rejects_zero_true_rank(self):
        values = np.arange(1, 10, dtype=float)
        with pytest.raises(ConfigurationError):
            relative_rank_error(values, 5.0, 0.0)


class TestDistinctValueTable:
    def test_frequencies_sum_to_one(self):
        table = DistinctValueTable.from_sample(np.array([1, 1, 2, 3, 3, 3.0]))
        assert table.frequencies.sum() == pytest.approx(1.0)
        assert table.values.tolist() == [1.0, 2.0, 3.0]
        assert table.frequencies.tolist() == pytest.approx([2 / 6, 1 / 6, 3 / 6])

    def test_quantile_position_definition(self):
        """min_i { s_i : cumulative >= r } from Theorem 3.2."""
        table = DistinctValueTable.from_sample(np.array([1.0, 1, 2, 3]))
        assert table.quantile_position(0.5) == 0  # cum = [0.5, 0.75, 1.0]
        assert table.quantile_position(0.6) == 1
        assert table.quantile_position(1.0) == 2

    def test_quantile_position_tolerates_roundoff_at_one(self):
        table = DistinctValueTable.from_sample(np.array([0.1] * 3 + [0.2] * 7))
        assert table.quantile_position(1.0) == 1

    def test_frequency_at_bounds_checked(self):
        table = DistinctValueTable.from_sample(np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            table.frequency_at(2)

    def test_rejects_empty_sample(self):
        with pytest.raises(ConfigurationError):
            DistinctValueTable.from_sample(np.array([]))

    @given(
        values=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200),
        r=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_quantile_position_consistent_with_empirical_quantile(self, values, r):
        array = np.array(values, dtype=float)
        table = DistinctValueTable.from_sample(array)
        position = table.quantile_position(r)
        # The distinct-value quantile is >= the index-based quantile and
        # both carry at least r cumulative mass.
        assert table.cumulative[position] >= r - 1e-9
        if position > 0:
            assert table.cumulative[position - 1] < r
