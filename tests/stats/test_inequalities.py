"""Unit and property tests for the concentration-inequality radii."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.inequalities import (
    clt_radius,
    empirical_bernstein_radius,
    empirical_bernstein_union_radius,
    hoeffding_radius,
    hoeffding_serfling_radius,
    hoeffding_serfling_rho,
)


class TestHoeffdingRadius:
    def test_matches_closed_form(self):
        expected = 2.0 * math.sqrt(math.log(2 / 0.05) / (2 * 100))
        assert hoeffding_radius(100, 0.05, 2.0) == pytest.approx(expected)

    def test_zero_range_gives_zero_radius(self):
        assert hoeffding_radius(10, 0.05, 0.0) == 0.0

    def test_shrinks_with_sample_size(self):
        assert hoeffding_radius(400, 0.05, 1.0) < hoeffding_radius(100, 0.05, 1.0)

    def test_shrinks_with_larger_delta(self):
        assert hoeffding_radius(100, 0.2, 1.0) < hoeffding_radius(100, 0.01, 1.0)

    @pytest.mark.parametrize("n", [0, -1])
    def test_rejects_nonpositive_n(self, n):
        with pytest.raises(ConfigurationError):
            hoeffding_radius(n, 0.05, 1.0)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ConfigurationError):
            hoeffding_radius(10, delta, 1.0)

    def test_rejects_negative_range(self):
        with pytest.raises(ConfigurationError):
            hoeffding_radius(10, 0.05, -1.0)


class TestHoeffdingSerflingRho:
    def test_small_sample_close_to_one(self):
        assert hoeffding_serfling_rho(1, 10_000) == pytest.approx(1.0, abs=1e-3)

    def test_full_sample_gives_zero(self):
        assert hoeffding_serfling_rho(100, 100) == 0.0

    def test_matches_paper_formula(self):
        n, population = 30, 100
        first = 1 - (n - 1) / population
        second = (1 - n / population) * (1 + 1 / n)
        assert hoeffding_serfling_rho(n, population) == min(first, second)

    def test_rejects_sample_larger_than_population(self):
        with pytest.raises(ConfigurationError):
            hoeffding_serfling_rho(11, 10)

    @given(
        n=st.integers(min_value=1, max_value=1000),
        extra=st.integers(min_value=0, max_value=1000),
    )
    def test_rho_always_in_unit_interval(self, n, extra):
        rho = hoeffding_serfling_rho(n, n + extra)
        assert 0.0 <= rho <= 1.0


class TestHoeffdingSerflingRadius:
    def test_tighter_than_hoeffding(self):
        """The finite-population factor can only shrink the radius."""
        hs = hoeffding_serfling_radius(50, 200, 0.05, 1.0)
        h = hoeffding_radius(50, 0.05, 1.0)
        assert hs < h

    def test_vanishes_at_full_sample(self):
        assert hoeffding_serfling_radius(100, 100, 0.05, 5.0) == 0.0

    @given(
        n=st.integers(min_value=2, max_value=500),
        extra=st.integers(min_value=1, max_value=500),
        delta=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=50)
    def test_never_exceeds_hoeffding(self, n, extra, delta):
        population = n + extra
        hs = hoeffding_serfling_radius(n, population, delta, 1.0)
        h = hoeffding_radius(n, delta, 1.0)
        assert hs <= h + 1e-12

    def test_coverage_on_synthetic_population(self):
        """Empirical check: the radius covers the true mean >= 1 - delta."""
        rng = np.random.default_rng(7)
        population = rng.poisson(4.0, size=2000).astype(float)
        mu = population.mean()
        value_range = population.max() - population.min()
        n, delta = 100, 0.1
        misses = 0
        trials = 400
        for _ in range(trials):
            sample = rng.choice(population, size=n, replace=False)
            radius = hoeffding_serfling_radius(n, population.size, delta, value_range)
            if abs(sample.mean() - mu) > radius:
                misses += 1
        assert misses / trials <= delta


class TestEmpiricalBernstein:
    def test_matches_closed_form(self):
        log_term = math.log(3 / 0.05)
        expected = 0.5 * math.sqrt(2 * log_term / 50) + 3 * 2.0 * log_term / 50
        assert empirical_bernstein_radius(50, 0.05, 2.0, 0.5) == pytest.approx(expected)

    def test_zero_variance_leaves_range_term(self):
        radius = empirical_bernstein_radius(50, 0.05, 2.0, 0.0)
        assert radius == pytest.approx(3 * 2.0 * math.log(3 / 0.05) / 50)

    def test_union_radius_looser_than_single(self):
        single = empirical_bernstein_radius(50, 0.05, 1.0, 0.5)
        union = empirical_bernstein_union_radius(50, 0.05, 1.0, 0.5)
        assert union > single

    def test_union_budget_sums_to_delta(self):
        """sum over t of delta / (t (t+1)) telescopes to delta."""
        total = sum(0.05 / (t * (t + 1)) for t in range(1, 100_000))
        assert total == pytest.approx(0.05, rel=1e-4)

    def test_rejects_negative_std(self):
        with pytest.raises(ConfigurationError):
            empirical_bernstein_radius(10, 0.05, 1.0, -0.1)


class TestCLTRadius:
    def test_matches_z_score_formula(self):
        radius = clt_radius(100, 0.05, 2.0)
        assert radius == pytest.approx(1.959964 * 2.0 / 10.0, rel=1e-4)

    def test_smaller_than_hoeffding_for_low_variance(self):
        """The CLT radius is tighter when the data barely varies."""
        assert clt_radius(100, 0.05, 0.1) < hoeffding_radius(100, 0.05, 1.0)

    def test_rejects_negative_std(self):
        with pytest.raises(ConfigurationError):
            clt_radius(10, 0.05, -1.0)
