"""Property tests: batch radii match the scalar forms elementwise.

The batch variants exist so the profiler can price a whole trial matrix in
one call; the only contract worth testing is elementwise equality with the
scalar functions (including the edges the sweep actually hits: ``n = 1``
and near-full-population Serfling sample sizes) plus shared validation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stats.inequalities import (
    clt_radius,
    clt_radius_batch,
    empirical_bernstein_radius,
    empirical_bernstein_radius_batch,
    empirical_bernstein_serfling_radius,
    empirical_bernstein_serfling_radius_batch,
    empirical_bernstein_union_radius,
    empirical_bernstein_union_radius_batch,
    hoeffding_radius,
    hoeffding_radius_batch,
    hoeffding_serfling_radius,
    hoeffding_serfling_radius_batch,
    hoeffding_serfling_rho,
    hoeffding_serfling_rho_batch,
)

POPULATION = 500

#: Sample sizes the sweeps actually hit: the n=1 edge, interior points, and
#: the near-exhaustion Serfling edge where rho_n collapses toward zero.
EDGE_SIZES = np.array([1, 2, 7, 100, POPULATION - 1, POPULATION])

deltas = st.floats(min_value=1e-6, max_value=1.0 - 1e-6)
ranges = st.floats(min_value=0.0, max_value=1e6)
stds = st.floats(min_value=0.0, max_value=1e6)


def assert_matches_scalar(batch_values, scalar_fn, sizes):
    scalar_values = np.array([scalar_fn(int(n)) for n in sizes])
    np.testing.assert_array_equal(np.asarray(batch_values), scalar_values)


class TestBatchMatchesScalar:
    @settings(max_examples=25)
    @given(delta=deltas, value_range=ranges)
    def test_hoeffding(self, delta, value_range):
        assert_matches_scalar(
            hoeffding_radius_batch(EDGE_SIZES, delta, value_range),
            lambda n: hoeffding_radius(n, delta, value_range),
            EDGE_SIZES,
        )

    def test_serfling_rho(self):
        assert_matches_scalar(
            hoeffding_serfling_rho_batch(EDGE_SIZES, POPULATION),
            lambda n: hoeffding_serfling_rho(n, POPULATION),
            EDGE_SIZES,
        )

    def test_serfling_rho_collapses_at_full_population(self):
        rho = hoeffding_serfling_rho_batch(EDGE_SIZES, POPULATION)
        assert rho[-1] == 0.0

    @settings(max_examples=25)
    @given(delta=deltas, value_range=ranges)
    def test_hoeffding_serfling(self, delta, value_range):
        assert_matches_scalar(
            hoeffding_serfling_radius_batch(
                EDGE_SIZES, POPULATION, delta, value_range
            ),
            lambda n: hoeffding_serfling_radius(n, POPULATION, delta, value_range),
            EDGE_SIZES,
        )

    @settings(max_examples=25)
    @given(delta=deltas, value_range=ranges, sample_std=stds)
    def test_empirical_bernstein(self, delta, value_range, sample_std):
        assert_matches_scalar(
            empirical_bernstein_radius_batch(
                EDGE_SIZES, delta, value_range, sample_std
            ),
            lambda n: empirical_bernstein_radius(n, delta, value_range, sample_std),
            EDGE_SIZES,
        )

    @settings(max_examples=25)
    @given(delta=deltas, value_range=ranges, sample_std=stds)
    def test_empirical_bernstein_union(self, delta, value_range, sample_std):
        assert_matches_scalar(
            empirical_bernstein_union_radius_batch(
                EDGE_SIZES, delta, value_range, sample_std
            ),
            lambda t: empirical_bernstein_union_radius(
                t, delta, value_range, sample_std
            ),
            EDGE_SIZES,
        )

    @settings(max_examples=25)
    @given(delta=deltas, value_range=ranges, sample_std=stds)
    def test_empirical_bernstein_serfling(self, delta, value_range, sample_std):
        assert_matches_scalar(
            empirical_bernstein_serfling_radius_batch(
                EDGE_SIZES, POPULATION, delta, value_range, sample_std
            ),
            lambda n: empirical_bernstein_serfling_radius(
                n, POPULATION, delta, value_range, sample_std
            ),
            EDGE_SIZES,
        )

    @settings(max_examples=25)
    @given(delta=deltas, sample_std=stds)
    def test_clt(self, delta, sample_std):
        assert_matches_scalar(
            clt_radius_batch(EDGE_SIZES, delta, sample_std),
            lambda n: clt_radius(n, delta, sample_std),
            EDGE_SIZES,
        )

    def test_per_element_ranges_broadcast(self):
        value_ranges = np.array([0.0, 0.5, 1.0, 2.0, 3.0, 4.0])
        batch = hoeffding_radius_batch(EDGE_SIZES, 0.05, value_ranges)
        expected = np.array([
            hoeffding_radius(int(n), 0.05, float(r))
            for n, r in zip(EDGE_SIZES, value_ranges)
        ])
        np.testing.assert_array_equal(batch, expected)

    def test_scalar_inputs_give_zero_dim_result(self):
        batch = hoeffding_radius_batch(100, 0.05, 2.0)
        assert float(batch) == hoeffding_radius(100, 0.05, 2.0)


class TestBatchValidation:
    def test_rejects_any_nonpositive_n(self):
        with pytest.raises(ConfigurationError):
            hoeffding_radius_batch(np.array([5, 0, 3]), 0.05, 1.0)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ConfigurationError):
            hoeffding_radius_batch(EDGE_SIZES, delta, 1.0)

    def test_rejects_any_negative_range(self):
        with pytest.raises(ConfigurationError):
            hoeffding_radius_batch(EDGE_SIZES, 0.05, np.array([1.0] * 5 + [-1.0]))

    def test_rejects_any_negative_std(self):
        with pytest.raises(ConfigurationError):
            clt_radius_batch(EDGE_SIZES, 0.05, np.array([1.0] * 5 + [-0.5]))

    def test_rejects_sample_exceeding_population(self):
        with pytest.raises(ConfigurationError):
            hoeffding_serfling_radius_batch(
                np.array([POPULATION + 1]), POPULATION, 0.05, 1.0
            )

    def test_union_variant_rejects_bad_delta_array(self):
        with pytest.raises(ConfigurationError):
            empirical_bernstein_radius_batch(
                EDGE_SIZES, np.array([0.05] * 5 + [0.0]), 1.0, 1.0
            )


class TestEbgsPrefixUse:
    """The EBGS envelope spends delta_t = delta/(t(t+1)) per prefix."""

    def test_union_equals_plain_bernstein_at_spent_delta(self):
        t = np.arange(1, 20)
        delta = 0.05
        union = empirical_bernstein_union_radius_batch(t, delta, 3.0, 1.2)
        spent = empirical_bernstein_radius_batch(
            t, delta / (t * (t + 1.0)), 3.0, 1.2
        )
        np.testing.assert_array_equal(union, spent)
