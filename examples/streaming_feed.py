"""A live feed: process frames only until the answer is good enough.

Cameras stream, and answers are wanted early. The central system ingests sampled
frames one by one and keeps Algorithm 1's state incrementally
(O(1) per frame), stopping the expensive detector work the moment the
current bound meets the accuracy target — the online-aggregation usage
pattern, with Smokescreen's bound construction.

Run with: ``python examples/streaming_feed.py``
"""

from __future__ import annotations

import numpy as np

from repro import ua_detrac, yolo_v4_like
from repro.estimators.streaming import StreamingMeanEstimator


def main() -> None:
    dataset = ua_detrac(frame_count=6000)
    detector = yolo_v4_like()

    # The stream: frames arrive in random order (the camera's reduced-
    # frame-sampling intervention delivers a uniform without-replacement
    # stream). Outputs are precomputed here; a real deployment would run
    # the detector per arriving frame — which is exactly the cost the
    # early stop saves.
    rng = np.random.default_rng(11)
    order = rng.permutation(dataset.frame_count)
    outputs = detector.run(dataset).counts

    target = 0.20
    streaming = StreamingMeanEstimator(dataset.frame_count, delta=0.05)
    checkpoints = {100, 300, 1000, 3000}
    result = None
    for consumed, frame_index in enumerate(order, start=1):
        streaming.update(float(outputs[frame_index]))
        if consumed in checkpoints:
            estimate = streaming.estimate()
            print(
                f"after {consumed:>5} frames: value {estimate.value:6.3f}, "
                f"bound {estimate.error_bound:.3f}"
            )
        result = streaming.estimate_when_below(target)
        if result is not None:
            break

    assert result is not None
    truth = outputs.mean()
    print(
        f"\nstopped after {streaming.count} of {dataset.frame_count} frames "
        f"({streaming.count / dataset.frame_count:.1%})"
    )
    print(
        f"answer {result.value:.3f} (bound {result.error_bound:.3f} <= "
        f"{target}) vs truth {truth:.3f} "
        f"-> achieved error {abs(result.value - truth) / truth:.3f}"
    )
    print(
        f"detector invocations saved: "
        f"{dataset.frame_count - streaming.count} frames never processed"
    )


if __name__ == "__main__":
    main()
