"""The paper's running example: Harry schedules road construction.

Harry administers a city camera on a night street (paper EXAMPLES 1-3).
The maintenance department needs the frame-averaged car count; the city
wants to protect faces (GDPR-style) and cut transmission energy. Harry:

1. activates profiling for the AVG car-count query,
2. reads the resolution-axis tradeoff curve (with a correction set, since
   resolution reduction is a non-random intervention),
3. picks the lowest resolution whose *guaranteed* error bound fits his
   budget — privacy policy already caps the resolution at 448x448, low
   enough that the face detector finds almost nothing,
4. configures the camera and runs the degraded query,
5. checks what the policy bought: privacy exposure and radio energy.

Guaranteed bounds are conservative by design (they hold in at least 95% of
worlds); the achieved error is typically far below the budget.

Run with: ``python examples/harry_traffic_survey.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    Aggregate,
    PublicPreferences,
    Resolution,
    Smokescreen,
    mask_rcnn_like,
    night_street,
)
from repro.detection import default_suite
from repro.interventions import InterventionPlan
from repro.system import Administrator, Camera, TransmissionModel, privacy_report


def main() -> None:
    dataset = night_street(frame_count=6000)
    suite = default_suite()
    system = Smokescreen(dataset, mask_rcnn_like(), suite=suite, trials=10)
    query = system.query(Aggregate.AVG)

    # Profile generation: resolution is the knob Harry tunes, at half the
    # frames sampled; the correction set keeps the bounds trustworthy
    # under this non-random intervention.
    correction = system.build_correction_set(query)
    profile = system.profiler.profile_resolution(
        query,
        tuple(system.candidates(resolution_count=8).resolutions),
        np.random.default_rng(7),
        fraction=0.5,
        correction=correction,
    )
    print("resolution-axis profile (f=0.5, correction-set repaired):")
    for knob, bound in zip(profile.knob_values(), profile.error_bounds()):
        print(f"  {int(knob)}x{int(knob)}  err_b={bound:.3f}")

    # Harry's public preferences: a guaranteed error ceiling, plus the
    # privacy policy's resolution cap (nothing sharper than 448x448 leaves
    # the camera — faces are unrecognisable well before that).
    harry = Administrator(
        name="Harry",
        preferences=PublicPreferences(
            max_error=0.80, max_resolution=Resolution(448)
        ),
    )
    camera = Camera("road-camera", dataset, suite, TransmissionModel())
    choice, estimate = harry.deploy(system, camera, query, profile)

    truth = system.processor.true_answer(query)
    print(f"\n{harry.name} chose: {choice.point.plan.label()}")
    print(
        f"degraded answer {estimate.value:.3f} vs truth {truth:.3f} "
        f"(achieved error {abs(estimate.value - truth) / truth:.1%}, "
        f"guaranteed ceiling {choice.point.error_bound:.1%})"
    )

    # What the policy bought.
    report = privacy_report(dataset, suite, choice.point.plan)
    transmission = TransmissionModel()
    print(
        f"\nface frames still recognisable: {report.face_frames_exposed:.0f} "
        f"({report.face_exposure_ratio:.1%} of undegraded exposure)"
    )
    print(
        f"person frames still recognisable: "
        f"{report.person_exposure_ratio:.1%} of undegraded exposure"
    )
    baseline_energy = transmission.plan_energy_joules(dataset, InterventionPlan())
    chosen_energy = transmission.plan_energy_joules(dataset, choice.point.plan)
    print(
        f"transmission saved: "
        f"{transmission.savings_ratio(dataset, choice.point.plan):.1%} "
        f"({chosen_energy:.1f} J per corpus pass instead of "
        f"{baseline_energy:.1f} J)"
    )


if __name__ == "__main__":
    main()
