"""A city dashboard: one degradation setting serving a query workload.

A transport department runs several analytical queries over the same
intersection camera (the paper's §1: "each query in a workload"):

- AVG cars per frame      -> congestion level for signal timing
- COUNT frames with cars  -> busy-time share for lane-closure planning
- MAX (0.99-quantile)     -> peak crowding for incident staffing

The camera applies *one* degradation setting for all of them, so the
administrator needs the most aggressive sampling fraction whose bounded
error satisfies every query's own accuracy target. The workload shares the
expensive machinery: model outputs, the degraded samples, and a single
correction set sized at the most demanding query's elbow.

Run with: ``python examples/city_dashboard.py``
"""

from __future__ import annotations

import numpy as np

from repro import Aggregate, InterventionPlan, QueryWorkload, ua_detrac, yolo_v4_like
from repro.detection import default_suite
from repro.query import AggregateQuery, QueryProcessor
from repro.system import TransmissionModel


def main() -> None:
    dataset = ua_detrac(frame_count=5000)
    model = yolo_v4_like()
    processor = QueryProcessor(default_suite())

    queries = [
        AggregateQuery(dataset, model, Aggregate.AVG),
        AggregateQuery(dataset, model, Aggregate.COUNT),
        AggregateQuery(dataset, model, Aggregate.MAX),
    ]
    workload = QueryWorkload(queries, processor, trials=5)

    correction = workload.build_shared_correction_set(np.random.default_rng(1))
    print(
        f"shared correction set: {correction.size} frames "
        f"({correction.size / dataset.frame_count:.1%} of the corpus)"
    )

    fractions = (0.02, 0.05, 0.1, 0.2, 0.4, 0.7)
    profiles = workload.profile_sampling(
        fractions, np.random.default_rng(2), correction=correction
    )
    print("\nper-query sampling profiles (fraction -> bounded error):")
    for label, profile in profiles.items():
        bounds = ", ".join(
            f"{knob:g}:{bound:.2f}"
            for knob, bound in zip(profile.knob_values(), profile.error_bounds())
        )
        print(f"  {label}\n    {bounds}")

    # Each query has its own accuracy requirement.
    targets = {
        queries[0].label(): 0.40,  # congestion: rough level is enough
        queries[1].label(): 0.15,  # busy-time share: drives budget decisions
        queries[2].label(): 0.05,  # peak crowding: rank error must be small
    }
    choice = workload.choose_sampling(profiles, targets)
    print(f"\nchosen shared fraction: f={choice.fraction:g}")
    for label, bound in choice.bounds.items():
        print(f"  {label}: bounded at {bound:.3f} (target {targets[label]:.2f})")

    # What every dashboard tile shows under the shared plan, vs truth.
    plan = InterventionPlan.from_knobs(f=choice.fraction)
    rng = np.random.default_rng(3)
    print("\ndashboard under the shared degradation:")
    transmission = TransmissionModel()
    for query in queries:
        execution = processor.execute(query, plan, rng)
        from repro.estimators import estimate_query

        estimate = estimate_query(query, execution)
        truth = processor.true_answer(query)
        print(
            f"  {query.aggregate.name:<6} estimate {estimate.value:10.2f}  "
            f"truth {truth:10.2f}"
        )
    print(
        f"\ntransmission saved vs full video: "
        f"{transmission.savings_ratio(dataset, plan):.1%}"
    )


if __name__ == "__main__":
    main()
