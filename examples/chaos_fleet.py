"""A five-camera city fleet surviving a 20% outage rate.

The paper's deployment (§1) is a fleet of networked cameras feeding one
central query processor — exactly where cameras drop out, links flap,
and frames corrupt in flight. Here the city's five cameras transmit
through fault-injected channels (20% per-query outage, transient
failures, frame drops, stragglers) with retry/backoff and per-camera
circuit breakers. When a camera is lost mid-query the delta budget is
re-split across the survivors, so the administrator still gets a
*guaranteed* bound — wider, covering fewer fleet frames, but never
silently wrong.

Run with: ``python examples/chaos_fleet.py``
"""

from __future__ import annotations

from repro import mask_rcnn_like, night_street, ua_detrac, yolo_v4_like
from repro.detection import default_suite
from repro.query import QueryProcessor
from repro.system import Camera, FaultModel, FleetQueryProcessor


def main() -> None:
    suite = default_suite()
    cameras = []
    for index in range(5):
        preset = ua_detrac if index % 2 == 0 else night_street
        camera = Camera(f"cam{index}", preset(frame_count=2000), suite)
        camera.configure(fraction=0.2)
        cameras.append(camera)

    def model_for(camera):
        if camera.dataset.name.startswith("ua-detrac"):
            return yolo_v4_like()
        return mask_rcnn_like()

    faults = FaultModel(
        outage_probability=0.2,
        transient_failure_probability=0.15,
        frame_drop_probability=0.05,
        frame_corruption_probability=0.02,
        straggler_probability=0.1,
    )
    processor = QueryProcessor(suite)

    # A fault-free reference run, to show how much the faults widen things.
    clean = FleetQueryProcessor(cameras, processor).execute(
        model_for, delta=0.05, seed=11
    )

    fleet = FleetQueryProcessor(cameras, processor, faults=faults, fault_seed=2)
    report = fleet.execute(model_for, delta=0.05, seed=11)

    print("city fleet under chaos (outage rate 20%):\n")
    for line in report.summary_lines():
        print(line)

    print(f"\ndegraded cameras: {', '.join(report.degraded) or 'none'}")
    print(f"lost cameras:     {', '.join(report.lost) or 'none'}")
    print(
        f"frames dropped/corrupted: {report.frames_dropped}"
        f"/{report.frames_corrupted}, retries: {report.total_retries}"
    )
    print(
        f"\nfault-free bound {clean.combined.error_bound:.3f} -> "
        f"widened bound {report.combined.error_bound:.3f} "
        f"covering {report.coverage:.0%} of fleet frames"
    )

    # Oracle check (demonstration only): the surviving-fleet truth must
    # sit inside the widened-but-valid bound.
    weighted = 0.0
    frames = 0
    for camera in fleet.cameras:
        if camera.name not in report.surviving:
            continue
        counts = model_for(camera).run(camera.dataset).counts
        weighted += counts.mean() * camera.dataset.frame_count
        frames += camera.dataset.frame_count
    truth = weighted / frames
    error = abs(report.combined.value - truth) / truth
    inside = error <= report.combined.error_bound
    print(
        f"oracle surviving-fleet truth: {truth:.3f} "
        f"(achieved error {error:.3f}, within bound: {inside})"
    )


if __name__ == "__main__":
    main()
