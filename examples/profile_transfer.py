"""Sensitive video: borrow the profile of a similar, less sensitive video.

Sometimes even a small correction set is off limits — the query video is
too sensitive to access lightly degraded (paper §3.3.1). The fallback the
paper proposes (§5.3.2): generate the profile on a *similar* video — the
same camera at a different time — and use it to pick the interventions for
the sensitive one.

This example profiles the MAX query (most crowded moment, 0.99-quantile of
per-frame car counts) on public sequence B, chooses a sampling fraction
from B's curve, applies it to sensitive sequence A, and then (with oracle
access, for demonstration only) verifies that A's achieved error is within
the bound B promised.

Run with: ``python examples/profile_transfer.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    Aggregate,
    PublicPreferences,
    Smokescreen,
    detrac_sequence_pair,
    profile_difference,
    yolo_v4_like,
)
from repro.stats.quantiles import relative_rank_error


def main() -> None:
    video_a, video_b = detrac_sequence_pair()
    print(f"sensitive video A: {video_a.frame_count} frames "
          f"(no light-degradation access permitted)")
    print(f"similar video B:   {video_b.frame_count} frames (public)\n")

    model = yolo_v4_like()
    system_b = Smokescreen(video_b, model, trials=20)
    query_b = system_b.query(Aggregate.MAX)

    fractions = (0.02, 0.05, 0.1, 0.2, 0.4, 0.7)
    profile_b = system_b.profiler.profile_sampling(
        query_b, fractions, np.random.default_rng(1)
    )
    print("video B's MAX profile (fraction -> bounded rank error):")
    for knob, bound in zip(profile_b.knob_values(), profile_b.error_bounds()):
        print(f"  f={knob:<5g} err_b={bound:.3f}")

    preferences = PublicPreferences(max_error=0.05)
    choice = system_b.choose(profile_b, preferences)
    plan = choice.point.plan
    print(f"\ntransferred setting for video A: {plan.label()}")

    # Apply the transferred plan to the sensitive video.
    system_a = Smokescreen(video_a, model, trials=20)
    query_a = system_a.query(Aggregate.MAX)
    estimate = system_a.estimate(query_a, plan)

    # Oracle verification (demonstration only — production would never
    # touch A undegraded).
    reference = system_a.processor.true_values(query_a)
    truth = system_a.processor.true_answer(query_a)
    achieved = relative_rank_error(reference, estimate.value, truth)
    print(
        f"A's MAX estimate {estimate.value:.0f} vs truth {truth:.0f} "
        f"(achieved rank error {achieved:.3f}, B promised "
        f"{choice.point.error_bound:.3f})"
    )

    # How close were the two videos' profiles really? (§5.3.2's check.)
    profile_a = system_a.profiler.profile_sampling(
        query_a, fractions, np.random.default_rng(2)
    )
    difference = profile_difference(profile_a, profile_b)
    print(
        f"\nprofile difference A vs B: mean "
        f"{difference.mean_difference:.3f}, max {difference.max_difference:.3f}"
    )


if __name__ == "__main__":
    main()
