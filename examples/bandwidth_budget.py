"""Wireless sensor network: meet a bandwidth budget, keep COUNT accurate.

A low-power deployment (the paper's §1 system goal) ships frames from a
busy intersection over a constrained link. The operator has a hard byte
budget per corpus pass and wants the most *accurate* feasible setting for
a COUNT query ("how many frames contain cars"), searching over both the
sampling fraction and the resolution.

The twist the profile reveals: at the same byte cost, spending the budget
on more frames at lower resolution is not always better — resolution cuts
bias the detector while sampling cuts only add variance, and the profile's
corrected bounds price both effects honestly.

Run with: ``python examples/bandwidth_budget.py``
"""

from __future__ import annotations

import numpy as np

from repro import Aggregate, InterventionPlan, Smokescreen, ua_detrac, yolo_v4_like
from repro.system import TransmissionModel


def main() -> None:
    dataset = ua_detrac(frame_count=5000)
    system = Smokescreen(dataset, yolo_v4_like(), trials=5)
    query = system.query(Aggregate.COUNT)
    transmission = TransmissionModel()

    full_bytes = transmission.plan_bytes(dataset, InterventionPlan())
    budget = 0.02 * full_bytes  # two percent of the undegraded cost
    print(f"byte budget: {budget / 1e6:.1f} MB per pass "
          f"({budget / full_bytes:.0%} of undegraded)")

    correction = system.build_correction_set(query)
    candidates = system.candidates(fraction_step=0.02, max_fraction=0.4,
                                   resolution_count=6)

    # Price every candidate cell, then keep the feasible ones.
    cube = system.profile(query, candidates, correction=correction)
    feasible: list[tuple[float, InterventionPlan]] = []
    for fi, fraction in enumerate(cube.fractions):
        for ri, resolution in enumerate(cube.resolutions):
            plan = InterventionPlan.from_knobs(f=fraction, p=resolution)
            cost = transmission.plan_bytes(dataset, plan)
            bound = cube.bounds[fi, ri, 0]
            if cost <= budget and np.isfinite(bound):
                feasible.append((float(bound), plan))

    if not feasible:
        raise SystemExit("no candidate fits the byte budget")
    feasible.sort(key=lambda item: item[0])

    print("\nbest feasible settings (bounded error, setting, cost):")
    for bound, plan in feasible[:5]:
        cost = transmission.plan_bytes(dataset, plan)
        print(f"  err_b={bound:.3f}  {plan.label():<42} "
              f"{cost / 1e6:6.2f} MB")

    best_bound, best_plan = feasible[0]
    estimate = system.estimate(query, best_plan)
    truth = system.processor.true_answer(query)
    print(f"\nchosen: {best_plan.label()}")
    print(
        f"COUNT estimate {estimate.value:.0f} frames vs truth {truth:.0f} "
        f"(true error {abs(estimate.value - truth) / truth:.1%}, "
        f"bound {best_bound:.1%})"
    )
    print(
        f"energy per pass: "
        f"{transmission.plan_energy_joules(dataset, best_plan):.2f} J "
        f"(undegraded: "
        f"{transmission.plan_energy_joules(dataset, InterventionPlan()):.1f} J)"
    )


if __name__ == "__main__":
    main()
