"""A two-camera fleet: one city-wide answer, one guaranteed bound.

The paper's deployment (§1) is a *set* of networked cameras feeding one
central processor. Here a city monitors a busy downtown intersection and
a quiet suburban street; the transport department wants the city-wide
average cars per frame. Each camera samples its own frames under its own
degradation plan; the central system combines the per-camera intervals
(at delta/2 each) into one fleet-level estimate with a single 95% bound,
weighted by each camera's corpus size.

Run with: ``python examples/camera_fleet.py``
"""

from __future__ import annotations

import numpy as np

from repro import mask_rcnn_like, night_street, ua_detrac, yolo_v4_like
from repro.detection import default_suite
from repro.query import QueryProcessor
from repro.system import Camera, CameraFleet


def main() -> None:
    suite = default_suite()
    downtown = Camera("downtown", ua_detrac(frame_count=4000), suite)
    suburb = Camera("suburb", night_street(frame_count=3000), suite)

    # Each camera has its own constraint: downtown has good backhaul
    # (20% sampling), the suburb runs on a constrained link (5%).
    downtown.configure(fraction=0.2)
    suburb.configure(fraction=0.05)

    fleet = CameraFleet([downtown, suburb], QueryProcessor(suite))

    def model_for(camera):
        # The paper's pairing: YOLOv4 downtown (UA-DETRAC-like scenes),
        # Mask R-CNN for the night street.
        return yolo_v4_like() if camera.name == "downtown" else mask_rcnn_like()

    result = fleet.estimate_mean(model_for, np.random.default_rng(7))

    print("per-camera estimates (each at delta/2):")
    for name, estimate in result.per_camera.items():
        print(
            f"  {name:<9} value {estimate.value:6.3f}  "
            f"bound {estimate.error_bound:5.3f}  (n={estimate.n})"
        )

    combined = result.combined
    print(
        f"\nfleet-wide AVG: {combined.value:.3f} cars/frame "
        f"(bounded error {combined.error_bound:.3f} at 95%)"
    )

    # Oracle check (demonstration only).
    total = fleet.total_frames
    truth = sum(
        model_for(camera).run(camera.dataset).counts.mean()
        * camera.dataset.frame_count
        for camera in fleet.cameras
    ) / total
    print(
        f"oracle fleet truth: {truth:.3f} "
        f"(achieved error {abs(combined.value - truth) / truth:.3f})"
    )
    print(f"frames transmitted: {sum(e.n for e in result.per_camera.values())} "
          f"of {total}")


if __name__ == "__main__":
    main()
