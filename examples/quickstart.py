"""Quickstart: profile a query, pick a tradeoff, run it degraded.

The minimal end-to-end Smokescreen flow on a synthetic UA-DETRAC-like
corpus: build the system, size a correction set, price an intervention
candidate grid, read the three initial profile slices, choose the most
aggressive sampling setting within a 25% error budget, and estimate the
query under it.

Run with: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro import (
    Aggregate,
    PublicPreferences,
    Smokescreen,
    ua_detrac,
    yolo_v4_like,
)


def main() -> None:
    # A scaled-down corpus keeps the example snappy; drop frame_count for
    # the paper's full 15,210 frames.
    dataset = ua_detrac(frame_count=4000)
    system = Smokescreen(dataset, yolo_v4_like(), trials=5)

    # The query: average number of cars per frame (the paper's EXAMPLE 1).
    query = system.query(Aggregate.AVG)

    # Profile generation (paper §3.1): size the correction set with the
    # elbow heuristic, then price a candidate grid.
    correction = system.build_correction_set(query)
    print(
        f"correction set: {correction.size} frames "
        f"({correction.fraction(dataset.frame_count):.1%} of the corpus), "
        f"own bound {correction.error_bound:.3f}"
    )

    candidates = system.candidates(fraction_step=0.05, resolution_count=5)
    cube = system.profile(query, candidates, correction=correction)

    sampling, resolution, removal = cube.initial_slices()
    print("\nsampling-axis profile (fraction -> bounded error):")
    for knob, bound in zip(sampling.knob_values(), sampling.error_bounds()):
        print(f"  f={knob:<5g} err_b={bound:.3f}")

    # Choosing a tradeoff (paper §2.3): the most degraded admissible
    # setting whose bounded error meets the public preference.
    preferences = PublicPreferences(max_error=0.25)
    choice = system.choose(sampling, preferences)
    print(f"\nchosen setting: {choice.point.plan.label()}")

    # Run the query under the chosen degradation.
    estimate = system.estimate(query, choice.point.plan)
    truth = system.processor.true_answer(query)
    print(
        f"estimate {estimate.value:.3f} (bound {estimate.error_bound:.3f}) "
        f"vs truth {truth:.3f} "
        f"-> true error {abs(estimate.value - truth) / truth:.3f}"
    )


if __name__ == "__main__":
    main()
